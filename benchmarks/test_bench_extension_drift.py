"""Benchmark E-X2: concept drift (recession scenario).

The closed-loop view's premise is that practical AI systems are retrained
because the world drifts.  This benchmark shocks the income table in
2008-2009 and compares the retraining scorecard with the never-retrained
one on the quality of their post-shock lending decisions.
"""

from __future__ import annotations

from repro.experiments.config import CaseStudyConfig
from repro.experiments.extensions import drift_comparison


def test_bench_extension_drift(benchmark):
    config = CaseStudyConfig(num_users=250, num_trials=2)
    result = benchmark.pedantic(drift_comparison, args=(config,), rounds=1, iterations=1)
    retraining = result.outcomes["retraining scorecard"]
    static = result.outcomes["static scorecard (never retrained)"]
    # Both arms survive the shock with valid metrics; the retraining lender's
    # post-shock portfolio should not default more than the frozen one's.
    assert 0.0 <= retraining.post_shock_default_rate <= 1.0
    assert 0.0 <= static.post_shock_default_rate <= 1.0
    assert retraining.post_shock_default_rate <= static.post_shock_default_rate + 0.05
    print()
    print(result.summary())
