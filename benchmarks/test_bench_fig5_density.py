"""Benchmark E-F5: reproduce Figure 5 (density of user-wise ADR over time).

Histograms the stacked user-wise series per year (the paper's grey-shade
density plot) and asserts the paper's reading: the mass concentrates at low
default rates over time — the modal bin ends low and the high-ADR tail
thins out.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig5_density import fig5_density


def test_bench_fig5_density(benchmark, bench_experiment):
    result = benchmark.pedantic(
        fig5_density, kwargs={"result": bench_experiment}, rounds=3, iterations=1
    )
    # Rows are probability distributions over the ADR bins.
    np.testing.assert_allclose(result.density.sum(axis=1), 1.0, atol=1e-9)
    # Paper shape: by 2020 most users sit below an ADR of 0.10 and the modal
    # bin is at the low end of the axis.
    assert result.mass_below_010[-1] > 0.6
    assert result.modal_bin_centers[-1] < 0.2
    # Paper shape: the high-ADR tail (rates above 0.5) thins out over time.
    centers = (result.bin_edges[:-1] + result.bin_edges[1:]) / 2.0
    high_bins = centers > 0.5
    warm_up = bench_experiment.config.warm_up_rounds
    assert (
        result.density[-1, high_bins].sum() <= result.density[warm_up, high_bins].sum()
    )
    print()
    print(result.summary())
