"""Benchmark E-A1: the policy ablation behind the introduction's example.

Compares the paper's retraining scorecard against the uniform $50K limit
(pure equal treatment), the income-proportional approve-all policy, and a
never-retrained scorecard, on the same populations.  Asserts the
introduction's claim: the uniform limit leaves a larger long-run cross-race
default-rate gap than the income-proportional retraining loop.
"""

from __future__ import annotations

from repro.experiments.ablations import baseline_comparison
from repro.experiments.config import CaseStudyConfig


def test_bench_ablation_baselines(benchmark):
    config = CaseStudyConfig(num_users=250, num_trials=2)
    result = benchmark.pedantic(baseline_comparison, args=(config,), rounds=1, iterations=1)
    uniform = result.outcomes["uniform $50K limit (equal treatment)"]
    paper = result.outcomes["retraining scorecard (paper)"]
    # Paper claim (introduction): equal treatment via a uniform limit does
    # not deliver equal impact — its long-run cross-race gap stays larger.
    assert uniform.final_gap > paper.final_gap
    # The uniform limit also locks far more users out of the market.
    assert uniform.approval_gap > paper.approval_gap
    print()
    print(result.summary())
