"""Benchmark E-F4: reproduce Figure 4 (user-wise average default rates).

Stacks every user-wise ADR_i(k) series from every trial (the paper's
5 x 1000 curves) and asserts the paper's reading: the curves spread widely
right after the warm-up years and dwindle towards a similar, low level by
2020.
"""

from __future__ import annotations

from repro.experiments.fig4_user_adr import fig4_user_adr


def test_bench_fig4_user_adr(benchmark, bench_experiment):
    result = benchmark.pedantic(
        fig4_user_adr, kwargs={"result": bench_experiment}, rounds=3, iterations=1
    )
    config = bench_experiment.config
    # Every trial contributes one series per user.
    assert result.num_series == config.num_trials * config.num_users
    # Paper shape: the cross-user dispersion shrinks from the warm-up years
    # to the end of the simulation.
    warm_up = config.warm_up_rounds
    assert result.dispersion_series[-1] < result.dispersion_series[warm_up]
    assert result.final_spread <= result.initial_spread
    print()
    print(result.summary())
