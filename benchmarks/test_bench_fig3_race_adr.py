"""Benchmark E-F3: reproduce Figure 3 (race-wise average default rates).

Runs the multi-trial closed-loop simulation (shared across the figure
benchmarks) and regenerates the race-wise mean +/- std series of ADR_s(k)
over 2002-2020.  The asserted shape matches the paper: Black households
start with the highest default rate, every race's series ends low, and the
cross-race gap shrinks ("dwindles to a similar level").
"""

from __future__ import annotations

import numpy as np

from repro.data.census import Race
from repro.experiments.fig3_race_adr import fig3_race_adr


def test_bench_fig3_race_adr(benchmark, bench_experiment):
    result = benchmark.pedantic(
        fig3_race_adr, kwargs={"result": bench_experiment}, rounds=3, iterations=1
    )
    warm_up = bench_experiment.config.warm_up_rounds
    # Paper shape: Black households start with the highest race-wise ADR.
    assert (
        result.mean_series[Race.BLACK][warm_up]
        > result.mean_series[Race.WHITE][warm_up]
        >= result.mean_series[Race.ASIAN][warm_up]
    )
    # Paper shape: the cross-race gap shrinks over the simulated years.
    assert result.gap_shrinks
    # Paper shape: all series end at a low level (the paper's axis tops out at ~0.08).
    for race in Race:
        assert result.mean_series[race][-1] < 0.12
    # The error bands exist (5 trials in the paper, >=2 here).
    for race in Race:
        assert np.all(result.std_series[race] >= 0.0)
    print()
    print(result.summary())


def test_bench_fig3_simulation_cost(benchmark, bench_config):
    """Time one full trial of the underlying closed-loop simulation."""
    from repro.experiments.runner import run_trial

    trial = benchmark.pedantic(
        run_trial, args=(bench_config,), kwargs={"trial_index": 0}, rounds=1, iterations=1
    )
    assert trial.user_default_rates.shape == (
        bench_config.num_steps,
        bench_config.num_users,
    )
