"""Benchmark E-X1: imposing equal impact (steering and exploration).

The paper's conclusion asks how constraints on the equality of impact could
be imposed.  This benchmark runs the plain retraining scorecard against the
proportional impact-steering policy and the epsilon-greedy exploration
wrapper and reports the resulting long-run default-rate inequality.
"""

from __future__ import annotations

from repro.experiments.config import CaseStudyConfig
from repro.experiments.extensions import steering_comparison


def test_bench_extension_steering(benchmark):
    config = CaseStudyConfig(num_users=250, num_trials=2)
    result = benchmark.pedantic(steering_comparison, args=(config,), rounds=1, iterations=1)
    plain = result.outcomes["plain retraining scorecard"]
    steered = result.outcomes["impact steering (proportional boost)"]
    explored = result.outcomes["epsilon-greedy exploration"]
    # Interventions must not meaningfully shrink access to credit (the loop's
    # feedback makes exact monotonicity impossible to guarantee) ...
    assert steered.mean_approval_rate >= plain.mean_approval_rate - 0.02
    assert explored.mean_approval_rate >= plain.mean_approval_rate - 0.02
    # ... and all arms end with low inequality of long-run default rates.
    for outcome in result.outcomes.values():
        assert 0.0 <= outcome.final_user_gini <= 1.0
        assert outcome.final_group_gap < 0.25
    print()
    print(result.summary())
