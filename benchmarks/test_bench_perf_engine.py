"""Benchmark P-1: the columnar simulation engine at scale.

Times the three hot paths the columnar rewrite targets, at a 20k-user
default scale (set ``REPRO_FULL_BENCH=1`` for the full 100k-user x 20-step
workload; ``benchmarks/record_core_bench.py`` runs the full scale and
persists the numbers to ``BENCH_core.json``):

* one full closed-loop trial with the paper's retraining lender;
* the incremental derived-metrics path versus the seed engine's
  cumulative-sum recompute (kept as the ``recompute_*`` cross-checks) —
  asserted to be at least 10x faster;
* the vectorized IFS population versus the per-user fallback loop —
  asserted to be at least 10x faster;
* the memory-ceiling regression of ``history_mode="aggregate"``: the
  streaming recorder's peak-RSS overhead over the no-recording simulation
  floor must stay inside a fixed budget and be at least 10x smaller than
  the full-history recorder's overhead (each mode measured in its own
  subprocess, at 150k users by default and the million-user workload under
  ``REPRO_FULL_BENCH=1``; ``benchmarks/record_core_bench.py`` persists the
  full-scale numbers to ``BENCH_core.json``).
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np
import pytest

from repro.core.population import IFSPopulation
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_trial
from repro.markov.ifs import SignalDependentIFS
from repro.markov.maps import AffineMap


def _perf_users() -> int:
    return 100_000 if os.environ.get("REPRO_FULL_BENCH") == "1" else 20_000


@pytest.fixture(scope="module")
def perf_config() -> CaseStudyConfig:
    # end_year 2021 makes exactly 20 steps from the paper's 2002 start.
    return CaseStudyConfig(num_users=_perf_users(), num_trials=1, end_year=2021)


@pytest.fixture(scope="module")
def perf_trial(perf_config):
    return run_trial(perf_config, trial_index=0)


def test_bench_engine_trial(benchmark, perf_config):
    """One full 20-step trial with the paper's retraining scorecard lender."""
    result = benchmark.pedantic(
        run_trial, args=(perf_config,), kwargs={"trial_index": 0}, rounds=2, iterations=1
    )
    assert result.history.num_steps == perf_config.num_steps
    assert result.user_default_rates.shape == (
        perf_config.num_steps,
        perf_config.num_users,
    )


def test_bench_incremental_metrics_vs_recompute(perf_trial):
    """The incremental derived series must beat the full recompute by >=10x."""
    history = perf_trial.history

    def query_incremental() -> None:
        history.running_default_rates()
        history.running_action_averages()
        history.approval_rates()

    def query_recompute() -> None:
        history.recompute_running_default_rates()
        history.recompute_running_action_averages()
        history.recompute_approval_rates()

    query_incremental()  # warm-up
    start = time.perf_counter()
    for _ in range(200):
        query_incremental()
    incremental = (time.perf_counter() - start) / 200

    start = time.perf_counter()
    for _ in range(3):
        query_recompute()
    recompute = (time.perf_counter() - start) / 3

    speedup = recompute / max(incremental, 1e-12)
    print(
        f"\nincremental {incremental * 1e6:.1f} us/query vs recompute "
        f"{recompute * 1e3:.2f} ms/query ({speedup:,.0f}x)"
    )
    assert speedup >= 10.0
    # And the fast path must stay exact.
    assert np.array_equal(
        history.running_default_rates(), history.recompute_running_default_rates()
    )


def test_bench_vectorized_ifs_population():
    """Batched IFS stepping must beat the per-user loop by >=10x."""
    count = _perf_users() // 4
    shared = SignalDependentIFS(
        transition_maps=(AffineMap.scalar(0.5, 0.0), AffineMap.scalar(0.5, 0.5)),
        transition_probabilities=lambda signal: [0.8, 0.2] if signal > 0.5 else [0.3, 0.7],
        output_maps=(AffineMap.scalar(1.0, 0.0), AffineMap.scalar(0.0, 1.0)),
        output_probabilities=lambda signal: [0.6, 0.4] if signal > 0.5 else [0.1, 0.9],
    )
    initial = [np.array([0.0])] * count
    decisions = (np.arange(count) % 2).astype(float)

    batched = IFSPopulation(users=[shared] * count, initial_states=initial)
    assert batched._state_matrix is not None
    generator = np.random.default_rng(0)
    batched.respond(decisions, 0, generator)  # warm-up
    start = time.perf_counter()
    for k in range(5):
        batched.respond(decisions, k, generator)
    batched_time = (time.perf_counter() - start) / 5

    fallback = IFSPopulation(
        users=[shared] * count, initial_states=initial, vectorize=False
    )  # the seed engine's per-user loop
    generator = np.random.default_rng(0)
    start = time.perf_counter()
    fallback.respond(decisions, 0, generator)
    fallback_time = time.perf_counter() - start

    speedup = fallback_time / max(batched_time, 1e-12)
    print(
        f"\nbatched {batched_time * 1e3:.2f} ms/step vs per-user loop "
        f"{fallback_time * 1e3:.1f} ms/step ({speedup:,.0f}x) at {count:,} users"
    )
    assert speedup >= 10.0


def test_bench_suffstats_retrain(perf_config):
    """The sufficient-statistics refit must beat the row-level IRLS.

    The training set is captured from a real loop step (year ~12), so the
    rate column carries the small-integer-ratio degeneracy the count table
    collapses.  The required speedup scales with the population: the
    compression's O(n log n) key sort amortises against the exact path's
    O(n) *per IRLS iteration*, so the ratio grows with n — >=10x at the
    full 100k benchmark scale (the acceptance number recorded in
    ``BENCH_core.json``), >=4x at the scaled-down default.
    """
    import retrain_probe

    from repro.credit.lender import Lender

    rows = retrain_probe.capture_retrain_rows(perf_config)
    incomes, rates, actions, decisions = rows
    timings = {
        mode: retrain_probe.time_retrain(mode, rows)
        for mode in ("exact", "compressed")
    }

    speedup = timings["exact"] / max(timings["compressed"], 1e-12)
    print(
        f"\nretrain exact {timings['exact'] * 1e3:.2f} ms vs compressed "
        f"{timings['compressed'] * 1e3:.2f} ms ({speedup:.1f}x) at "
        f"{perf_config.num_users:,} users"
    )
    required = 10.0 if perf_config.num_users >= 100_000 else 4.0
    assert speedup >= required

    # The two modes must agree on what they learned (the equivalence suite
    # pins the loop-level guarantee; this is the benchmark-side smoke check).
    exact_card = Lender().retrain(incomes, rates, actions, offered=decisions)
    compressed_card = Lender(retrain_mode="compressed").retrain(
        incomes, rates, actions, offered=decisions
    )
    for left, right in zip(exact_card.factors, compressed_card.factors):
        assert abs(left.points - right.points) < 1e-9


def _memory_bench_users() -> int:
    return 1_000_000 if os.environ.get("REPRO_FULL_BENCH") == "1" else 150_000


def _streaming_budgets(num_users: int) -> tuple[float, float]:
    """Return (recorder-overhead budget, absolute peak budget) in MiB.

    Calibrated with ~2x headroom over measured values (aggregate recorder
    overhead ~45 MiB and peak ~400 MiB at 1M users; proportionally less at
    the default 150k scale, where the Python/numpy baseline dominates).
    """
    if num_users >= 1_000_000:
        return 128.0, 640.0
    return 48.0, 288.0


@pytest.mark.skipif(sys.platform != "linux", reason="relies on Linux ru_maxrss units")
def test_bench_streaming_memory_ceiling():
    """Streaming recording must be bounded and >=10x leaner than full history.

    Three subprocess probes (see ``mem_probe``): the no-recorder simulation
    floor, a full-history trial and an aggregate-mode trial.  The recorder
    overhead (peak minus floor) is the quantity the streaming subsystem
    bounds: full history materialises O(steps * users) columns while the
    aggregator keeps O(users) running state, so the gap must be at least
    10x and the streaming overhead must stay inside a fixed budget.
    """
    import mem_probe

    num_users = _memory_bench_users()
    measured = mem_probe.measure_history_memory(num_users)
    overhead_budget, peak_budget = _streaming_budgets(num_users)
    print(
        f"\n{num_users:,} users x 20 steps: simulation floor "
        f"{measured['floor_peak_rss_mb']:.0f} MiB; recorder overhead full "
        f"{measured['full_history_overhead_mb']:.0f} MiB vs streaming "
        f"{measured['aggregate_history_overhead_mb']:.0f} MiB "
        f"({measured['memory_ratio_x']:.0f}x)"
    )
    assert measured["aggregate_history_overhead_mb"] <= overhead_budget, (
        "streaming recorder overhead exceeded its budget: "
        f"{measured['aggregate_history_overhead_mb']} MiB > {overhead_budget} MiB"
    )
    assert measured["aggregate_peak_rss_mb"] <= peak_budget, (
        "streaming-mode trial exceeded its absolute peak-RSS budget: "
        f"{measured['aggregate_peak_rss_mb']} MiB > {peak_budget} MiB"
    )
    assert measured["memory_ratio_x"] >= 10.0, (
        "full-history recorder should cost >=10x the streaming recorder, got "
        f"{measured['memory_ratio_x']}x"
    )


def test_bench_trial_batched():
    """The trial-batched engine must beat the serial trial loop >=2x.

    CI scale: a Monte-Carlo sweep of 32 trials x 250 users x 20 steps with
    sufficient-statistics retraining — the regime trial batching targets
    (many seeded trials, fixed per-step dispatch amortised across the
    trial axis, one core).  Results are bit-identical by construction
    (pinned in ``tests/experiments/test_batch_equivalence.py``), so this
    is a pure wall-clock comparison; both sides are measured as a min of
    three runs to damp scheduler noise.  The full-scale ratios (including
    the 8 x 20k x 20 workload, where per-trial C work dominates and the
    ratio is smaller) are recorded in ``BENCH_core.json`` under
    ``trial-batched-engine``.
    """
    from repro.experiments.runner import run_experiment

    config = CaseStudyConfig(num_users=250, num_trials=32, end_year=2021)

    def serial_run():
        return run_experiment(config, retrain_mode="compressed")

    def batched_run():
        return run_experiment(config, retrain_mode="compressed", trial_batch=True)

    batched_run()  # warm caches (income CDFs, numpy internals)
    serial_seconds = min(
        _timed(serial_run) for _ in range(3)
    )
    batched_seconds = min(
        _timed(batched_run) for _ in range(3)
    )
    speedup = serial_seconds / max(batched_seconds, 1e-12)
    print(
        f"\ntrial-batched sweep (32 x 250 x 20, compressed): serial "
        f"{serial_seconds:.3f}s vs batched {batched_seconds:.3f}s ({speedup:.2f}x)"
    )
    assert speedup >= 2.0


def test_bench_checkpoint_overhead(monkeypatch):
    """Step checkpointing must cost < 5% of trial wall clock.

    CI scale: 5k users x 400 steps in ``history_mode="aggregate"`` with
    ``checkpoint_every=100`` — four crash-consistent snapshots (export +
    serialize + fsync + atomic rename + prune) over a ~1.5 s trial.
    Aggregate mode is the recommended pairing for long checkpointed runs
    because its snapshot carries group series and count tables, not
    per-user history matrices, so the write cost stays flat as the horizon
    grows.  The overhead is measured *inside* the run — wall clock spent
    in :meth:`CheckpointSpec.write` over total trial wall clock — because
    an A/B of two full trials on a busy host drowns a ~1% effect in
    scheduler noise; ``BENCH_core.json`` records the full-scale (20k x
    400) numbers, both instrumented and end-to-end.
    """
    import tempfile

    from repro.core import checkpoint as checkpoint_module

    config = CaseStudyConfig(num_users=5_000, num_trials=1, end_year=2401)
    spent = {"seconds": 0.0, "writes": 0}
    original_write = checkpoint_module.CheckpointSpec.write

    def instrumented_write(self, payload):
        start = time.perf_counter()
        try:
            return original_write(self, payload)
        finally:
            spent["seconds"] += time.perf_counter() - start
            spent["writes"] += 1

    monkeypatch.setattr(
        checkpoint_module.CheckpointSpec, "write", instrumented_write
    )
    with tempfile.TemporaryDirectory() as snapshots:
        total = _timed(
            lambda: run_trial(
                config,
                trial_index=0,
                history_mode="aggregate",
                checkpoint_dir=snapshots,
                checkpoint_every=100,
            )
        )
    assert spent["writes"] == 4
    overhead = spent["seconds"] / total * 100
    print(
        f"\ncheckpoint overhead (5k x 400, aggregate, every=100): "
        f"{spent['seconds'] * 1e3:.1f}ms in {spent['writes']} writes over a "
        f"{total:.3f}s trial ({overhead:.2f}%)"
    )
    assert overhead < 5.0


def test_bench_campaign_cache():
    """A warm campaign sweep must be all cache hits and >= 10x faster.

    CI scale: an 8-job grid (2 policies x 2 seeds x 2 retrain modes, each
    job 2 trials x 150 users x 5 steps) swept twice from the same
    content-addressed cache.  The cold pass computes and publishes every
    job; the warm pass never simulates — it is bounded by sha256 hashing
    plus checkpoint-envelope reads, so the 10x floor holds with huge
    margin (typically 50-500x) and regressions here mean the cache key or
    the read path broke, not that the host is slow.  Bit-identity of
    cached vs fresh series is pinned separately in
    ``tests/campaign/test_campaign_cache.py``; the full-scale 24-job
    numbers are recorded in ``BENCH_core.json`` under
    ``campaign-orchestrator``.
    """
    import tempfile

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="bench",
        policies=("retraining", "static"),
        population_sizes=(150,),
        seeds=(1, 2),
        retrain_modes=("exact", "compressed"),
        num_trials=2,
        start_year=2002,
        end_year=2006,
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        cold_seconds = _timed(lambda: run_campaign(spec, cache_dir))
        warm = {}
        warm_seconds = _timed(
            lambda: warm.update(result=run_campaign(spec, cache_dir))
        )
    result = warm["result"]
    speedup = cold_seconds / max(warm_seconds, 1e-12)
    print(
        f"\ncampaign sweep ({spec.grid_size} jobs): cold {cold_seconds:.3f}s vs "
        f"warm {warm_seconds:.3f}s ({speedup:.1f}x, hit rate {result.hit_rate:.2f})"
    )
    assert result.hit_rate == 1.0
    assert speedup >= 10.0


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
