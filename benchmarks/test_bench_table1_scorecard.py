"""Benchmark E-T1: reproduce Table I (the scorecard).

Regenerates the paper's hand-written card, its worked example (score 4.953),
and a card trained on simulated warm-up data; asserts the seed-stable part
of the published shape — strongly positive income points that dominate the
(near-zero, seed-sign-dependent) history points.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import CaseStudyConfig
from repro.experiments.table1_scorecard import table1_scorecard_result


def test_bench_table1_scorecard(benchmark):
    config = CaseStudyConfig(num_users=1000, num_trials=1)
    result = benchmark.pedantic(
        table1_scorecard_result, args=(config,), rounds=1, iterations=1
    )
    # Paper row: the worked example of Table I scores 4.953.
    assert result.worked_example_score == pytest.approx(4.953, abs=1e-9)
    # Paper shape (seed-stable part): income carries large positive points;
    # the trained history points hover near zero with a seed-dependent sign
    # (pooled labels count unoffered users as non-repaying), so only their
    # magnitude relative to income is asserted.
    assert result.trained_income_points > 0
    assert abs(result.trained_history_points) < result.trained_income_points
    print()
    print(result.summary())


def test_trained_history_sign_recovers_the_paper_across_seeds():
    """The paper's negative history points hold on average across seeds.

    At any single seed the trained history points are a near-zero noise
    variable (the pooled training labels count unoffered users as
    non-repaying, diluting the signal), so the published sign is asserted
    as a population-level property: negative on average, and negative in a
    majority of seeds.
    """
    seeds = (7, 17, 101, 2024, 20240101)
    points = [
        table1_scorecard_result(
            CaseStudyConfig(num_users=1000, num_trials=1, seed=seed)
        ).trained_history_points
        for seed in seeds
    ]
    assert sum(points) / len(points) < 0
    assert sum(point < 0 for point in points) >= 3
