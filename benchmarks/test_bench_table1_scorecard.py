"""Benchmark E-T1: reproduce Table I (the scorecard).

Regenerates the paper's hand-written card, its worked example (score 4.953),
and a card trained on simulated warm-up data; asserts that the trained
points have the same sign pattern as the published ones (negative history
points, positive income points).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import CaseStudyConfig
from repro.experiments.table1_scorecard import table1_scorecard_result


def test_bench_table1_scorecard(benchmark):
    config = CaseStudyConfig(num_users=1000, num_trials=1)
    result = benchmark.pedantic(
        table1_scorecard_result, args=(config,), rounds=1, iterations=1
    )
    # Paper row: the worked example of Table I scores 4.953.
    assert result.worked_example_score == pytest.approx(4.953, abs=1e-9)
    # Paper shape: default history carries negative points, income positive.
    assert result.trained_history_points < 0
    assert result.trained_income_points > 0
    print()
    print(result.summary())
