"""Peak-RSS probes for the history-mode memory benchmark.

Each probe runs one closed-loop trial in a **fresh subprocess** and reports
the child's peak resident set size (``ru_maxrss``), so the measurements are
isolated from the parent and from each other (peak RSS is monotonic within
a process).  Three probes bracket the recording subsystem:

* ``floor`` — the identical trial with recording discarded entirely: the
  memory cost of the *simulation itself* (population, lender retraining,
  filter), which no recorder can undercut;
* ``full`` — ``run_trial`` with ``history_mode="full"`` (columnar
  ``(steps, users)`` storage);
* ``aggregate`` — ``run_trial`` with ``history_mode="aggregate"``
  (streaming group-level series).

``peak - floor`` is the memory attributable to the recorder, which is the
quantity the streaming refactor targets: the full-history recorder scales
as O(steps * users), the streaming one as O(users).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

_SRC_PATH = str(Path(__file__).resolve().parent.parent / "src")

#: run_trial in a given history mode; prints the child's peak RSS in KiB.
_TRIAL_SNIPPET = """
import resource, sys
sys.path.insert(0, {src!r})
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_trial
config = CaseStudyConfig(
    num_users={users}, num_trials=1, end_year=2021, history_mode={mode!r}
)
trial = run_trial(config, trial_index=0)
assert trial.history.num_steps == config.num_steps
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""

#: The same trial construction as run_trial, but every recorded step is
#: dropped on the floor — the no-recorder memory baseline.
_FLOOR_SNIPPET = """
import resource, sys
import numpy as np
sys.path.insert(0, {src!r})
from repro.core.ai_system import CreditScoringSystem
from repro.core.filters import DefaultRateFilter
from repro.core.loop import ClosedLoop
from repro.core.population import CreditPopulation
from repro.credit.lender import Lender
from repro.credit.mortgage import MortgageTerms
from repro.credit.repayment import GaussianRepaymentModel
from repro.data.census import default_income_table
from repro.data.synthetic import PopulationSpec, generate_population
from repro.experiments.config import CaseStudyConfig
from repro.utils.rng import derive_seed

config = CaseStudyConfig(num_users={users}, num_trials=1, end_year=2021)
rng = np.random.default_rng(derive_seed(config.seed, "trial", 0))
population = CreditPopulation(
    population=generate_population(
        PopulationSpec(size=config.num_users, race_mix=dict(config.race_mix)), rng
    ),
    income_table=default_income_table(),
    terms=MortgageTerms(
        income_multiple=config.income_multiple,
        annual_rate=config.annual_rate,
        living_cost=config.living_cost,
    ),
    repayment_model=GaussianRepaymentModel(sensitivity=config.repayment_sensitivity),
    start_year=config.start_year,
)
loop = ClosedLoop(
    ai_system=CreditScoringSystem(
        Lender(cutoff=config.cutoff, warm_up_rounds=config.warm_up_rounds)
    ),
    population=population,
    loop_filter=DefaultRateFilter(num_users=config.num_users),
)

class _DiscardingRecorder:
    num_steps = 0
    def record_step(self, step, features, decisions, actions, observation):
        type(self).num_steps += 1

loop.run(config.num_steps, rng=rng, history=_DiscardingRecorder())
assert _DiscardingRecorder.num_steps == config.num_steps
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def _run_probe(snippet: str) -> float:
    """Run one probe subprocess and return its peak RSS in MiB."""
    completed = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True,
        text=True,
        check=True,
        timeout=1200,
    )
    # ru_maxrss is KiB on Linux.
    return float(completed.stdout.strip().splitlines()[-1]) / 1024.0


def trial_peak_rss_mb(num_users: int, mode: str) -> float:
    """Return the peak RSS (MiB) of one ``run_trial`` in ``mode``."""
    return _run_probe(_TRIAL_SNIPPET.format(src=_SRC_PATH, users=num_users, mode=mode))


def floor_peak_rss_mb(num_users: int) -> float:
    """Return the peak RSS (MiB) of the trial with recording discarded."""
    return _run_probe(_FLOOR_SNIPPET.format(src=_SRC_PATH, users=num_users))


def measure_history_memory(num_users: int) -> dict:
    """Measure all three probes and derive the recorder-attributable sizes."""
    floor = floor_peak_rss_mb(num_users)
    full = trial_peak_rss_mb(num_users, "full")
    aggregate = trial_peak_rss_mb(num_users, "aggregate")
    full_overhead = max(full - floor, 0.0)
    aggregate_overhead = max(aggregate - floor, 0.0)
    return {
        "floor_peak_rss_mb": round(floor, 1),
        "full_peak_rss_mb": round(full, 1),
        "aggregate_peak_rss_mb": round(aggregate, 1),
        "full_history_overhead_mb": round(full_overhead, 1),
        "aggregate_history_overhead_mb": round(aggregate_overhead, 1),
        "memory_ratio_x": round(full_overhead / max(aggregate_overhead, 1e-9), 1),
    }
