"""Benchmark E-F2: reproduce Figure 2 (income distribution by race, 2020).

Regenerates the bracket shares of the synthetic census table and asserts the
qualitative features the paper reads off the real table: close to 20% of
Asian households above $200K, most Black households below $75K, and the
upper-tail ordering Asian > White > Black.
"""

from __future__ import annotations

import pytest

from repro.data.census import Race
from repro.experiments.fig2_income import fig2_income_distribution


def test_bench_fig2_income_distribution(benchmark):
    result = benchmark(fig2_income_distribution, 2020)
    # Paper shape: ~20% of Asian households above $200K in 2020.
    assert result.share_over_200k[Race.ASIAN] == pytest.approx(0.20, abs=0.06)
    # Paper shape: the bulk of Black households below $75K.
    assert result.share_under_75k[Race.BLACK] > 0.5
    # Paper shape: the upper tail orders Asian > White > Black.
    assert (
        result.share_over_200k[Race.ASIAN]
        > result.share_over_200k[Race.WHITE]
        > result.share_over_200k[Race.BLACK]
    )
    print()
    print(result.summary())
