"""Benchmark E-A2: ergodicity of the closed loop (Section VI).

The contractive iterated function system forgets its initial condition
(unique attractive invariant measure); the integral-action loop does not.
This is the numerical counterpart of the paper's warning that feedback with
integral action can destroy the ergodic properties equal impact relies on.
"""

from __future__ import annotations

from repro.experiments.ablations import ergodicity_ablation


def test_bench_ablation_ergodicity(benchmark):
    result = benchmark.pedantic(
        ergodicity_ablation, kwargs={"orbit_length": 3000, "seed": 7}, rounds=1, iterations=1
    )
    # Paper shape: the contractive loop is uniquely ergodic ...
    assert result.contractive_is_ergodic
    # ... while the integral-action loop retains memory of its initial condition.
    assert result.integral_breaks_ergodicity
    assert result.integral_divergence > result.contractive_max_distance
    print()
    print(result.summary())
