"""Shared fixtures for the benchmark harness.

Every figure benchmark consumes the same underlying multi-trial simulation,
so it is run once per session and cached here.  The default scale (400
users, 3 trials) keeps the whole harness under a minute; set the environment
variable ``REPRO_FULL_BENCH=1`` to run at the paper's scale (1000 users,
5 trials).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import ExperimentResult, run_experiment


def _bench_scale() -> CaseStudyConfig:
    if os.environ.get("REPRO_FULL_BENCH") == "1":
        return CaseStudyConfig()
    return CaseStudyConfig(num_users=400, num_trials=3)


@pytest.fixture(scope="session")
def bench_config() -> CaseStudyConfig:
    """The configuration used by the benchmark harness."""
    return _bench_scale()


@pytest.fixture(scope="session")
def bench_experiment(bench_config) -> ExperimentResult:
    """The shared multi-trial simulation behind Figures 3-5."""
    return run_experiment(bench_config)
