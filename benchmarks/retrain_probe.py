"""Shared retrain-benchmark probes.

Both the persistent recorder (``record_core_bench.py``) and the regression
gate (``test_bench_perf_engine.py::test_bench_suffstats_retrain``) time the
yearly refit on the *same* training set, captured from a real closed-loop
step — so the two can never drift apart and silently measure different
things.  The capture hooks a :class:`CreditScoringSystem` subclass into a
full trial and snapshots the delayed-feedback arrays of year ~12, where the
previous-rate column carries the small-integer-ratio degeneracy the
sufficient-statistics compression exploits.
"""

from __future__ import annotations

import time
from typing import Tuple

import numpy as np

from repro.core.ai_system import CreditScoringSystem
from repro.credit.lender import Lender
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_trial

#: The captured retrain inputs: (incomes, previous rates, actions, decisions).
RetrainRows = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]

#: Step whose delayed feedback is captured (year ~12: rates are well mixed).
CAPTURE_STEP = 12


def capture_retrain_rows(config: CaseStudyConfig) -> RetrainRows:
    """Run one trial and snapshot the refit inputs of ``CAPTURE_STEP``."""
    captured: dict = {}

    class CapturingSystem(CreditScoringSystem):
        def update(self, public_features, decisions, actions, observation, k):
            if k == CAPTURE_STEP:
                captured["rows"] = (
                    np.asarray(public_features["income"], float).copy(),
                    np.asarray(observation["user_default_rates"], float).copy(),
                    np.asarray(actions, float).copy(),
                    np.asarray(decisions, float).copy(),
                )
            super().update(public_features, decisions, actions, observation, k)

    run_trial(
        config,
        trial_index=0,
        policy_factory=lambda config, population: CapturingSystem(
            Lender(cutoff=config.cutoff, warm_up_rounds=config.warm_up_rounds)
        ),
    )
    return captured["rows"]


def time_retrain(mode: str, rows: RetrainRows, repeats: int = 9) -> float:
    """Return the median seconds of one ``Lender.retrain`` in ``mode``."""
    incomes, rates, actions, decisions = rows
    lender = Lender(retrain_mode=mode)
    lender.retrain(incomes, rates, actions, offered=decisions)  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        lender.retrain(incomes, rates, actions, offered=decisions)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))
