"""Record the core-engine timings to ``BENCH_core.json``.

Runs the 100k-user x 20-step workloads of ``test_bench_perf_engine.py`` at
full scale and appends one timestamped entry to ``BENCH_core.json`` at the
repository root, so the engine's performance trajectory is tracked across
PRs.  The file's first entry is the baseline measured at the seed commit
(record-of-dicts history, per-user IFS loop, recompute-only metrics).

The entry also records the history-mode memory ceilings at million-user
scale (see ``mem_probe``): the peak RSS of a no-recorder trial, of a
full-history trial and of a streaming (``history_mode="aggregate"``)
trial, plus the derived recorder overheads and their ratio — the
regression target of ``test_bench_streaming_memory_ceiling``.

Usage::

    PYTHONPATH=src python benchmarks/record_core_bench.py \
        [--label LABEL] [--users N] [--memory-users N | --skip-memory] \
        [--skip-sharded]

The entry also records the sharded-trial layout timings (1 serial shard
vs. 2 and 8 pooled worker shards at the benchmark scale, all
bit-identical) together with ``cpu_count``: the pooled layouts only pay
off on multi-core hosts, so the ratio is meaningless without the core
count next to it.

The entry also records the pooled shard *transport* timings
(``measure_sharedmem``): the same 8-shard pooled workload driven once over
the zero-copy ``multiprocessing.shared_memory`` arena and once over the
per-step pickle baseline, with a ``TransportMeter`` recording the bytes
each transport actually moved per step — the shared path must move zero
pickled user-sized payloads.

Finally the entry records the retrain-mode timings (``measure_retrain``):
the per-year refit in ``exact`` (row-level IRLS) vs ``compressed``
(sufficient-statistics count table) mode on a training set captured from a
real loop step, the unique-row count the compression collapses to, and the
whole-trial wall clocks per mode — the refit is the central serial phase
of the sharded runner, so this is the Amdahl number.

The entry also records the trial-batched engine timings
(``measure_trial_batched``): serial vs lockstep ``trial_batch=True``
experiment wall clocks (bit-identical by construction) at the 8-trial x
20k-user x 20-step workload in both retrain modes, and at a 32-trial x
1k-user Monte-Carlo sweep — the many-seeded-trials regime the batched
engine targets.  Each side is a min of two runs.

Finally the entry records the checkpoint-overhead timings
(``measure_checkpoint_overhead``): a 20k-user x 400-step aggregate-mode
trial with and without ``checkpoint_every=100`` crash-consistent
snapshotting, plus the snapshot's on-disk size — the fault-tolerance
budget is < 5% overhead at that cadence.

The entry also records the campaign orchestrator timings
(``measure_campaign``): a figure-sized 24-job scenario x policy x seed x
retrain-mode grid swept twice from one content-addressed result cache —
the cold pass computes every job through the planner-routed job pool, the
warm pass is a pure cache read (hit rate 1.0) — plus the cache's on-disk
size and the job-pool core budget.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_core.json"


def _git_revision() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
        )
    except Exception:
        return "unknown"


def measure(num_users: int) -> dict:
    from repro.core.population import IFSPopulation
    from repro.experiments.config import CaseStudyConfig
    from repro.experiments.runner import run_trial
    from repro.markov.ifs import SignalDependentIFS
    from repro.markov.maps import AffineMap

    config = CaseStudyConfig(num_users=num_users, num_trials=1, end_year=2021)

    start = time.perf_counter()
    trial = run_trial(config, trial_index=0)
    trial_seconds = time.perf_counter() - start

    history = trial.history
    history.running_default_rates()  # warm-up
    start = time.perf_counter()
    for _ in range(200):
        history.running_default_rates()
        history.running_action_averages()
        history.approval_rates()
    metrics_incremental_ms = (time.perf_counter() - start) / 200 * 1e3
    start = time.perf_counter()
    for _ in range(3):
        history.recompute_running_default_rates()
        history.recompute_running_action_averages()
        history.recompute_approval_rates()
    metrics_recompute_ms = (time.perf_counter() - start) / 3 * 1e3

    shared = SignalDependentIFS(
        transition_maps=(AffineMap.scalar(0.5, 0.0), AffineMap.scalar(0.5, 0.5)),
        transition_probabilities=lambda s: [0.8, 0.2] if s > 0.5 else [0.3, 0.7],
        output_maps=(AffineMap.scalar(1.0, 0.0), AffineMap.scalar(0.0, 1.0)),
        output_probabilities=lambda s: [0.6, 0.4] if s > 0.5 else [0.1, 0.9],
    )
    initial = [np.array([0.0])] * num_users
    decisions = (np.arange(num_users) % 2).astype(float)
    batched = IFSPopulation(users=[shared] * num_users, initial_states=initial)
    generator = np.random.default_rng(0)
    batched.respond(decisions, 0, generator)  # warm-up
    start = time.perf_counter()
    for k in range(3):
        batched.respond(decisions, k, generator)
    ifs_batched_ms = (time.perf_counter() - start) / 3 * 1e3
    fallback = IFSPopulation(
        users=[shared] * num_users, initial_states=initial, vectorize=False
    )  # the seed engine's per-user loop
    start = time.perf_counter()
    fallback.respond(decisions, 0, np.random.default_rng(0))
    ifs_loop_ms = (time.perf_counter() - start) * 1e3

    return {
        "cpu_count": os.cpu_count(),
        "trial_100k_x20_s": round(trial_seconds, 4),
        "metrics_query_incremental_ms": round(metrics_incremental_ms, 5),
        "metrics_query_recompute_ms": round(metrics_recompute_ms, 3),
        "metrics_speedup_x": round(metrics_recompute_ms / max(metrics_incremental_ms, 1e-9), 1),
        "ifs_respond_batched_ms": round(ifs_batched_ms, 3),
        "ifs_respond_per_user_loop_ms": round(ifs_loop_ms, 1),
        "ifs_speedup_x": round(ifs_loop_ms / max(ifs_batched_ms, 1e-9), 1),
    }


def measure_sharded(num_users: int) -> dict:
    """Time the sharded-trial layouts (1 serial, 2 and 8 pooled workers).

    Results are bit-identical across layouts by construction (the random
    schedule depends only on the canonical shard partition), so this is a
    pure wall-clock comparison.  The pooled layouts can only beat the
    serial one when real cores exist: each step still retrains the
    scorecard centrally (Amdahl's serial fraction), and on a single-CPU
    host the per-step gather/scatter IPC is pure overhead — which is why
    ``cpu_count`` is recorded alongside the timings.
    """
    from repro.experiments.config import CaseStudyConfig
    from repro.experiments.runner import run_trial

    config = CaseStudyConfig(num_users=num_users, num_trials=1, end_year=2021)
    timings: dict = {"cpu_count": os.cpu_count()}
    layouts = [
        ("sharded_trial_1shard_serial_s", {}),
        ("sharded_trial_2shards_pool_s", dict(num_shards=2, shard_parallel=True)),
        ("sharded_trial_8shards_pool_s", dict(num_shards=8, shard_parallel=True)),
    ]
    for key, kwargs in layouts:
        start = time.perf_counter()
        run_trial(config, trial_index=0, **kwargs)
        timings[key] = round(time.perf_counter() - start, 4)
    timings["sharded_speedup_8x_vs_1_x"] = round(
        timings["sharded_trial_1shard_serial_s"]
        / max(timings["sharded_trial_8shards_pool_s"], 1e-9),
        2,
    )
    return timings


def measure_sharedmem(num_users: int) -> dict:
    """Time the pooled shard step transports: shared-memory arena vs pickle.

    Both transports run the identical 8-shard pooled layout (the
    trajectories are bit-identical by construction — the transport moves
    the same numbers, it just moves them differently), so the comparison
    isolates the per-step message cost: the ``pickle`` baseline serialises
    every worker's feature/action/rate rows plus the scattered decision
    slices through the pool's pipes each step, while the ``shared``
    transport memcpys them through one ``multiprocessing.shared_memory``
    arena and sends only constant-size coordination tokens.  A
    :class:`~repro.core.shardmem.TransportMeter` installed around each run
    records the per-step bytes each transport actually moved — the
    structural win that holds on any host — next to the wall clocks, which
    only separate once real cores exist (on a single-CPU host both sides
    are dominated by the same serialized compute, so ``cpu_count`` travels
    with the numbers).
    """
    from repro.core import (
        ClosedLoop,
        CreditPopulation,
        CreditScoringSystem,
        DefaultRateFilter,
    )
    from repro.core.shardmem import TransportMeter, set_transport_meter
    from repro.credit.lender import Lender
    from repro.data import PopulationSpec, generate_population

    num_steps = 20

    def timed(transport: str) -> tuple[float, TransportMeter]:
        synthetic = generate_population(PopulationSpec(size=num_users), rng=7)
        population = CreditPopulation(population=synthetic, start_year=2002)
        loop = ClosedLoop(
            ai_system=CreditScoringSystem(Lender(cutoff=0.4, warm_up_rounds=2)),
            population=population,
            loop_filter=DefaultRateFilter(num_users=num_users),
        )
        meter = TransportMeter()
        set_transport_meter(meter)
        try:
            start = time.perf_counter()
            loop.run(
                num_steps,
                rng=7,
                history_mode="aggregate",
                groups=population.groups,
                num_shards=8,
                shard_parallel=True,
                shard_transport=transport,
            )
            elapsed = time.perf_counter() - start
        finally:
            set_transport_meter(None)
        return elapsed, meter

    shared_s, shared_meter = timed("shared")
    pickle_s, pickle_meter = timed("pickle")
    return {
        "sharedmem_8shards_shared_s": round(shared_s, 4),
        "sharedmem_8shards_pickle_s": round(pickle_s, 4),
        "sharedmem_wall_clock_speedup_x": round(pickle_s / max(shared_s, 1e-9), 2),
        "sharedmem_per_step_shared_bytes": int(shared_meter.per_step_shared()),
        "sharedmem_per_step_pickled_bytes_on_shared_path": int(
            shared_meter.per_step_pickled()
        ),
        "sharedmem_per_step_pickled_bytes_baseline": int(
            pickle_meter.per_step_pickled()
        ),
    }


def measure_retrain(num_users: int) -> dict:
    """Time the yearly refit: exact row-level IRLS vs sufficient statistics.

    The training set is captured from a real closed-loop step (year ~12 of
    a full-scale trial), so the timings reflect the label balance, the
    offered-mask density and — crucially — the degeneracy of the previous
    average default rates (small-integer ratios) that the compressed mode's
    count table exploits.  Alongside the isolated refit timings the entry
    records whole-trial wall clocks per retrain mode: the refit is the
    dominant serial phase, so the trial ratio is the Amdahl headline.
    """
    import retrain_probe

    from repro.experiments.config import CaseStudyConfig
    from repro.experiments.runner import run_trial
    from repro.scoring.features import clipped_default_rates, income_code
    from repro.scoring.suffstats import CompressedDesign

    config = CaseStudyConfig(num_users=num_users, num_trials=1, end_year=2021)
    timings: dict = {}
    for key, kwargs in (
        ("trial_exact_s", dict(retrain_mode="exact")),
        ("trial_compressed_s", dict(retrain_mode="compressed")),
        ("trial_compressed_warm_s", dict(retrain_mode="compressed", warm_start=True)),
    ):
        start = time.perf_counter()
        run_trial(config, trial_index=0, **kwargs)
        timings[key] = round(time.perf_counter() - start, 4)
    timings["trial_speedup_compressed_x"] = round(
        timings["trial_exact_s"] / max(timings["trial_compressed_s"], 1e-9), 2
    )

    rows = retrain_probe.capture_retrain_rows(config)
    incomes, rates, actions, decisions = rows
    # Same compression recipe as Lender._retrain_compressed (including the
    # tolerance clip), so the reported unique-row count is what the timed
    # refits actually see.
    table = CompressedDesign.from_arrays(
        income_code(incomes), clipped_default_rates(rates), actions, offered=decisions
    )
    timings["retrain_rows"] = int(decisions.sum())
    timings["retrain_unique_rows"] = table.num_unique
    for key, mode in (("retrain_exact_ms", "exact"), ("retrain_compressed_ms", "compressed")):
        timings[key] = round(retrain_probe.time_retrain(mode, rows) * 1e3, 3)
    timings["retrain_speedup_x"] = round(
        timings["retrain_exact_ms"] / max(timings["retrain_compressed_ms"], 1e-9), 1
    )
    return timings


def measure_trial_batched() -> dict:
    """Time serial vs trial-batched experiments (identical results).

    Two workloads: the 8 x 20k x 20 target of the trial-batching issue
    (where per-trial C work — income draws, probit, refits, history
    memcpy — dominates and bounds the achievable ratio) and a 32 x 1k x 20
    Monte-Carlo sweep (many paper-scale trials, the regime where the
    amortised per-step dispatch is the larger fraction).  ``cpu_count``
    travels with the numbers: batching is the single-core strategy, while
    trial pooling overtakes it once real cores exist.
    """
    import timeit

    from repro.experiments.config import CaseStudyConfig
    from repro.experiments.runner import run_experiment

    headline = CaseStudyConfig(num_users=20_000, num_trials=8, end_year=2021)
    sweep = CaseStudyConfig(num_users=1_000, num_trials=32, end_year=2021)
    workloads = [
        ("trials8_users20k_exact", headline, {}),
        ("trials8_users20k_compressed", headline, {"retrain_mode": "compressed"}),
        ("sweep_trials32_users1k_compressed", sweep, {"retrain_mode": "compressed"}),
    ]
    timings: dict = {"cpu_count": os.cpu_count()}
    for key, config, kwargs in workloads:
        run_experiment(config, trial_batch=True, **kwargs)  # warm caches
        serial = min(
            timeit.repeat(
                lambda: run_experiment(config, **kwargs), number=1, repeat=2
            )
        )
        batched = min(
            timeit.repeat(
                lambda: run_experiment(config, trial_batch=True, **kwargs),
                number=1,
                repeat=2,
            )
        )
        timings[f"{key}_serial_s"] = round(serial, 4)
        timings[f"{key}_batched_s"] = round(batched, 4)
        timings[f"{key}_batched_speedup_x"] = round(serial / max(batched, 1e-9), 2)
    return timings


def measure_checkpoint_overhead() -> dict:
    """Time a long-horizon trial with and without step checkpointing.

    The fault-tolerance issue budgets checkpointing at < 5% of trial wall
    clock with ``checkpoint_every=100``, so the workload must actually
    cross several boundaries: 20k users x 400 steps (the income table
    clamps past its last calibrated year) in ``history_mode="aggregate"``,
    whose bounded snapshot (group series + filter counts + lender state,
    no per-user history matrices) is the recommended pairing for long
    runs.  Two readings are recorded: the end-to-end A/B delta (min of
    two runs per side — noisy on a busy host) and the instrumented
    fraction (wall clock inside :meth:`CheckpointSpec.write` over trial
    wall clock — the regression target of
    ``test_bench_checkpoint_overhead``), plus the on-disk snapshot size,
    since the write cost is dominated by serialize + fsync of exactly
    those bytes.
    """
    import tempfile

    from repro.core import checkpoint as checkpoint_module
    from repro.core.checkpoint import list_checkpoints
    from repro.experiments.config import CaseStudyConfig
    from repro.experiments.runner import run_trial

    config = CaseStudyConfig(num_users=20_000, num_trials=1, end_year=2401)

    def timed(**kwargs) -> float:
        start = time.perf_counter()
        run_trial(config, trial_index=0, history_mode="aggregate", **kwargs)
        return time.perf_counter() - start

    timed()  # warm caches
    baseline = min(timed() for _ in range(2))
    spent = {"seconds": 0.0}
    original_write = checkpoint_module.CheckpointSpec.write

    def instrumented_write(self, payload):
        start = time.perf_counter()
        try:
            return original_write(self, payload)
        finally:
            spent["seconds"] += time.perf_counter() - start

    with tempfile.TemporaryDirectory() as snapshots:
        checkpoint_module.CheckpointSpec.write = instrumented_write
        try:
            runs = []
            for _ in range(2):
                spent["seconds"] = 0.0
                runs.append(timed(checkpoint_dir=snapshots, checkpoint_every=100))
            checkpointed = min(runs)
        finally:
            checkpoint_module.CheckpointSpec.write = original_write
        newest = list_checkpoints(snapshots, "trial-0000")[0][1]
        snapshot_kb = newest.stat().st_size / 1024
    return {
        "checkpoint_trial_20k_x400_baseline_s": round(baseline, 4),
        "checkpoint_trial_20k_x400_every100_s": round(checkpointed, 4),
        "checkpoint_overhead_pct": round(
            (checkpointed - baseline) / baseline * 100, 2
        ),
        "checkpoint_write_time_pct": round(spent["seconds"] / runs[-1] * 100, 2),
        "checkpoint_snapshot_kb": round(snapshot_kb, 1),
    }


def measure_campaign() -> dict:
    """Time a figure-sized campaign sweep cold vs warm (all cache hits).

    A 24-job grid — 2 scenarios x 2 policies x 3 seeds x 2 retrain modes,
    each job a 2-trial x 400-user x 10-step experiment — is swept twice
    from the same content-addressed cache: the cold pass computes and
    publishes every job through the planner-routed job pool, the warm pass
    is a pure cache read (the key digests only trajectory-defining fields,
    so every entry hits regardless of execution layout).  The warm/cold
    ratio is the figure-iteration speedup the campaign orchestrator buys;
    the acceptance floor (>= 10x, warm hit rate 1.0) is enforced by
    ``test_bench_campaign_cache``.
    """
    import tempfile

    from repro.campaign import CampaignSpec, ResultCache, run_campaign

    spec = CampaignSpec(
        name="bench",
        scenarios=("baseline", "recession"),
        policies=("retraining", "static"),
        population_sizes=(400,),
        seeds=(1, 2, 3),
        retrain_modes=("exact", "compressed"),
        num_trials=2,
        start_year=2002,
        end_year=2011,
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        cold = run_campaign(spec, cache_dir)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_campaign(spec, cache_dir)
        warm_seconds = time.perf_counter() - start
        cache_bytes = ResultCache(cache_dir).total_bytes()
    return {
        "campaign_jobs": spec.grid_size,
        "campaign_budget": cold.budget.describe(),
        "campaign_cold_s": round(cold_seconds, 4),
        "campaign_warm_s": round(warm_seconds, 4),
        "campaign_warm_speedup_x": round(cold_seconds / max(warm_seconds, 1e-9), 1),
        "campaign_warm_hit_rate": warm.hit_rate,
        "campaign_cache_kb": round(cache_bytes / 1024, 1),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="columnar-engine", help="entry label")
    parser.add_argument("--users", type=int, default=100_000, help="benchmark population size")
    parser.add_argument(
        "--memory-users",
        type=int,
        default=1_000_000,
        help="population size of the history-mode memory probes",
    )
    parser.add_argument(
        "--skip-memory",
        action="store_true",
        help="skip the (slow) subprocess memory probes",
    )
    parser.add_argument(
        "--skip-sharded",
        action="store_true",
        help="skip the sharded-trial layout timings",
    )
    parser.add_argument(
        "--skip-sharedmem",
        action="store_true",
        help="skip the shared-memory vs pickle shard-transport timings",
    )
    parser.add_argument(
        "--skip-retrain",
        action="store_true",
        help="skip the retrain-mode (exact vs compressed) timings",
    )
    parser.add_argument(
        "--skip-trial-batch",
        action="store_true",
        help="skip the serial-vs-trial-batched experiment timings",
    )
    parser.add_argument(
        "--skip-campaign",
        action="store_true",
        help="skip the campaign cold-vs-warm cache timings",
    )
    parser.add_argument(
        "--skip-checkpoint",
        action="store_true",
        help="skip the checkpoint-overhead timings",
    )
    args = parser.parse_args()

    timings = measure(args.users)
    if not args.skip_sharded:
        timings.update(measure_sharded(args.users))
    if not args.skip_sharedmem:
        timings.update(measure_sharedmem(args.users))
    if not args.skip_retrain:
        timings.update(measure_retrain(args.users))
    if not args.skip_trial_batch:
        timings.update(measure_trial_batched())
    if not args.skip_checkpoint:
        timings.update(measure_checkpoint_overhead())
    if not args.skip_campaign:
        timings.update(measure_campaign())
    memory: dict = {}
    if not args.skip_memory:
        import mem_probe

        memory = {
            "memory_num_users": args.memory_users,
            **mem_probe.measure_history_memory(args.memory_users),
        }
    entry = {
        "label": args.label,
        "git": _git_revision(),
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "num_users": args.users,
        "num_steps": 20,
        **timings,
        **memory,
    }
    document = {"benchmark": "core-simulation-engine", "entries": []}
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    document["entries"].append(entry)
    BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(json.dumps(entry, indent=2))
    print(f"appended to {BENCH_PATH}")


if __name__ == "__main__":
    main()
