"""Convergence diagnostics for long-run (equal-impact) averages.

Definition 3 of the paper is a statement about the limit of a time average.
On a finite simulation one can only *estimate* that limit, so the natural
deliverable is an estimate with an uncertainty: the batch-means method
splits the series into contiguous batches, treats the batch means as
approximately independent draws, and produces a standard error and a
confidence interval for the long-run average that remain valid under the
serial correlation a closed loop induces.

Two entry points are provided:

* :func:`estimate_long_run_average` — one series, one confidence interval;
* :func:`impact_gap_significance` — per-group long-run estimates plus a
  judgement of whether the observed gap between the extreme groups exceeds
  what the combined uncertainty can explain (i.e. whether the data are
  inconsistent with equal impact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.utils.validation import require_in_range

__all__ = [
    "LongRunEstimate",
    "batch_means",
    "estimate_long_run_average",
    "ImpactGapSignificance",
    "impact_gap_significance",
]


@dataclass(frozen=True)
class LongRunEstimate:
    """A long-run average with a batch-means confidence interval.

    Attributes
    ----------
    estimate:
        The time average over the analysed window.
    standard_error:
        Batch-means standard error of the estimate.
    halfwidth:
        Half-width of the confidence interval at the requested level.
    confidence:
        The confidence level the half-width corresponds to.
    num_batches:
        Number of batches used.
    """

    estimate: float
    standard_error: float
    halfwidth: float
    confidence: float
    num_batches: int

    @property
    def interval(self) -> Tuple[float, float]:
        """Return the confidence interval as a ``(low, high)`` pair."""
        return (self.estimate - self.halfwidth, self.estimate + self.halfwidth)

    def contains(self, value: float) -> bool:
        """Return whether ``value`` lies inside the confidence interval."""
        low, high = self.interval
        return low <= value <= high


def batch_means(series: Sequence[float], num_batches: int) -> np.ndarray:
    """Split ``series`` into contiguous batches and return each batch's mean.

    Any remainder that does not fill a whole batch is dropped from the
    front, so the most recent observations (the ones closest to the
    stationary regime) are always used.
    """
    array = np.asarray(series, dtype=float).ravel()
    if num_batches < 2:
        raise ValueError("num_batches must be at least 2")
    if array.size < num_batches:
        raise ValueError("series must contain at least one observation per batch")
    batch_size = array.size // num_batches
    trimmed = array[array.size - batch_size * num_batches :]
    return trimmed.reshape(num_batches, batch_size).mean(axis=1)


def estimate_long_run_average(
    series: Sequence[float],
    num_batches: int = 10,
    confidence: float = 0.95,
    burn_in: float = 0.2,
) -> LongRunEstimate:
    """Estimate the long-run average of a serially correlated series.

    Parameters
    ----------
    series:
        The per-step observations (e.g. one user's actions ``y_i(k)``).
    num_batches:
        Number of batch-means batches.
    confidence:
        Confidence level of the reported interval.
    burn_in:
        Fraction of the series discarded as transient before batching.
    """
    require_in_range(confidence, "confidence", 0.0, 1.0, inclusive=False)
    require_in_range(burn_in, "burn_in", 0.0, 1.0)
    array = np.asarray(series, dtype=float).ravel()
    if array.size == 0:
        raise ValueError("series must be non-empty")
    start = int(array.size * burn_in)
    window = array[start:]
    means = batch_means(window, num_batches)
    estimate = float(window.mean())
    standard_error = float(means.std(ddof=1) / np.sqrt(means.size))
    t_critical = float(stats.t.ppf(0.5 + confidence / 2.0, df=means.size - 1))
    return LongRunEstimate(
        estimate=estimate,
        standard_error=standard_error,
        halfwidth=t_critical * standard_error,
        confidence=confidence,
        num_batches=int(means.size),
    )


@dataclass(frozen=True)
class ImpactGapSignificance:
    """Per-group long-run estimates and the significance of their gap.

    Attributes
    ----------
    group_estimates:
        One :class:`LongRunEstimate` per group.
    gap:
        Difference between the largest and smallest group estimates.
    gap_uncertainty:
        Combined half-width of the two extreme groups' intervals.
    """

    group_estimates: Dict[object, LongRunEstimate]
    gap: float
    gap_uncertainty: float

    @property
    def gap_is_significant(self) -> bool:
        """Return whether the observed gap exceeds its combined uncertainty.

        A significant gap means the simulation is inconsistent with equal
        impact; an insignificant gap means the data cannot distinguish the
        groups' long-run averages.
        """
        return self.gap > self.gap_uncertainty


def impact_gap_significance(
    outcomes: np.ndarray,
    groups: Mapping[object, np.ndarray],
    num_batches: int = 8,
    confidence: float = 0.95,
    burn_in: float = 0.2,
) -> ImpactGapSignificance:
    """Judge whether per-group long-run averages differ beyond their uncertainty.

    Parameters
    ----------
    outcomes:
        ``(steps, users)`` matrix of per-step outcomes ``y_i(k)``.
    groups:
        Mapping from group key to user-index array; empty groups are skipped.
    num_batches, confidence, burn_in:
        Passed to :func:`estimate_long_run_average` on each group's per-step
        mean series.
    """
    matrix = np.asarray(outcomes, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ValueError("outcomes must be a non-empty (steps, users) matrix")
    estimates: Dict[object, LongRunEstimate] = {}
    for key, indices in groups.items():
        if indices.size == 0:
            continue
        group_series = matrix[:, indices].mean(axis=1)
        estimates[key] = estimate_long_run_average(
            group_series, num_batches=num_batches, confidence=confidence, burn_in=burn_in
        )
    if len(estimates) < 2:
        raise ValueError("need at least two non-empty groups")
    ordered = sorted(estimates.values(), key=lambda item: item.estimate)
    lowest, highest = ordered[0], ordered[-1]
    return ImpactGapSignificance(
        group_estimates=estimates,
        gap=float(highest.estimate - lowest.estimate),
        gap_uncertainty=float(highest.halfwidth + lowest.halfwidth),
    )
