"""User populations: the stochastic response side of the closed loop.

A population exposes two hooks per time step.  ``begin_step`` lets the users
reveal whatever public (non-protected) features the AI system is allowed to
see before deciding — in the credit case study the yearly income, of which
the lender only uses the income code.  ``respond`` then consumes the AI
system's decisions and produces the users' stochastic actions ``y_i(k)``.

Both hooks accept either a single :class:`numpy.random.Generator` (the
legacy whole-population stream, kept for direct callers and benchmarks) or
a *sequence* of generators — one per canonical user shard of the
population's :class:`~repro.core.sharding.ShardPlan`.  The sharded form is
what :class:`~repro.core.loop.ClosedLoop` drives: each shard's draws come
from its own derived stream
(:func:`~repro.utils.rng.shard_step_generator`), so the trajectory is
independent of how many worker processes execute the shards, and a worker
holding only a ``shard_slice`` of the population reproduces exactly the
draws the serial engine makes for those shards.

Two populations are provided: :class:`CreditPopulation`, the paper's
mortgage borrowers (income redrawn yearly from the census-like table,
repayment from the Gaussian conditional-independence model), and
:class:`IFSPopulation`, a population of signal-dependent iterated function
systems matching the abstract user model of Section VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.core.sharding import ShardPlan
from repro.credit.borrower import affordability_state
from repro.credit.mortgage import MortgageTerms
from repro.credit.repayment import GaussianRepaymentModel
from repro.data.census import IncomeTable, Race, default_income_table
from repro.data.income import IncomeSampler
from repro.data.synthetic import SyntheticPopulation
from repro.markov.ifs import SignalDependentIFS
from repro.utils.rng import spawn_generator

__all__ = [
    "PopulationPublicFeatures",
    "Population",
    "CreditPopulation",
    "IFSPopulation",
]


#: Public features revealed at the start of a step: a mapping from feature
#: name to a per-user array (e.g. ``{"income": incomes}``).
PopulationPublicFeatures = Dict[str, np.ndarray]

#: Either one generator for the whole population (legacy stream) or one
#: generator per canonical shard of the population's plan.
ShardedRng = "np.random.Generator | Sequence[np.random.Generator]"


def _per_shard_generators(
    rng, plan: ShardPlan
) -> List[np.random.Generator] | None:
    """Return the per-shard generator list, or ``None`` for the legacy form."""
    if isinstance(rng, np.random.Generator) or rng is None or np.isscalar(rng):
        return None
    rngs = list(rng)
    if len(rngs) != plan.num_shards:
        raise ValueError(
            "expected one generator per canonical shard "
            f"({plan.num_shards}), got {len(rngs)}"
        )
    return rngs


@runtime_checkable
class Population(Protocol):
    """Protocol for the population box of the closed loop."""

    @property
    def num_users(self) -> int:
        """Return the number of users in the population."""
        ...  # pragma: no cover - protocol

    def begin_step(
        self, k: int, rng: np.random.Generator
    ) -> PopulationPublicFeatures:
        """Reveal the public features for step ``k`` (may be empty)."""
        ...  # pragma: no cover - protocol

    def respond(
        self, decisions: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return the users' actions in response to ``decisions``."""
        ...  # pragma: no cover - protocol


class CreditPopulation:
    """The paper's population of mortgage borrowers.

    Each step (year) every user's income is redrawn from the census-like
    table for their race; the income is revealed as a public feature, the
    affordability state of equation (10) is computed privately, and the
    repayment action follows the Gaussian conditional-independence model of
    equation (11).

    The population is *shardable*: it owns a canonical
    :class:`~repro.core.sharding.ShardPlan`, draws incomes and repayments
    shard by shard when given per-shard generators, and can be sliced into
    contiguous sub-populations (:meth:`shard_slice`) whose draws replay the
    parent's exactly for the same shard streams.

    Parameters
    ----------
    population:
        The synthetic population (race per user).
    income_table:
        Income distributions by year and race (defaults to the embedded
        table).
    terms:
        Mortgage terms (defaults to the paper's).
    repayment_model:
        The repayment model (defaults to the paper's sensitivity of 5).
    start_year:
        Calendar year corresponding to step ``k = 0`` (paper: 2002).
    shard_plan:
        Partition override used by :meth:`shard_slice` to keep a slice on
        the parent's canonical shard boundaries; defaults to the canonical
        plan for the population size.
    """

    def __init__(
        self,
        population: SyntheticPopulation,
        income_table: IncomeTable | None = None,
        terms: MortgageTerms | None = None,
        repayment_model: GaussianRepaymentModel | None = None,
        start_year: int = 2002,
        shard_plan: ShardPlan | None = None,
    ) -> None:
        self._population = population
        self._sampler = IncomeSampler(income_table or default_income_table())
        self._terms = terms or MortgageTerms()
        self._repayment_model = repayment_model or GaussianRepaymentModel()
        self._start_year = start_year
        self._current_incomes: np.ndarray | None = None
        self._current_affordability: np.ndarray | None = None
        # The race partition is fixed for the population's lifetime, so the
        # per-race index arrays (the paper's N_s) are computed once here and
        # reused by every step's income draw instead of rebuilding an
        # object-dtype race array and boolean masks per step.
        self._race_indices = population.indices_by_race()
        plan = shard_plan or ShardPlan.canonical(population.size)
        if plan.num_users != population.size:
            raise ValueError("shard_plan must cover exactly the population")
        self._plan = plan
        # Per-shard race partitions, re-based to each shard's local indices:
        # shard s's income draw is then a self-contained sample over its own
        # contiguous user range, identical whether it runs in the parent
        # population or in a shard_slice on a worker.
        self._shard_race_indices: List[Dict[Race, np.ndarray]] = []
        for lo, hi in self._plan.bounds:
            local: Dict[Race, np.ndarray] = {}
            for race, indices in self._race_indices.items():
                start, stop = np.searchsorted(indices, (lo, hi))
                local[race] = indices[start:stop] - lo
            self._shard_race_indices.append(local)

    @property
    def num_users(self) -> int:
        """Return the number of users."""
        return self._population.size

    @property
    def shard_plan(self) -> ShardPlan:
        """Return the canonical shard partition of this population."""
        return self._plan

    @property
    def feature_channels(self) -> Tuple[str, ...]:
        """Return the names of the public-feature arrays ``begin_step`` emits.

        Declared statically so the pooled shard path can size its
        shared-memory arena (one float64 channel row per name) before the
        first step runs; must match the keys of every ``begin_step``
        return.  Populations without this property fall back to the
        pickled per-step transport.
        """
        return ("income",)

    @property
    def races(self) -> np.ndarray:
        """Return the per-user race labels (protected attribute)."""
        return self._population.races_array()

    @property
    def groups(self) -> Dict[Race, np.ndarray]:
        """Return the per-race index sets ``N_s`` (precomputed once).

        The arrays are copies: the cached partition also drives every step's
        income draw, so callers may freely mutate what they get back.
        """
        return {race: indices.copy() for race, indices in self._race_indices.items()}

    @property
    def terms(self) -> MortgageTerms:
        """Return the mortgage terms."""
        return self._terms

    @property
    def sampler(self) -> IncomeSampler:
        """Return the income sampler (and its per-(year, race) CDF cache).

        The trial-batched engine draws incomes itself (it replays the
        sharded draw order over stacked trials) and reads the sampler
        here rather than building another one per run.
        """
        return self._sampler

    def shard_race_partition(self) -> List[Dict[Race, np.ndarray]]:
        """Return, per canonical shard, the shard-local race index arrays.

        Entry ``s`` maps each race to the indices of its members *within*
        shard ``s`` (re-based to the shard's ``lo``), in the exact layout
        the sharded income draw consumes.  The trial-batched engine reads
        this to replay every shard's draw order without driving
        ``begin_step``.  The arrays are the population's own precomputed
        partition — callers must not mutate them.
        """
        return self._shard_race_indices

    @property
    def current_affordability(self) -> np.ndarray:
        """Return the private states ``x_i(k)`` of the current step."""
        if self._current_affordability is None:
            raise RuntimeError("begin_step must be called before reading states")
        return self._current_affordability.copy()

    def year_of_step(self, k: int) -> int:
        """Return the calendar year corresponding to step ``k``."""
        return self._start_year + k

    def shard_slice(self, lo: int, hi: int) -> "CreditPopulation":
        """Return the sub-population over users ``[lo, hi)``.

        The range must be a union of consecutive canonical shards; the
        slice's internal plan is the localized restriction of the parent's,
        so driving it with the same (global-shard) generators reproduces
        the parent's draws for those users bit for bit.
        """
        shard_start, shard_stop = self._plan.shard_index_range(lo, hi)
        return CreditPopulation(
            population=SyntheticPopulation(
                races=self._population.races[lo:hi]
            ),
            income_table=self._sampler.table,
            terms=self._terms,
            repayment_model=self._repayment_model,
            start_year=self._start_year,
            shard_plan=self._plan.localized(shard_start, shard_stop),
        )

    def export_shard_state(self) -> Dict[str, object]:
        """Return the mutable per-user state of the current step."""
        return {
            "incomes": None
            if self._current_incomes is None
            else self._current_incomes.copy(),
            "affordability": None
            if self._current_affordability is None
            else self._current_affordability.copy(),
        }

    def import_shard_state(self, lo: int, state: Dict[str, object]) -> None:
        """Write a shard's exported state back into users ``[lo, ...)``."""
        incomes = state.get("incomes")
        affordability = state.get("affordability")
        if incomes is None or affordability is None:
            return
        incomes = np.asarray(incomes, dtype=float)
        affordability = np.asarray(affordability, dtype=float)
        if self._current_incomes is None:
            self._current_incomes = np.empty(self.num_users, dtype=float)
            self._current_affordability = np.empty(self.num_users, dtype=float)
        self._current_incomes[lo : lo + incomes.size] = incomes
        self._current_affordability[lo : lo + affordability.size] = affordability

    def begin_step(self, k: int, rng) -> PopulationPublicFeatures:
        """Redraw incomes for step ``k`` and reveal them as public features.

        ``rng`` is either one generator (legacy whole-population draw) or a
        sequence with one generator per canonical shard, in which case each
        shard's incomes are drawn from its own stream.
        """
        year = self.year_of_step(k)
        shard_rngs = _per_shard_generators(rng, self._plan)
        if shard_rngs is None:
            generator = spawn_generator(rng)
            incomes = self._sampler.sample_population_indexed(
                year, self._race_indices, self.num_users, generator
            )
        else:
            incomes = np.empty(self.num_users, dtype=float)
            for (lo, hi), local_indices, generator in zip(
                self._plan.bounds, self._shard_race_indices, shard_rngs
            ):
                incomes[lo:hi] = self._sampler.sample_population_indexed(
                    year, local_indices, hi - lo, generator
                )
        self._current_incomes = incomes
        self._current_affordability = affordability_state(incomes, self._terms)
        return {"income": incomes.copy()}

    def respond(self, decisions: np.ndarray, k: int, rng) -> np.ndarray:
        """Sample the repayment actions ``y_i(k)`` for the given decisions.

        Accepts the same single-generator or per-shard-generator forms as
        :meth:`begin_step`; the per-shard form continues each shard's
        stream where ``begin_step`` left it.
        """
        if self._current_affordability is None:
            raise RuntimeError("begin_step must be called before respond")
        shard_rngs = _per_shard_generators(rng, self._plan)
        if shard_rngs is None:
            generator = spawn_generator(rng)
            return self._repayment_model.sample_repayments(
                self._current_affordability, decisions, generator
            ).astype(float)
        decisions_array = np.asarray(decisions, dtype=float).ravel()
        actions = np.empty(self.num_users, dtype=float)
        for (lo, hi), generator in zip(self._plan.bounds, shard_rngs):
            actions[lo:hi] = self._repayment_model.sample_repayments(
                self._current_affordability[lo:hi],
                decisions_array[lo:hi],
                generator,
            ).astype(float)
        return actions


@dataclass
class IFSPopulation:
    """A population of users, each modelled as a signal-dependent IFS.

    This is the abstract user model of Section VI: user ``i`` has
    state-transition maps and output maps whose selection probabilities
    depend on the broadcast signal (here, the user's decision entry).

    ``respond`` vectorizes whenever the users' private states share one
    shape and the population contains *structural sharing*: users are
    grouped by :meth:`~repro.markov.ifs.SignalDependentIFS.structural_key`
    (identical probability callables, structurally equal maps), the step's
    ``(users, 2)`` uniforms are drawn up front in user order — the exact
    sequence the per-user reference loop consumes — and each group advances
    through one :meth:`~repro.markov.ifs.SignalDependentIFS.step_batch`
    call on its rows.  A fully homogeneous population (``users=[shared] *
    n``) is the single-group special case; a population with no structural
    sharing at all falls back to the per-user loop.  Every path is
    bit-identical on the same generator.

    Attributes
    ----------
    users:
        One :class:`~repro.markov.ifs.SignalDependentIFS` per user.
    initial_states:
        Initial private state of each user.
    vectorize:
        Allow the batched path.  Set to ``False`` to force the per-user
        reference loop (used by the equivalence tests and benchmarks).
    shard_plan:
        Partition override used by :meth:`shard_slice`; defaults to the
        canonical plan for the population size.
    """

    users: Sequence[SignalDependentIFS]
    initial_states: Sequence[np.ndarray]
    vectorize: bool = True
    shard_plan: ShardPlan | None = None
    # Exactly one of the two state stores is active: a (users, dim) matrix on
    # the batched path, a list of per-user vectors on the fallback path.
    _states: list | None = field(init=False, repr=False)
    _state_matrix: np.ndarray | None = field(init=False, repr=False)
    # Structural groups of the batched path: (representative, global rows).
    _batch_groups: list | None = field(init=False, repr=False)
    # Per canonical shard: [(representative, rows local to the shard)].
    _shard_batch_groups: list | None = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.users) == 0:
            raise ValueError("the population must contain at least one user")
        if len(self.users) != len(self.initial_states):
            raise ValueError("initial_states must have one entry per user")
        states = [
            np.atleast_1d(np.asarray(state, dtype=float)).copy()
            for state in self.initial_states
        ]
        if self.shard_plan is None:
            self.shard_plan = ShardPlan.canonical(len(self.users))
        elif self.shard_plan.num_users != len(self.users):
            raise ValueError("shard_plan must cover exactly the population")
        self._batch_groups = self._structural_groups(states)
        if self._batch_groups is not None:
            self._state_matrix = np.stack(states)
            self._states = None
            self._shard_batch_groups = [
                self._localized_groups(lo, hi) for lo, hi in self.shard_plan.bounds
            ]
        else:
            self._state_matrix = None
            self._states = states
            self._shard_batch_groups = None

    def _structural_groups(self, states: list) -> list | None:
        """Group users by structural key, or ``None`` for the per-user path."""
        if not self.vectorize:
            return None
        if any(state.shape != states[0].shape for state in states):
            return None
        shared = self.users[0]
        if all(user is shared for user in self.users):
            if not hasattr(shared, "step_batch"):
                return None
            return [(shared, np.arange(len(self.users)))]
        groups: Dict[tuple, list] = {}
        representatives: Dict[tuple, SignalDependentIFS] = {}
        for index, user in enumerate(self.users):
            key_hook = getattr(user, "structural_key", None)
            key = key_hook() if key_hook is not None else ("identity", id(user))
            groups.setdefault(key, []).append(index)
            representatives.setdefault(key, user)
        if len(groups) == len(self.users):
            # No structural sharing: batching would degenerate to one-row
            # batches, slower than the plain loop.
            return None
        if any(
            not hasattr(representative, "step_batch")
            for representative in representatives.values()
        ):
            return None
        return [
            (representatives[key], np.asarray(indices, dtype=np.intp))
            for key, indices in groups.items()
        ]

    def _localized_groups(self, lo: int, hi: int) -> list:
        """Restrict the structural groups to shard ``[lo, hi)``, re-based."""
        localized = []
        for representative, rows in self._batch_groups:
            start, stop = np.searchsorted(rows, (lo, hi))
            if stop > start:
                localized.append((representative, rows[start:stop] - lo))
        return localized

    @property
    def num_users(self) -> int:
        """Return the number of users."""
        return len(self.users)

    @property
    def states(self) -> list:
        """Return a copy of the users' current private states."""
        if self._state_matrix is not None:
            return [row.copy() for row in self._state_matrix]
        return [state.copy() for state in self._states]

    def shard_slice(self, lo: int, hi: int) -> "IFSPopulation":
        """Return the sub-population over users ``[lo, hi)``.

        The range must be a union of consecutive canonical shards; the
        slice starts from the users' *current* states, so a worker can take
        over mid-simulation.
        """
        shard_start, shard_stop = self.shard_plan.shard_index_range(lo, hi)
        return IFSPopulation(
            users=list(self.users[lo:hi]),
            initial_states=self.states[lo:hi],
            vectorize=self.vectorize,
            shard_plan=self.shard_plan.localized(shard_start, shard_stop),
        )

    def export_shard_state(self) -> Dict[str, object]:
        """Return the users' current private states."""
        return {"states": self.states}

    def import_shard_state(self, lo: int, state: Dict[str, object]) -> None:
        """Write a shard's exported states back into users ``[lo, ...)``."""
        states = state["states"]
        for offset, user_state in enumerate(states):
            vector = np.atleast_1d(np.asarray(user_state, dtype=float))
            if self._state_matrix is not None:
                self._state_matrix[lo + offset] = vector
            else:
                self._states[lo + offset] = vector.copy()

    def begin_step(self, k: int, rng) -> PopulationPublicFeatures:
        """IFS users reveal no public features."""
        return {}

    def respond(self, decisions: np.ndarray, k: int, rng) -> np.ndarray:
        """Advance every user one IFS step under their decision entry.

        ``decisions`` may be a scalar broadcast signal or a per-user array;
        each user's action is the (scalar) output of their output map.
        ``rng`` is one generator (legacy whole-population stream) or one
        generator per canonical shard.
        """
        signal_array = np.broadcast_to(
            np.asarray(decisions, dtype=float).ravel()
            if np.ndim(decisions) > 0
            else np.asarray([decisions], dtype=float),
            (self.num_users,),
        )
        shard_rngs = _per_shard_generators(rng, self.shard_plan)
        actions = np.empty(self.num_users, dtype=float)
        if shard_rngs is None:
            self._respond_range(
                0,
                self.num_users,
                signal_array,
                spawn_generator(rng),
                self._batch_groups,
                actions,
            )
        else:
            for index, ((lo, hi), generator) in enumerate(
                zip(self.shard_plan.bounds, shard_rngs)
            ):
                groups = (
                    self._shard_batch_groups[index]
                    if self._shard_batch_groups is not None
                    else None
                )
                self._respond_range(
                    lo, hi, signal_array[lo:hi], generator, groups, actions
                )
        return actions

    def _respond_range(
        self,
        lo: int,
        hi: int,
        signals: np.ndarray,
        generator: np.random.Generator,
        groups: list | None,
        actions: np.ndarray,
    ) -> None:
        """Advance users ``[lo, hi)`` with ``generator``, writing actions."""
        count = hi - lo
        if groups is not None:
            uniforms = generator.random((count, 2))
            if len(groups) == 1 and groups[0][1].size == count:
                representative = groups[0][0]
                next_states, range_actions = representative.step_batch(
                    self._state_matrix[lo:hi], signals, uniforms=uniforms
                )
                self._state_matrix[lo:hi] = next_states
                actions[lo:hi] = range_actions
                return
            for representative, rows in groups:
                next_states, group_actions = representative.step_batch(
                    self._state_matrix[lo + rows],
                    signals[rows],
                    uniforms=uniforms[rows],
                )
                self._state_matrix[lo + rows] = next_states
                actions[lo + rows] = group_actions
            return
        for offset in range(count):
            index = lo + offset
            next_state, action = self.users[index].step(
                self._states[index], float(signals[offset]), generator
            )
            self._states[index] = next_state
            actions[index] = float(np.atleast_1d(action)[0])
