"""User populations: the stochastic response side of the closed loop.

A population exposes two hooks per time step.  ``begin_step`` lets the users
reveal whatever public (non-protected) features the AI system is allowed to
see before deciding — in the credit case study the yearly income, of which
the lender only uses the income code.  ``respond`` then consumes the AI
system's decisions and produces the users' stochastic actions ``y_i(k)``.

Two populations are provided: :class:`CreditPopulation`, the paper's
mortgage borrowers (income redrawn yearly from the census-like table,
repayment from the Gaussian conditional-independence model), and
:class:`IFSPopulation`, a population of signal-dependent iterated function
systems matching the abstract user model of Section VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.credit.borrower import affordability_state
from repro.credit.mortgage import MortgageTerms
from repro.credit.repayment import GaussianRepaymentModel
from repro.data.census import IncomeTable, Race, default_income_table
from repro.data.income import IncomeSampler
from repro.data.synthetic import SyntheticPopulation
from repro.markov.ifs import SignalDependentIFS
from repro.utils.rng import spawn_generator

__all__ = [
    "PopulationPublicFeatures",
    "Population",
    "CreditPopulation",
    "IFSPopulation",
]


#: Public features revealed at the start of a step: a mapping from feature
#: name to a per-user array (e.g. ``{"income": incomes}``).
PopulationPublicFeatures = Dict[str, np.ndarray]


@runtime_checkable
class Population(Protocol):
    """Protocol for the population box of the closed loop."""

    @property
    def num_users(self) -> int:
        """Return the number of users in the population."""
        ...  # pragma: no cover - protocol

    def begin_step(
        self, k: int, rng: np.random.Generator
    ) -> PopulationPublicFeatures:
        """Reveal the public features for step ``k`` (may be empty)."""
        ...  # pragma: no cover - protocol

    def respond(
        self, decisions: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return the users' actions in response to ``decisions``."""
        ...  # pragma: no cover - protocol


class CreditPopulation:
    """The paper's population of mortgage borrowers.

    Each step (year) every user's income is redrawn from the census-like
    table for their race; the income is revealed as a public feature, the
    affordability state of equation (10) is computed privately, and the
    repayment action follows the Gaussian conditional-independence model of
    equation (11).

    Parameters
    ----------
    population:
        The synthetic population (race per user).
    income_table:
        Income distributions by year and race (defaults to the embedded
        table).
    terms:
        Mortgage terms (defaults to the paper's).
    repayment_model:
        The repayment model (defaults to the paper's sensitivity of 5).
    start_year:
        Calendar year corresponding to step ``k = 0`` (paper: 2002).
    """

    def __init__(
        self,
        population: SyntheticPopulation,
        income_table: IncomeTable | None = None,
        terms: MortgageTerms | None = None,
        repayment_model: GaussianRepaymentModel | None = None,
        start_year: int = 2002,
    ) -> None:
        self._population = population
        self._sampler = IncomeSampler(income_table or default_income_table())
        self._terms = terms or MortgageTerms()
        self._repayment_model = repayment_model or GaussianRepaymentModel()
        self._start_year = start_year
        self._current_incomes: np.ndarray | None = None
        self._current_affordability: np.ndarray | None = None
        # The race partition is fixed for the population's lifetime, so the
        # per-race index arrays (the paper's N_s) are computed once here and
        # reused by every step's income draw instead of rebuilding an
        # object-dtype race array and boolean masks per step.
        self._race_indices = population.indices_by_race()

    @property
    def num_users(self) -> int:
        """Return the number of users."""
        return self._population.size

    @property
    def races(self) -> np.ndarray:
        """Return the per-user race labels (protected attribute)."""
        return self._population.races_array()

    @property
    def groups(self) -> Dict[Race, np.ndarray]:
        """Return the per-race index sets ``N_s`` (precomputed once).

        The arrays are copies: the cached partition also drives every step's
        income draw, so callers may freely mutate what they get back.
        """
        return {race: indices.copy() for race, indices in self._race_indices.items()}

    @property
    def terms(self) -> MortgageTerms:
        """Return the mortgage terms."""
        return self._terms

    @property
    def current_affordability(self) -> np.ndarray:
        """Return the private states ``x_i(k)`` of the current step."""
        if self._current_affordability is None:
            raise RuntimeError("begin_step must be called before reading states")
        return self._current_affordability.copy()

    def year_of_step(self, k: int) -> int:
        """Return the calendar year corresponding to step ``k``."""
        return self._start_year + k

    def begin_step(
        self, k: int, rng: np.random.Generator
    ) -> PopulationPublicFeatures:
        """Redraw incomes for step ``k`` and reveal them as public features."""
        generator = spawn_generator(rng)
        incomes = self._sampler.sample_population_indexed(
            self.year_of_step(k), self._race_indices, self.num_users, generator
        )
        self._current_incomes = incomes
        self._current_affordability = affordability_state(incomes, self._terms)
        return {"income": incomes.copy()}

    def respond(
        self, decisions: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample the repayment actions ``y_i(k)`` for the given decisions."""
        if self._current_affordability is None:
            raise RuntimeError("begin_step must be called before respond")
        generator = spawn_generator(rng)
        return self._repayment_model.sample_repayments(
            self._current_affordability, decisions, generator
        ).astype(float)


@dataclass
class IFSPopulation:
    """A population of users, each modelled as a signal-dependent IFS.

    This is the abstract user model of Section VI: user ``i`` has
    state-transition maps and output maps whose selection probabilities
    depend on the broadcast signal (here, the user's decision entry).

    When every entry of ``users`` is the *same* :class:`SignalDependentIFS`
    object (e.g. ``users=[shared_ifs] * 100_000``, the natural construction
    for large homogeneous populations) ``respond`` advances all users in a
    single vectorized :meth:`~repro.markov.ifs.SignalDependentIFS.step_batch`
    call — batched uniform draws, per-unique-signal probability evaluation,
    and grouped batched map application — which is bit-identical to the
    per-user loop on the same generator.  Heterogeneous user lists fall
    back to the per-user loop.

    Attributes
    ----------
    users:
        One :class:`~repro.markov.ifs.SignalDependentIFS` per user.
    initial_states:
        Initial private state of each user.
    vectorize:
        Allow the batched path when the population is homogeneous.  Set to
        ``False`` to force the per-user reference loop (used by the
        equivalence tests and benchmarks).
    """

    users: Sequence[SignalDependentIFS]
    initial_states: Sequence[np.ndarray]
    vectorize: bool = True
    # Exactly one of the two state stores is active: a (users, dim) matrix on
    # the batched path, a list of per-user vectors on the fallback path.
    _states: list | None = field(init=False, repr=False)
    _state_matrix: np.ndarray | None = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.users) == 0:
            raise ValueError("the population must contain at least one user")
        if len(self.users) != len(self.initial_states):
            raise ValueError("initial_states must have one entry per user")
        states = [
            np.atleast_1d(np.asarray(state, dtype=float)).copy()
            for state in self.initial_states
        ]
        shared = self.users[0]
        homogeneous = (
            self.vectorize
            and all(user is shared for user in self.users)
            and all(state.shape == states[0].shape for state in states)
        )
        if homogeneous:
            self._state_matrix = np.stack(states)
            self._states = None
        else:
            self._state_matrix = None
            self._states = states

    @property
    def num_users(self) -> int:
        """Return the number of users."""
        return len(self.users)

    @property
    def states(self) -> list:
        """Return a copy of the users' current private states."""
        if self._state_matrix is not None:
            return [row.copy() for row in self._state_matrix]
        return [state.copy() for state in self._states]

    def begin_step(
        self, k: int, rng: np.random.Generator
    ) -> PopulationPublicFeatures:
        """IFS users reveal no public features."""
        return {}

    def respond(
        self, decisions: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Advance every user one IFS step under their decision entry.

        ``decisions`` may be a scalar broadcast signal or a per-user array;
        each user's action is the (scalar) output of their output map.
        """
        generator = spawn_generator(rng)
        signal_array = np.broadcast_to(
            np.asarray(decisions, dtype=float).ravel()
            if np.ndim(decisions) > 0
            else np.asarray([decisions], dtype=float),
            (self.num_users,),
        )
        if self._state_matrix is not None:
            next_states, actions = self.users[0].step_batch(
                self._state_matrix, signal_array, generator
            )
            self._state_matrix = next_states
            return actions
        actions = np.empty(self.num_users, dtype=float)
        for index, user in enumerate(self.users):
            next_state, action = user.step(
                self._states[index], float(signal_array[index]), generator
            )
            self._states[index] = next_state
            actions[index] = float(np.atleast_1d(action)[0])
        return actions
