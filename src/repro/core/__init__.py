"""The closed-loop view of an AI system and its users (paper Sections III-V).

The loop of Figure 1 has four boxes, each with a protocol and several
implementations in this package:

* **AI system** (:class:`AISystem`) — produces the output ``pi(k)`` (e.g.
  per-user credit decisions) from the public features and the filtered
  feedback, and may retrain itself on the delayed feedback.
* **Population** (:class:`Population`) — the ``N`` users; each step they
  reveal public features (e.g. the income code), then respond
  stochastically to the output with actions ``y_i(k)``.
* **Filter** (:class:`LoopFilter`) — aggregates the actions into the signal
  the AI system is retrained on (e.g. cumulative average default rates).
* **Delay** — built into the orchestrator: the AI system is retrained on the
  feedback computed *before* the current step's actions are filtered in.

:class:`ClosedLoop` wires the boxes together and records a
:class:`SimulationHistory`; :mod:`repro.core.fairness` turns histories into
equal-treatment and equal-impact assessments (Definitions 1-4).
"""

from repro.core.ai_system import (
    AISystem,
    ConstantDecisionSystem,
    CreditScoringSystem,
    ScorecardDecisionSystem,
)
from repro.core.population import (
    CreditPopulation,
    IFSPopulation,
    Population,
    PopulationPublicFeatures,
)
from repro.core.filters import (
    AnomalyClippingFilter,
    CumulativeAverageFilter,
    DefaultRateFilter,
    ExponentialMovingAverageFilter,
    IntegralFilter,
    LoopFilter,
)
from repro.core.checkpoint import (
    CheckpointError,
    CheckpointSpec,
    load_latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.loop import ClosedLoop
from repro.core.supervision import SupervisorPolicy, WorkerPoolFailure
from repro.core.sharding import (
    NUM_CANONICAL_SHARDS,
    PopulationShard,
    ShardPlan,
    shard_population,
)
from repro.core.history import (
    FullHistoryRequiredError,
    SimulationHistory,
    StepRecord,
)
from repro.core.streaming import AggregateHistory, StreamingAggregator
from repro.core.fairness import (
    ImpactAssessment,
    TreatmentAssessment,
    equal_impact_assessment,
    equal_treatment_assessment,
)
from repro.core.convergence import (
    ImpactGapSignificance,
    LongRunEstimate,
    estimate_long_run_average,
    impact_gap_significance,
)
from repro.core.metrics import (
    approval_rates_by_group,
    default_rate_series,
    demographic_parity_gap,
    equal_opportunity_gap,
    group_approval_series,
    group_average_series,
)

__all__ = [
    "AISystem",
    "ConstantDecisionSystem",
    "CreditScoringSystem",
    "ScorecardDecisionSystem",
    "Population",
    "PopulationPublicFeatures",
    "CreditPopulation",
    "IFSPopulation",
    "LoopFilter",
    "DefaultRateFilter",
    "CumulativeAverageFilter",
    "ExponentialMovingAverageFilter",
    "IntegralFilter",
    "AnomalyClippingFilter",
    "ClosedLoop",
    "CheckpointError",
    "CheckpointSpec",
    "SupervisorPolicy",
    "WorkerPoolFailure",
    "load_latest_checkpoint",
    "read_checkpoint",
    "write_checkpoint",
    "NUM_CANONICAL_SHARDS",
    "ShardPlan",
    "PopulationShard",
    "shard_population",
    "SimulationHistory",
    "StepRecord",
    "AggregateHistory",
    "StreamingAggregator",
    "FullHistoryRequiredError",
    "TreatmentAssessment",
    "ImpactAssessment",
    "equal_treatment_assessment",
    "equal_impact_assessment",
    "LongRunEstimate",
    "estimate_long_run_average",
    "ImpactGapSignificance",
    "impact_gap_significance",
    "approval_rates_by_group",
    "default_rate_series",
    "demographic_parity_gap",
    "equal_opportunity_gap",
    "group_approval_series",
    "group_average_series",
]
