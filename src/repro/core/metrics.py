"""Group-fairness metrics computed on closed-loop histories.

These are the conventional single-shot fairness quantities (demographic
parity, equal opportunity, per-group approval rates) that the paper
contrasts with its long-run equal-impact notion, plus helpers for turning a
``(steps, users)`` series into per-group series.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.utils.stats import max_pairwise_gap

__all__ = [
    "approval_rates_by_group",
    "demographic_parity_gap",
    "equal_opportunity_gap",
    "default_rate_series",
    "group_average_series",
    "group_approval_series",
]


def approval_rates_by_group(
    decisions: np.ndarray, groups: Mapping[object, np.ndarray]
) -> Dict[object, float]:
    """Return each group's overall approval rate.

    ``decisions`` is a ``(steps, users)`` 0/1 matrix; the rate pools all
    steps.  Empty groups report ``nan``.
    """
    matrix = np.asarray(decisions, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("decisions must be a (steps, users) matrix")
    rates: Dict[object, float] = {}
    for key, indices in groups.items():
        rates[key] = float(matrix[:, indices].mean()) if indices.size else float("nan")
    return rates


def demographic_parity_gap(
    decisions: np.ndarray, groups: Mapping[object, np.ndarray]
) -> float:
    """Return the largest gap between group approval rates.

    Zero means the decision rates are identical across groups (demographic
    parity); this is a *treatment*-style, single-loop quantity.
    """
    rates = [
        value
        for value in approval_rates_by_group(decisions, groups).values()
        if np.isfinite(value)
    ]
    if len(rates) < 2:
        return 0.0
    return max_pairwise_gap(rates)


def equal_opportunity_gap(
    decisions: np.ndarray,
    qualified: np.ndarray,
    groups: Mapping[object, np.ndarray],
) -> float:
    """Return the largest gap between group approval rates among the qualified.

    ``qualified`` is a ``(steps, users)`` 0/1 matrix marking users who would
    have repaid (the "truly creditworthy"); the metric compares
    ``P(approved | qualified)`` across groups, i.e. Hardt et al.'s equal
    opportunity.
    """
    decisions_matrix = np.asarray(decisions, dtype=float)
    qualified_matrix = np.asarray(qualified, dtype=float)
    if decisions_matrix.shape != qualified_matrix.shape:
        raise ValueError("decisions and qualified must have the same shape")
    rates = []
    for indices in groups.values():
        if indices.size == 0:
            continue
        mask = qualified_matrix[:, indices] == 1.0
        total = float(mask.sum())
        if total == 0:
            continue
        rates.append(float(decisions_matrix[:, indices][mask].sum() / total))
    if len(rates) < 2:
        return 0.0
    return max_pairwise_gap(rates)


def default_rate_series(
    decisions: np.ndarray, actions: np.ndarray
) -> np.ndarray:
    """Return the cumulative per-user default-rate series ``ADR_i(k)``.

    Defaults are "offered but not repaid"; users with no offers so far have
    rate zero.  Mirrors
    :meth:`repro.core.history.SimulationHistory.running_default_rates` for
    callers who hold raw matrices rather than a history object.
    """
    decisions_matrix = np.asarray(decisions, dtype=float)
    actions_matrix = np.asarray(actions, dtype=float)
    if decisions_matrix.shape != actions_matrix.shape or decisions_matrix.ndim != 2:
        raise ValueError("decisions and actions must be equal-shape (steps, users)")
    offers = np.cumsum(decisions_matrix, axis=0)
    repayments = np.cumsum(actions_matrix * decisions_matrix, axis=0)
    return np.where(offers > 0, 1.0 - repayments / np.maximum(offers, 1e-12), 0.0)


def group_average_series(
    per_user_series: np.ndarray, groups: Mapping[object, np.ndarray]
) -> Dict[object, np.ndarray]:
    """Average a ``(steps, users)`` series within each group, per step.

    This is how the paper's race-wise series ``ADR_s(k)`` are produced from
    the user-wise series.
    """
    series = np.asarray(per_user_series, dtype=float)
    if series.ndim != 2:
        raise ValueError("per_user_series must be a (steps, users) matrix")
    result: Dict[object, np.ndarray] = {}
    for key, indices in groups.items():
        if indices.size == 0:
            result[key] = np.full(series.shape[0], np.nan)
        else:
            result[key] = series[:, indices].mean(axis=1)
    return result


def group_approval_series(
    decisions: np.ndarray, groups: Mapping[object, np.ndarray]
) -> Dict[object, np.ndarray]:
    """Return each group's per-step approval rate as a ``(steps,)`` series.

    Unlike :func:`approval_rates_by_group`, which pools all steps into one
    number per group, this keeps the time axis — the group-level analogue
    of :meth:`repro.core.history.SimulationHistory.approval_rates`.  The
    streaming engine maintains the same series online
    (:meth:`repro.core.streaming.StreamingAggregator.group_approval_series`),
    bit-identical to this batch formulation.
    """
    matrix = np.asarray(decisions, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("decisions must be a (steps, users) matrix")
    return group_average_series(matrix, groups)
