"""Streaming (memory-bounded) aggregation of closed-loop trajectories.

The paper's group-level figures only need the race-wise series ``ADR_s(k)``,
the Cesàro action averages and the approval rates — yet the full-history
engine materialises every ``(steps, users)`` column, which makes *memory*
the binding constraint at million-user scale.  This module provides the
``history_mode="aggregate"`` path of the engine:

* :class:`StreamingAggregator` consumes each step's decisions and actions
  online and maintains group-level running series in ``O(users)`` running
  state plus ``O(steps * groups)`` output — no per-user history rows are
  ever retained.
* :class:`AggregateHistory` wraps an aggregator behind the
  :class:`~repro.core.history.SimulationHistory` ingest surface
  (``record_step``/``append``/``num_steps``), so
  :meth:`~repro.core.loop.ClosedLoop.run` can record into either store.
  Per-user accessors (``decisions_matrix`` and friends) raise
  :class:`~repro.core.history.FullHistoryRequiredError` with a clear
  message instead of silently degrading.

Bit-identity with the full-history path is a hard guarantee, pinned by
``tests/experiments/test_streaming_equivalence.py``: the full path derives
group series via :func:`~repro.core.metrics.group_average_series`, i.e.
``series[:, indices].mean(axis=1)`` on a fancy-indexed selection, which
numpy evaluates as a *sequential left-to-right* accumulation over the
group's users (the fancy-indexed intermediate is F-ordered, so the
reduction runs over the outer iterator axis without SIMD pairwise
blocking).  The streaming path reproduces that exact summation order with
:func:`sequential_sum` (``np.cumsum(...)[-1]``, the same fold at C speed),
so the per-step group sums — and hence the series — agree bit for bit.  (One
documented caveat: a *single-step* history's fancy-indexed selection is
contiguous, so numpy reduces it with SIMD pairwise blocking instead; group
means of a one-step run can therefore differ from the full path in the
last ulp.  Every real simulation spans many steps.)

Sharding note: :meth:`StreamingAggregator.merge` combines two aggregators
that observed *disjoint user shards* of the same simulation.  Integer-like
cumulative state (offers, repayments, counts, minima/maxima) merges
exactly; the floating-point group sums merge as ``sum_a + sum_b``, which
differs from the single-stream sequential fold by at most the usual
last-ulp reassociation error (the property suite asserts exactness for
dyadic inputs and tight agreement in general).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

from repro.core.history import (
    FullHistoryRequiredError,
    StepRecord,
    _grown,
    _readonly,
    running_default_rates_from_cums,
)

__all__ = [
    "StreamingAggregator",
    "BatchedStreamingAggregator",
    "AggregateHistory",
    "sequential_sum",
    "DEFAULT_RATE_BINS",
    "RATE_HISTOGRAM_LOW_THRESHOLD",
]

#: Initial row capacity of the per-step series (matches SimulationHistory).
_INITIAL_CAPACITY = 32

#: Number of equal-width ``ADR_i(k)`` histogram bins on [0, 1] kept per step
#: (matches the default binning of the fig5 density driver).
DEFAULT_RATE_BINS = 20

#: Threshold of the dedicated low-rate counter (the paper's "share of users
#: with ADR <= 0.10" summary of Figure 5).
RATE_HISTOGRAM_LOW_THRESHOLD = 0.10


def sequential_sum(values: np.ndarray) -> float:
    """Return the left-to-right sequential float sum of ``values``.

    This is bit-identical to the accumulation order numpy uses when
    reducing a fancy-indexed ``(steps, users)`` selection along the user
    axis (the full-history group path), which is *not* the SIMD pairwise
    order of a contiguous ``np.sum``.  ``np.cumsum`` performs the same
    sequential fold in C, so the last prefix sum is the exact sequential
    total.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return 0.0
    return float(np.cumsum(array)[-1])


def _validated_groups(
    groups: Mapping[object, np.ndarray] | None, num_users: int
) -> Dict[object, np.ndarray]:
    """Validate and copy a group partition (may be empty)."""
    if groups is None:
        return {}
    validated: Dict[object, np.ndarray] = {}
    for key, indices in groups.items():
        index_array = np.asarray(indices, dtype=np.intp).ravel()
        if index_array.size and (
            index_array.min() < 0 or index_array.max() >= num_users
        ):
            raise ValueError(
                f"group {key!r} has user indices outside [0, {num_users})"
            )
        validated[key] = index_array.copy()
    return validated


class StreamingAggregator:
    """Online group-level aggregation of a closed-loop decision/action stream.

    The aggregator holds ``O(users)`` running state (cumulative offers,
    repayments and action sums — the same cumulative quantities the
    full-history engine folds into its derived series) and appends one row
    per step to ``O(steps)``/``O(steps * groups)`` output series:

    * per-group running average default rates — the paper's ``ADR_s(k)``;
    * per-group Cesàro action averages (Definition 3's limit quantity);
    * per-group and population-wide approval rates;
    * the pooled portfolio default rate;
    * population-wide per-step moments of ``ADR_i(k)`` (sum, sum of
      squares, min, max) so dispersion summaries survive without the
      ``(steps, users)`` matrix.

    Every series is bit-identical to the corresponding full-history
    derivation (see the module docstring for why the group sums use
    :func:`sequential_sum`).

    Parameters
    ----------
    num_users:
        Number of users in the (shard of the) population.
    groups:
        Optional partition: mapping from group key (e.g. a
        :class:`~repro.data.census.Race`) to the array of user indices in
        that group.  Empty groups report ``nan`` series like
        :func:`~repro.core.metrics.group_average_series`.
    prior_rate:
        Portfolio default rate reported before any offer exists, matching
        :class:`~repro.credit.default_rates.DefaultRateTracker`.
    """

    def __init__(
        self,
        num_users: int,
        groups: Mapping[object, np.ndarray] | None = None,
        prior_rate: float = 0.0,
        rate_bins: int = DEFAULT_RATE_BINS,
    ) -> None:
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        if rate_bins < 2:
            raise ValueError("rate_bins must be at least 2")
        self._num_users = int(num_users)
        self._prior_rate = float(prior_rate)
        self._groups = _validated_groups(groups, self._num_users)
        self._num_steps = 0
        self._capacity = _INITIAL_CAPACITY
        # Per-step histogram of ADR_i(k) on a fixed [0, 1] binning: integer
        # counts, so per-shard and per-trial histograms pool exactly into
        # the full-history histogram of the concatenated stack (the fig5
        # density path in aggregate mode).  np.histogram is called with the
        # explicit edge array so the bin-assignment arithmetic is the same
        # one the full-history driver uses.
        self._rate_bins = int(rate_bins)
        self._rate_edges = np.linspace(0.0, 1.0, self._rate_bins + 1)
        self._rate_hist = np.zeros((self._capacity, self._rate_bins), dtype=np.int64)
        self._rate_low_counts = np.zeros(self._capacity, dtype=np.int64)
        # O(users) running state — identical to SimulationHistory's
        # incremental layer, so the derived rows agree bit for bit.
        self._offers_cum = np.zeros(self._num_users, dtype=float)
        self._repayments_cum = np.zeros(self._num_users, dtype=float)
        self._actions_cum = np.zeros(self._num_users, dtype=float)
        # O(steps) global series.
        self._approvals = np.empty(self._capacity, dtype=float)
        self._decision_sums = np.empty(self._capacity, dtype=float)
        self._offers_totals = np.empty(self._capacity, dtype=float)
        self._repayments_totals = np.empty(self._capacity, dtype=float)
        self._portfolio = np.empty(self._capacity, dtype=float)
        self._rate_sums = np.empty(self._capacity, dtype=float)
        self._rate_sumsqs = np.empty(self._capacity, dtype=float)
        self._rate_mins = np.empty(self._capacity, dtype=float)
        self._rate_maxs = np.empty(self._capacity, dtype=float)
        # O(steps * groups) series: per-group sequential sums per step.
        self._group_rate_sums = {key: np.empty(self._capacity) for key in self._groups}
        self._group_action_sums = {key: np.empty(self._capacity) for key in self._groups}
        self._group_decision_sums = {
            key: np.empty(self._capacity) for key in self._groups
        }

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_users(self) -> int:
        """Return the number of users this aggregator observes."""
        return self._num_users

    @property
    def num_steps(self) -> int:
        """Return the number of aggregated steps."""
        return self._num_steps

    @property
    def group_keys(self) -> Tuple[object, ...]:
        """Return the group keys, in partition order."""
        return tuple(self._groups)

    @property
    def group_sizes(self) -> Dict[object, int]:
        """Return the number of users in each group."""
        return {key: int(indices.size) for key, indices in self._groups.items()}

    @property
    def prior_rate(self) -> float:
        """Return the portfolio rate reported before any offer exists."""
        return self._prior_rate

    def group_indices(self) -> Dict[object, np.ndarray]:
        """Return a copy of the group partition."""
        return {key: indices.copy() for key, indices in self._groups.items()}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def update(self, decisions: np.ndarray, actions: np.ndarray) -> None:
        """Fold one step of decisions and actions into the running series."""
        decisions_row = np.asarray(decisions, dtype=float).ravel()
        actions_row = np.asarray(actions, dtype=float).ravel()
        if decisions_row.shape[0] != self._num_users:
            raise ValueError(
                "decisions must have one entry per user "
                f"({decisions_row.shape[0]} != {self._num_users})"
            )
        if actions_row.shape[0] != self._num_users:
            raise ValueError(
                "actions must have one entry per user "
                f"({actions_row.shape[0]} != {self._num_users})"
            )
        if self._num_steps >= self._capacity:
            self._grow()
        row = self._num_steps
        # Replay, term by term, SimulationHistory._update_running_stats so
        # the derived per-user rows are bit-identical to the full engine;
        # the rate fold itself is the shared single definition.
        self._offers_cum += decisions_row
        self._repayments_cum += actions_row * decisions_row
        self._actions_cum += actions_row
        rates = running_default_rates_from_cums(
            self._offers_cum, self._repayments_cum
        )
        cesaro = self._actions_cum / float(row + 1)
        self._approvals[row] = np.mean(decisions_row)
        self._decision_sums[row] = float(decisions_row.sum())
        offers_total = float(self._offers_cum.sum())
        repayments_total = float(self._repayments_cum.sum())
        self._offers_totals[row] = offers_total
        self._repayments_totals[row] = repayments_total
        # Same branch and same float ops as DefaultRateTracker.portfolio_rate.
        self._portfolio[row] = (
            self._prior_rate
            if offers_total == 0
            else 1.0 - repayments_total / offers_total
        )
        self._rate_sums[row] = float(rates.sum())
        # dot avoids materialising an O(users) squared temporary.
        self._rate_sumsqs[row] = float(np.dot(rates, rates))
        self._rate_mins[row] = float(rates.min())
        self._rate_maxs[row] = float(rates.max())
        self._rate_hist[row], _ = np.histogram(rates, bins=self._rate_edges)
        self._rate_low_counts[row] = int(
            np.count_nonzero(rates <= RATE_HISTOGRAM_LOW_THRESHOLD)
        )
        for key, indices in self._groups.items():
            self._group_rate_sums[key][row] = sequential_sum(rates[indices])
            self._group_action_sums[key][row] = sequential_sum(cesaro[indices])
            self._group_decision_sums[key][row] = sequential_sum(
                decisions_row[indices]
            )
        self._num_steps += 1

    def _grow(self) -> None:
        new_capacity = max(_INITIAL_CAPACITY, self._capacity * 2)
        for attribute in (
            "_approvals",
            "_decision_sums",
            "_offers_totals",
            "_repayments_totals",
            "_portfolio",
            "_rate_sums",
            "_rate_sumsqs",
            "_rate_mins",
            "_rate_maxs",
        ):
            setattr(
                self,
                attribute,
                _grown(getattr(self, attribute), new_capacity, self._num_steps),
            )
        for series in (
            self._group_rate_sums,
            self._group_action_sums,
            self._group_decision_sums,
        ):
            for key in series:
                series[key] = _grown(series[key], new_capacity, self._num_steps)
        self._rate_hist = _grown(self._rate_hist, new_capacity, self._num_steps)
        self._rate_low_counts = _grown(
            self._rate_low_counts, new_capacity, self._num_steps
        )
        self._capacity = new_capacity

    # ------------------------------------------------------------------
    # Series queries
    # ------------------------------------------------------------------

    def _group_mean_series(
        self, sums: Mapping[object, np.ndarray]
    ) -> Dict[object, np.ndarray]:
        result: Dict[object, np.ndarray] = {}
        for key, indices in self._groups.items():
            if indices.size == 0:
                result[key] = np.full(self._num_steps, np.nan)
            else:
                # Sum-then-divide matches np.mean's reduce-then-true_divide.
                result[key] = sums[key][: self._num_steps] / indices.size
        return result

    def group_default_rate_series(self) -> Dict[object, np.ndarray]:
        """Return the per-group running default-rate series ``ADR_s(k)``.

        Bit-identical to ``group_average_series(running_default_rates(),
        groups)`` on the full-history path.
        """
        return self._group_mean_series(self._group_rate_sums)

    def group_action_average_series(self) -> Dict[object, np.ndarray]:
        """Return the per-group Cesàro action averages over time."""
        return self._group_mean_series(self._group_action_sums)

    def group_approval_series(self) -> Dict[object, np.ndarray]:
        """Return the per-group per-step approval rates."""
        return self._group_mean_series(self._group_decision_sums)

    def approval_rate_series(self) -> np.ndarray:
        """Return the per-step population approval rates."""
        return self._approvals[: self._num_steps].copy()

    def portfolio_rate_series(self) -> np.ndarray:
        """Return the pooled default rate of all offers made up to each step."""
        return self._portfolio[: self._num_steps].copy()

    def rate_sum_series(self) -> np.ndarray:
        """Return, per step, the sum of ``ADR_i(k)`` over all users."""
        return self._rate_sums[: self._num_steps].copy()

    def rate_sumsq_series(self) -> np.ndarray:
        """Return, per step, the sum of squared ``ADR_i(k)`` over all users."""
        return self._rate_sumsqs[: self._num_steps].copy()

    def rate_min_series(self) -> np.ndarray:
        """Return, per step, the minimum ``ADR_i(k)`` over all users."""
        return self._rate_mins[: self._num_steps].copy()

    def rate_max_series(self) -> np.ndarray:
        """Return, per step, the maximum ``ADR_i(k)`` over all users."""
        return self._rate_maxs[: self._num_steps].copy()

    @property
    def rate_bins(self) -> int:
        """Return the number of ``ADR_i(k)`` histogram bins kept per step."""
        return self._rate_bins

    def rate_histogram_edges(self) -> np.ndarray:
        """Return the fixed [0, 1] bin edges of the per-step histograms."""
        return self._rate_edges.copy()

    def rate_histogram_series(self) -> np.ndarray:
        """Return the per-step ``ADR_i(k)`` histogram counts.

        A ``(steps, rate_bins)`` integer matrix.  Counts pool exactly
        across shards and trials (integer addition), so the summed
        histograms equal ``np.histogram`` of the concatenated full-history
        stack step by step — the fig5 density in bounded memory.
        """
        return self._rate_hist[: self._num_steps].copy()

    def rate_low_count_series(self) -> np.ndarray:
        """Return, per step, how many users have ``ADR_i(k) <= 0.10``.

        The exact counter behind Figure 5's "share of users with ADR <=
        0.10" summary (a histogram with a bin edge at 0.10 cannot recover
        it: values exactly at the threshold fall into the next bin).
        """
        return self._rate_low_counts[: self._num_steps].copy()

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """Return a picklable snapshot of the aggregator's running state.

        The snapshot is what a sharded runner ships between workers: the
        per-user cumulative vectors, the per-step series (trimmed to the
        filled rows) and the group partition.  ``merge`` consumes two live
        aggregators; the ``export_state``/:meth:`from_state` pair exists so
        transports that cannot pickle the object itself can still move the
        state around.
        """
        filled = self._num_steps
        return {
            "num_users": self._num_users,
            "prior_rate": self._prior_rate,
            "num_steps": filled,
            "groups": self.group_indices(),
            "rate_bins": self._rate_bins,
            "rate_hist": self._rate_hist[:filled].copy(),
            "rate_low_counts": self._rate_low_counts[:filled].copy(),
            "offers_cum": self._offers_cum.copy(),
            "repayments_cum": self._repayments_cum.copy(),
            "actions_cum": self._actions_cum.copy(),
            "approvals": self._approvals[:filled].copy(),
            "decision_sums": self._decision_sums[:filled].copy(),
            "offers_totals": self._offers_totals[:filled].copy(),
            "repayments_totals": self._repayments_totals[:filled].copy(),
            "portfolio": self._portfolio[:filled].copy(),
            "rate_sums": self._rate_sums[:filled].copy(),
            "rate_sumsqs": self._rate_sumsqs[:filled].copy(),
            "rate_mins": self._rate_mins[:filled].copy(),
            "rate_maxs": self._rate_maxs[:filled].copy(),
            "group_rate_sums": {
                key: self._group_rate_sums[key][:filled].copy() for key in self._groups
            },
            "group_action_sums": {
                key: self._group_action_sums[key][:filled].copy()
                for key in self._groups
            },
            "group_decision_sums": {
                key: self._group_decision_sums[key][:filled].copy()
                for key in self._groups
            },
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "StreamingAggregator":
        """Rebuild a live (mergeable, updatable) aggregator from a snapshot."""
        aggregator = cls(
            int(state["num_users"]),
            groups=state["groups"],  # type: ignore[arg-type]
            prior_rate=float(state["prior_rate"]),
            rate_bins=int(state.get("rate_bins", DEFAULT_RATE_BINS)),
        )
        filled = int(state["num_steps"])
        while aggregator._capacity < filled:
            aggregator._grow()
        aggregator._num_steps = filled
        rate_hist = np.asarray(
            state.get("rate_hist", np.zeros((filled, aggregator._rate_bins))),
            dtype=np.int64,
        )
        if rate_hist.shape != (filled, aggregator._rate_bins):
            raise ValueError("state 'rate_hist' must be (num_steps, rate_bins)")
        aggregator._rate_hist[:filled] = rate_hist
        rate_low = np.asarray(
            state.get("rate_low_counts", np.zeros(filled)), dtype=np.int64
        ).ravel()
        if rate_low.shape != (filled,):
            raise ValueError("state 'rate_low_counts' must have one entry per step")
        aggregator._rate_low_counts[:filled] = rate_low
        for attribute, key in (
            ("_offers_cum", "offers_cum"),
            ("_repayments_cum", "repayments_cum"),
            ("_actions_cum", "actions_cum"),
        ):
            value = np.asarray(state[key], dtype=float).ravel()
            if value.shape != (aggregator._num_users,):
                raise ValueError(f"state {key!r} must have one entry per user")
            setattr(aggregator, attribute, value.copy())
        for attribute, key in (
            ("_approvals", "approvals"),
            ("_decision_sums", "decision_sums"),
            ("_offers_totals", "offers_totals"),
            ("_repayments_totals", "repayments_totals"),
            ("_portfolio", "portfolio"),
            ("_rate_sums", "rate_sums"),
            ("_rate_sumsqs", "rate_sumsqs"),
            ("_rate_mins", "rate_mins"),
            ("_rate_maxs", "rate_maxs"),
        ):
            value = np.asarray(state[key], dtype=float).ravel()
            if value.shape != (filled,):
                raise ValueError(f"state {key!r} must have one entry per step")
            getattr(aggregator, attribute)[:filled] = value
        for attribute, key in (
            ("_group_rate_sums", "group_rate_sums"),
            ("_group_action_sums", "group_action_sums"),
            ("_group_decision_sums", "group_decision_sums"),
        ):
            series = state[key]
            if set(series) != set(aggregator._groups):  # type: ignore[arg-type]
                raise ValueError(f"state {key!r} must cover exactly the group keys")
            for group_key, values in series.items():  # type: ignore[union-attr]
                value = np.asarray(values, dtype=float).ravel()
                if value.shape != (filled,):
                    raise ValueError(
                        f"state {key!r}[{group_key!r}] must have one entry per step"
                    )
                getattr(aggregator, attribute)[group_key][:filled] = value
        return aggregator

    def merge(self, other: "StreamingAggregator") -> "StreamingAggregator":
        """Merge two aggregators that observed disjoint user shards.

        Both shards must have aggregated the same number of steps with the
        same group keys and prior rate; ``other``'s users are appended
        after ``self``'s (its group indices are shifted by
        ``self.num_users``).  Cumulative per-user state, counts and
        minima/maxima merge exactly; the floating-point group sums merge
        as ``sum_a + sum_b``, which can differ from a single concatenated
        stream's sequential fold in the last ulp.
        """
        if not isinstance(other, StreamingAggregator):
            raise TypeError("can only merge with another StreamingAggregator")
        if self._num_steps != other._num_steps:
            raise ValueError(
                "cannot merge aggregators with different step counts "
                f"({self._num_steps} != {other._num_steps})"
            )
        if self._prior_rate != other._prior_rate:
            raise ValueError("cannot merge aggregators with different prior rates")
        if tuple(self._groups) != tuple(other._groups):
            raise ValueError("cannot merge aggregators with different group keys")
        if self._rate_bins != other._rate_bins:
            raise ValueError(
                "cannot merge aggregators with different histogram binnings"
            )
        merged_groups = {
            key: np.concatenate(
                [self._groups[key], other._groups[key] + self._num_users]
            )
            for key in self._groups
        }
        merged = StreamingAggregator(
            self._num_users + other._num_users,
            groups=merged_groups,
            prior_rate=self._prior_rate,
            rate_bins=self._rate_bins,
        )
        filled = self._num_steps
        while merged._capacity < filled:
            merged._grow()
        merged._num_steps = filled
        merged._offers_cum = np.concatenate([self._offers_cum, other._offers_cum])
        merged._repayments_cum = np.concatenate(
            [self._repayments_cum, other._repayments_cum]
        )
        merged._actions_cum = np.concatenate([self._actions_cum, other._actions_cum])
        merged._decision_sums[:filled] = (
            self._decision_sums[:filled] + other._decision_sums[:filled]
        )
        total_users = merged._num_users
        merged._approvals[:filled] = merged._decision_sums[:filled] / total_users
        merged._offers_totals[:filled] = (
            self._offers_totals[:filled] + other._offers_totals[:filled]
        )
        merged._repayments_totals[:filled] = (
            self._repayments_totals[:filled] + other._repayments_totals[:filled]
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            merged._portfolio[:filled] = np.where(
                merged._offers_totals[:filled] == 0,
                self._prior_rate,
                1.0
                - merged._repayments_totals[:filled]
                / np.maximum(merged._offers_totals[:filled], 1e-300),
            )
        merged._rate_sums[:filled] = self._rate_sums[:filled] + other._rate_sums[:filled]
        merged._rate_sumsqs[:filled] = (
            self._rate_sumsqs[:filled] + other._rate_sumsqs[:filled]
        )
        merged._rate_mins[:filled] = np.minimum(
            self._rate_mins[:filled], other._rate_mins[:filled]
        )
        merged._rate_maxs[:filled] = np.maximum(
            self._rate_maxs[:filled], other._rate_maxs[:filled]
        )
        # Histogram and threshold counts are integers: pooling is exact.
        merged._rate_hist[:filled] = (
            self._rate_hist[:filled] + other._rate_hist[:filled]
        )
        merged._rate_low_counts[:filled] = (
            self._rate_low_counts[:filled] + other._rate_low_counts[:filled]
        )
        for key in self._groups:
            merged._group_rate_sums[key][:filled] = (
                self._group_rate_sums[key][:filled]
                + other._group_rate_sums[key][:filled]
            )
            merged._group_action_sums[key][:filled] = (
                self._group_action_sums[key][:filled]
                + other._group_action_sums[key][:filled]
            )
            merged._group_decision_sums[key][:filled] = (
                self._group_decision_sums[key][:filled]
                + other._group_decision_sums[key][:filled]
            )
        return merged


class BatchedStreamingAggregator:
    """``T`` independent streaming aggregators advanced in lockstep.

    The trial-batched engine records ``T`` trials of the same closed loop
    side by side.  Each trial's aggregate series are defined over its own
    user stream, but the expensive per-step state updates — the cumulative
    offer/repayment/action vectors and the derived ``ADR_i`` / Cesàro
    rows — are identical elementwise math, so this class keeps them
    stacked as ``(trials, users)`` arrays and updates them in single fused
    calls.  The per-trial reductions (sums, extrema, histograms, and the
    sequential group folds) run on contiguous rows of the stack, which is
    the same memory layout a standalone
    :class:`StreamingAggregator` reduces — every series of trial ``t`` is
    therefore **bit-identical** to feeding trial ``t``'s stream through its
    own aggregator (pinned by ``tests/core/test_streaming.py`` and the
    batch-equivalence suite).

    Parameters
    ----------
    num_trials:
        Number of stacked trials.
    num_users:
        Users per trial.
    groups_per_trial:
        One group partition per trial (trials draw independent populations,
        so the race index sets differ row by row).
    prior_rate, rate_bins:
        As in :class:`StreamingAggregator`, shared by every trial.
    """

    def __init__(
        self,
        num_trials: int,
        num_users: int,
        groups_per_trial: "list[Mapping[object, np.ndarray] | None]",
        prior_rate: float = 0.0,
        rate_bins: int = DEFAULT_RATE_BINS,
    ) -> None:
        if num_trials <= 0:
            raise ValueError("num_trials must be positive")
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        if rate_bins < 2:
            raise ValueError("rate_bins must be at least 2")
        if len(groups_per_trial) != num_trials:
            raise ValueError("groups_per_trial must have one partition per trial")
        self._num_trials = int(num_trials)
        self._num_users = int(num_users)
        self._prior_rate = float(prior_rate)
        self._rate_bins = int(rate_bins)
        self._rate_edges = np.linspace(0.0, 1.0, self._rate_bins + 1)
        self._groups = [
            _validated_groups(groups, self._num_users) for groups in groups_per_trial
        ]
        self._num_steps = 0
        self._capacity = _INITIAL_CAPACITY
        shape = (self._num_trials, self._num_users)
        # Fused O(trials * users) running state (one array, not T).
        self._offers_cum = np.zeros(shape, dtype=float)
        self._repayments_cum = np.zeros(shape, dtype=float)
        self._actions_cum = np.zeros(shape, dtype=float)
        # Per-trial O(steps) series, stacked as (trials, capacity).
        series_shape = (self._num_trials, self._capacity)
        self._approvals = np.empty(series_shape, dtype=float)
        self._decision_sums = np.empty(series_shape, dtype=float)
        self._offers_totals = np.empty(series_shape, dtype=float)
        self._repayments_totals = np.empty(series_shape, dtype=float)
        self._portfolio = np.empty(series_shape, dtype=float)
        self._rate_sums = np.empty(series_shape, dtype=float)
        self._rate_sumsqs = np.empty(series_shape, dtype=float)
        self._rate_mins = np.empty(series_shape, dtype=float)
        self._rate_maxs = np.empty(series_shape, dtype=float)
        self._rate_hist = np.zeros(
            (self._num_trials, self._capacity, self._rate_bins), dtype=np.int64
        )
        self._rate_low_counts = np.zeros(series_shape, dtype=np.int64)
        self._group_rate_sums = [
            {key: np.empty(self._capacity) for key in groups}
            for groups in self._groups
        ]
        self._group_action_sums = [
            {key: np.empty(self._capacity) for key in groups}
            for groups in self._groups
        ]
        self._group_decision_sums = [
            {key: np.empty(self._capacity) for key in groups}
            for groups in self._groups
        ]

    @property
    def num_trials(self) -> int:
        """Return the number of stacked trials."""
        return self._num_trials

    @property
    def num_steps(self) -> int:
        """Return the number of lockstep-aggregated steps."""
        return self._num_steps

    def _grow(self) -> None:
        new_capacity = max(_INITIAL_CAPACITY, self._capacity * 2)
        filled = self._num_steps

        def regrow(stacked: np.ndarray) -> np.ndarray:
            fresh = np.empty(
                (self._num_trials, new_capacity) + stacked.shape[2:],
                dtype=stacked.dtype,
            )
            fresh[:, :filled] = stacked[:, :filled]
            return fresh

        for attribute in (
            "_approvals",
            "_decision_sums",
            "_offers_totals",
            "_repayments_totals",
            "_portfolio",
            "_rate_sums",
            "_rate_sumsqs",
            "_rate_mins",
            "_rate_maxs",
            "_rate_hist",
            "_rate_low_counts",
        ):
            setattr(self, attribute, regrow(getattr(self, attribute)))
        for per_trial in (
            self._group_rate_sums,
            self._group_action_sums,
            self._group_decision_sums,
        ):
            for series in per_trial:
                for key in series:
                    series[key] = _grown(series[key], new_capacity, filled)
        self._capacity = new_capacity

    def update(self, decisions: np.ndarray, actions: np.ndarray) -> None:
        """Fold one lockstep step of ``(trials, users)`` decisions/actions.

        Replays :meth:`StreamingAggregator.update` for every trial: the
        cumulative vectors and derived per-user rows update in fused 2-D
        operations (elementwise, hence row-identical), the per-step scalars
        and group folds reduce each contiguous trial row exactly as the
        standalone aggregator reduces its own arrays.
        """
        shape = (self._num_trials, self._num_users)
        if decisions.shape != shape or actions.shape != shape:
            raise ValueError(
                f"decisions and actions must both have shape {shape}"
            )
        if self._num_steps >= self._capacity:
            self._grow()
        row = self._num_steps
        self._offers_cum += decisions
        self._repayments_cum += actions * decisions
        self._actions_cum += actions
        rates = running_default_rates_from_cums(
            self._offers_cum, self._repayments_cum
        )
        cesaro = self._actions_cum / float(row + 1)
        low_mask = rates <= RATE_HISTOGRAM_LOW_THRESHOLD
        for trial in range(self._num_trials):
            decisions_row = decisions[trial]
            rates_row = rates[trial]
            self._approvals[trial, row] = np.mean(decisions_row)
            self._decision_sums[trial, row] = float(decisions_row.sum())
            offers_total = float(self._offers_cum[trial].sum())
            repayments_total = float(self._repayments_cum[trial].sum())
            self._offers_totals[trial, row] = offers_total
            self._repayments_totals[trial, row] = repayments_total
            self._portfolio[trial, row] = (
                self._prior_rate
                if offers_total == 0
                else 1.0 - repayments_total / offers_total
            )
            self._rate_sums[trial, row] = float(rates_row.sum())
            self._rate_sumsqs[trial, row] = float(np.dot(rates_row, rates_row))
            self._rate_mins[trial, row] = float(rates_row.min())
            self._rate_maxs[trial, row] = float(rates_row.max())
            self._rate_hist[trial, row], _ = np.histogram(
                rates_row, bins=self._rate_edges
            )
            self._rate_low_counts[trial, row] = int(
                np.count_nonzero(low_mask[trial])
            )
            cesaro_row = cesaro[trial]
            for key, indices in self._groups[trial].items():
                self._group_rate_sums[trial][key][row] = sequential_sum(
                    rates_row[indices]
                )
                self._group_action_sums[trial][key][row] = sequential_sum(
                    cesaro_row[indices]
                )
                self._group_decision_sums[trial][key][row] = sequential_sum(
                    decisions_row[indices]
                )
        self._num_steps += 1

    def trial_state(self, trial: int) -> Dict[str, object]:
        """Return trial ``trial``'s state as a standalone-aggregator snapshot."""
        if not 0 <= trial < self._num_trials:
            raise ValueError("trial index out of range")
        filled = self._num_steps
        return {
            "num_users": self._num_users,
            "prior_rate": self._prior_rate,
            "num_steps": filled,
            "groups": {
                key: indices.copy() for key, indices in self._groups[trial].items()
            },
            "rate_bins": self._rate_bins,
            "rate_hist": self._rate_hist[trial, :filled].copy(),
            "rate_low_counts": self._rate_low_counts[trial, :filled].copy(),
            "offers_cum": self._offers_cum[trial].copy(),
            "repayments_cum": self._repayments_cum[trial].copy(),
            "actions_cum": self._actions_cum[trial].copy(),
            "approvals": self._approvals[trial, :filled].copy(),
            "decision_sums": self._decision_sums[trial, :filled].copy(),
            "offers_totals": self._offers_totals[trial, :filled].copy(),
            "repayments_totals": self._repayments_totals[trial, :filled].copy(),
            "portfolio": self._portfolio[trial, :filled].copy(),
            "rate_sums": self._rate_sums[trial, :filled].copy(),
            "rate_sumsqs": self._rate_sumsqs[trial, :filled].copy(),
            "rate_mins": self._rate_mins[trial, :filled].copy(),
            "rate_maxs": self._rate_maxs[trial, :filled].copy(),
            "group_rate_sums": {
                key: self._group_rate_sums[trial][key][:filled].copy()
                for key in self._groups[trial]
            },
            "group_action_sums": {
                key: self._group_action_sums[trial][key][:filled].copy()
                for key in self._groups[trial]
            },
            "group_decision_sums": {
                key: self._group_decision_sums[trial][key][:filled].copy()
                for key in self._groups[trial]
            },
        }

    def aggregator(self, trial: int) -> StreamingAggregator:
        """Return a live standalone aggregator holding trial ``trial``'s state."""
        return StreamingAggregator.from_state(self.trial_state(trial))


class AggregateHistory:
    """A memory-bounded trajectory store for ``history_mode="aggregate"``.

    Presents the same ingest surface as
    :class:`~repro.core.history.SimulationHistory` (``record_step``,
    ``append``, ``num_steps``, ``num_users``, ``approval_rates``), but
    folds every step into a :class:`StreamingAggregator` instead of
    retaining ``(steps, users)`` matrices: public features and per-user
    observations are consumed and dropped, so the store's footprint is
    ``O(users)`` running state plus ``O(steps * groups)`` series.

    Accessors that fundamentally need per-user rows —
    ``decisions_matrix``, ``actions_matrix``, ``running_default_rates``,
    ``records`` and friends — raise
    :class:`~repro.core.history.FullHistoryRequiredError` naming the knob
    to flip, rather than returning degraded data.

    Parameters
    ----------
    num_users:
        Optional user count; inferred from the first recorded step when
        omitted.
    groups:
        Optional group partition forwarded to the aggregator.
    prior_rate:
        Portfolio prior, as in :class:`StreamingAggregator`.
    """

    def __init__(
        self,
        num_users: int | None = None,
        groups: Mapping[object, np.ndarray] | None = None,
        prior_rate: float = 0.0,
    ) -> None:
        self._declared_num_users = None if num_users is None else int(num_users)
        self._groups = groups
        self._prior_rate = float(prior_rate)
        self._aggregator: StreamingAggregator | None = None
        if self._declared_num_users is not None:
            self._aggregator = StreamingAggregator(
                self._declared_num_users, groups=self._groups, prior_rate=self._prior_rate
            )

    @classmethod
    def from_aggregator(cls, aggregator: StreamingAggregator) -> "AggregateHistory":
        """Wrap an existing aggregator as a history.

        The trial-batched engine aggregates all trials through one
        :class:`BatchedStreamingAggregator` and exposes each trial's slice
        as a standalone aggregator; this constructor gives it the
        ``AggregateHistory`` surface :class:`~repro.experiments.runner.TrialResult`
        expects.  Further ``record_step`` calls continue the wrapped
        aggregator.
        """
        history = cls.__new__(cls)
        history._declared_num_users = aggregator.num_users
        history._groups = aggregator.group_indices()
        history._prior_rate = aggregator.prior_rate
        history._aggregator = aggregator
        return history

    # ------------------------------------------------------------------
    # Ingest (mirrors SimulationHistory)
    # ------------------------------------------------------------------

    def append(self, record: StepRecord) -> None:
        """Fold one step's record into the aggregate series."""
        self.record_step(
            record.step,
            record.public_features,
            record.decisions,
            record.actions,
            record.observation,
        )

    def record_step(
        self,
        step: int,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
    ) -> None:
        """Aggregate one step; features and observations are not retained.

        Steps must arrive in order without gaps: the running series divide
        by the step count, so a skipped or replayed step would silently
        corrupt every Cesàro average.  The full-history store can warn and
        keep the latest fragment; an aggregate store cannot rewind, so
        out-of-order recording is rejected outright.
        """
        if step != self.num_steps:
            raise ValueError(
                f"aggregate histories require contiguous steps: expected step "
                f"{self.num_steps}, got {step}"
            )
        decisions_row = np.asarray(decisions, dtype=float).ravel()
        if self._aggregator is None:
            self._aggregator = StreamingAggregator(
                decisions_row.shape[0], groups=self._groups, prior_rate=self._prior_rate
            )
        self._aggregator.update(decisions_row, actions)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def aggregator(self) -> StreamingAggregator:
        """Return the underlying aggregator."""
        self._require_non_empty()
        assert self._aggregator is not None
        return self._aggregator

    @property
    def num_steps(self) -> int:
        """Return the number of aggregated steps."""
        return 0 if self._aggregator is None else self._aggregator.num_steps

    @property
    def num_users(self) -> int:
        """Return the number of users (fixed at the first recorded step)."""
        if self._aggregator is None:
            raise ValueError("the history is empty")
        return self._aggregator.num_users

    def _require_non_empty(self) -> None:
        if self._aggregator is None or self._aggregator.num_steps == 0:
            raise ValueError("the history is empty")

    # ------------------------------------------------------------------
    # Aggregate series (bit-identical to the full-history derivations)
    # ------------------------------------------------------------------

    def approval_rates(self) -> np.ndarray:
        """Return the per-step fraction of approved users."""
        self._require_non_empty()
        return _readonly(self.aggregator.approval_rate_series())

    def portfolio_rate_series(self) -> np.ndarray:
        """Return the pooled portfolio default rate over time."""
        self._require_non_empty()
        return _readonly(self.aggregator.portfolio_rate_series())

    def group_default_rate_series(self) -> Dict[object, np.ndarray]:
        """Return the per-group ``ADR_s(k)`` series."""
        self._require_non_empty()
        return self.aggregator.group_default_rate_series()

    def group_action_average_series(self) -> Dict[object, np.ndarray]:
        """Return the per-group Cesàro action-average series."""
        self._require_non_empty()
        return self.aggregator.group_action_average_series()

    def group_approval_series(self) -> Dict[object, np.ndarray]:
        """Return the per-group per-step approval-rate series."""
        self._require_non_empty()
        return self.aggregator.group_approval_series()

    def rate_histogram_series(self) -> np.ndarray:
        """Return the per-step ``ADR_i(k)`` histogram counts (fig5 input)."""
        self._require_non_empty()
        return self.aggregator.rate_histogram_series()

    def rate_histogram_edges(self) -> np.ndarray:
        """Return the fixed bin edges of the per-step rate histograms."""
        self._require_non_empty()
        return self.aggregator.rate_histogram_edges()

    def rate_low_count_series(self) -> np.ndarray:
        """Return, per step, the count of users with ``ADR_i(k) <= 0.10``."""
        self._require_non_empty()
        return self.aggregator.rate_low_count_series()

    # ------------------------------------------------------------------
    # Full-history-only surface: fail loudly, name the fix
    # ------------------------------------------------------------------

    def _full_history_required(self, accessor: str) -> FullHistoryRequiredError:
        return FullHistoryRequiredError(
            f"{accessor} requires per-user history rows, which "
            'history_mode="aggregate" does not retain; rerun with '
            'history_mode="full" to materialise the (steps, users) columns'
        )

    def decisions_matrix(self) -> np.ndarray:
        """Unavailable in aggregate mode; raises FullHistoryRequiredError."""
        raise self._full_history_required("decisions_matrix")

    def actions_matrix(self) -> np.ndarray:
        """Unavailable in aggregate mode; raises FullHistoryRequiredError."""
        raise self._full_history_required("actions_matrix")

    def public_feature_matrix(self, name: str) -> np.ndarray:
        """Unavailable in aggregate mode; raises FullHistoryRequiredError."""
        raise self._full_history_required(f"public_feature_matrix({name!r})")

    def observation_series(self, name: str) -> np.ndarray:
        """Unavailable in aggregate mode; raises FullHistoryRequiredError."""
        raise self._full_history_required(f"observation_series({name!r})")

    def running_default_rates(self) -> np.ndarray:
        """Unavailable in aggregate mode; raises FullHistoryRequiredError."""
        raise self._full_history_required("running_default_rates")

    def running_action_averages(self) -> np.ndarray:
        """Unavailable in aggregate mode; raises FullHistoryRequiredError."""
        raise self._full_history_required("running_action_averages")

    def recompute_running_default_rates(self) -> np.ndarray:
        """Unavailable in aggregate mode; raises FullHistoryRequiredError."""
        raise self._full_history_required("recompute_running_default_rates")

    def recompute_running_action_averages(self) -> np.ndarray:
        """Unavailable in aggregate mode; raises FullHistoryRequiredError."""
        raise self._full_history_required("recompute_running_action_averages")

    def recompute_approval_rates(self) -> np.ndarray:
        """Unavailable in aggregate mode; raises FullHistoryRequiredError."""
        raise self._full_history_required("recompute_approval_rates")

    def group_series(
        self, per_user_series: np.ndarray, groups: Mapping[object, np.ndarray]
    ) -> Dict[object, np.ndarray]:
        """Unavailable in aggregate mode; raises FullHistoryRequiredError."""
        raise self._full_history_required("group_series")

    @property
    def records(self) -> Iterable[StepRecord]:
        """Unavailable in aggregate mode; raises FullHistoryRequiredError."""
        raise self._full_history_required("records")

    def record_at(self, index: int) -> StepRecord:
        """Unavailable in aggregate mode; raises FullHistoryRequiredError."""
        raise self._full_history_required("record_at")
