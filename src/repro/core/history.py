"""Recording of closed-loop simulations.

The orchestrator appends one :class:`StepRecord` per time step;
:class:`SimulationHistory` stacks the per-step arrays into convenient
``(steps, users)`` matrices and computes the derived series the fairness
definitions and the paper's figures need (running default rates, running
action averages, per-group aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.utils.stats import cesaro_averages

__all__ = ["StepRecord", "SimulationHistory"]


@dataclass(frozen=True)
class StepRecord:
    """Everything observed in one pass through the loop.

    Attributes
    ----------
    step:
        The time index ``k``.
    public_features:
        The features the population revealed before the decision.
    decisions:
        The AI system's output ``pi(k, i)``, one entry per user.
    actions:
        The users' responses ``y_i(k)``, one entry per user.
    observation:
        The filter's output *after* folding in this step.
    """

    step: int
    public_features: Mapping[str, np.ndarray]
    decisions: np.ndarray
    actions: np.ndarray
    observation: Mapping[str, np.ndarray | float]


@dataclass
class SimulationHistory:
    """A full closed-loop trajectory.

    Attributes
    ----------
    records:
        One :class:`StepRecord` per simulated step, in time order.
    """

    records: List[StepRecord] = field(default_factory=list)

    def append(self, record: StepRecord) -> None:
        """Append one step's record."""
        self.records.append(record)

    @property
    def num_steps(self) -> int:
        """Return the number of recorded steps."""
        return len(self.records)

    @property
    def num_users(self) -> int:
        """Return the number of users (from the first record)."""
        if not self.records:
            raise ValueError("the history is empty")
        return int(np.asarray(self.records[0].decisions).shape[0])

    def decisions_matrix(self) -> np.ndarray:
        """Return the decisions as a ``(steps, users)`` matrix."""
        self._require_non_empty()
        return np.vstack([np.asarray(r.decisions, dtype=float) for r in self.records])

    def actions_matrix(self) -> np.ndarray:
        """Return the actions as a ``(steps, users)`` matrix."""
        self._require_non_empty()
        return np.vstack([np.asarray(r.actions, dtype=float) for r in self.records])

    def public_feature_matrix(self, name: str) -> np.ndarray:
        """Return one public feature (e.g. income) as a ``(steps, users)`` matrix."""
        self._require_non_empty()
        rows = []
        for record in self.records:
            if name not in record.public_features:
                raise KeyError(f"public feature {name!r} was not recorded")
            rows.append(np.asarray(record.public_features[name], dtype=float))
        return np.vstack(rows)

    def observation_series(self, name: str) -> np.ndarray:
        """Return one observation entry stacked over time.

        Per-user observations produce a ``(steps, users)`` matrix, scalar
        observations a ``(steps,)`` vector.
        """
        self._require_non_empty()
        rows = []
        for record in self.records:
            if name not in record.observation:
                raise KeyError(f"observation {name!r} was not recorded")
            rows.append(np.asarray(record.observation[name], dtype=float))
        return np.vstack(rows) if rows[0].ndim >= 1 and rows[0].size > 1 else np.asarray(
            [float(row) for row in rows]
        )

    def running_action_averages(self) -> np.ndarray:
        """Return the Cesàro averages of the actions, per user, over time.

        Entry ``[k, i]`` is ``(1 / (k + 1)) * sum_{j <= k} y_i(j)`` — the
        quantity whose limit Definition 3 (equal impact) constrains.
        """
        return cesaro_averages(self.actions_matrix(), axis=0)

    def running_default_rates(self) -> np.ndarray:
        """Return the cumulative average default rates ``ADR_i(k)`` over time.

        Defaults are "offered but not repaid"; a user with no offers so far
        has rate 0 by convention, matching
        :class:`repro.credit.default_rates.DefaultRateTracker`.
        """
        decisions = self.decisions_matrix()
        actions = self.actions_matrix()
        offers = np.cumsum(decisions, axis=0)
        repayments = np.cumsum(actions * decisions, axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            rates = np.where(offers > 0, 1.0 - repayments / np.maximum(offers, 1e-12), 0.0)
        return rates

    def group_series(
        self, per_user_series: np.ndarray, groups: Mapping[object, np.ndarray]
    ) -> Dict[object, np.ndarray]:
        """Average a ``(steps, users)`` series over each group of user indices."""
        series = np.asarray(per_user_series, dtype=float)
        result: Dict[object, np.ndarray] = {}
        for key, indices in groups.items():
            if indices.size == 0:
                result[key] = np.full(series.shape[0], np.nan)
            else:
                result[key] = series[:, indices].mean(axis=1)
        return result

    def approval_rates(self) -> np.ndarray:
        """Return the per-step fraction of approved users."""
        return self.decisions_matrix().mean(axis=1)

    def _require_non_empty(self) -> None:
        if not self.records:
            raise ValueError("the history is empty")
