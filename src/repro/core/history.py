"""Recording of closed-loop simulations (columnar engine).

The trajectory store is *columnar*: decisions, actions, public features and
observations live in preallocated ``(capacity, users)`` float arrays that
grow geometrically, so appending a step is a handful of in-place row writes
and ``decisions_matrix`` / ``actions_matrix`` / ``public_feature_matrix``
are O(1) slicing views instead of per-call ``np.vstack`` over Python lists.

Derived metrics are *incremental*: an internal running-statistics layer
(cumulative offers, repayments and action sums, all ``O(users)`` state)
fills one row of each derived series per appended step, so
``running_default_rates``, ``running_action_averages`` and
``approval_rates`` cost O(1) per query rather than O(steps * users).  The
original cumulative-sum formulations are kept as ``recompute_*``
cross-checks; the equivalence suite asserts both paths agree bit-for-bit.

The record-of-dicts interface survives: the orchestrator may still append
one :class:`StepRecord` per time step, and :attr:`SimulationHistory.records`
is a lazy sequence view that materialises :class:`StepRecord` objects from
the columns on demand.  One caveat: a feature/observation key that vanishes
and later reappears keeps only its latest contiguous fragment (a
``RuntimeWarning`` is emitted); the closed loop always records a consistent
key set, so this only affects hand-built pathological histories.

This full-history store is one of two recording modes.  At million-user
scale the ``(steps, users)`` columns make memory the binding constraint, so
the loop can instead record into the memory-bounded
:class:`~repro.core.streaming.AggregateHistory`
(``ClosedLoop.run(..., history_mode="aggregate")``), which keeps only
group-level series.  Consumers that fundamentally need per-user rows raise
:class:`FullHistoryRequiredError` in that mode.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["StepRecord", "SimulationHistory", "FullHistoryRequiredError"]


class FullHistoryRequiredError(RuntimeError):
    """An accessor needs per-user history rows that were never retained.

    Raised by :class:`~repro.core.streaming.AggregateHistory` (and by
    result objects backed by it) when a caller asks for a ``(steps,
    users)`` matrix or per-user series in ``history_mode="aggregate"``.
    The fix is always the same: rerun with ``history_mode="full"``.
    """

#: Initial row capacity of a freshly allocated history.
_INITIAL_CAPACITY = 32


@dataclass(frozen=True)
class StepRecord:
    """Everything observed in one pass through the loop.

    Attributes
    ----------
    step:
        The time index ``k``.
    public_features:
        The features the population revealed before the decision.
    decisions:
        The AI system's output ``pi(k, i)``, one entry per user.
    actions:
        The users' responses ``y_i(k)``, one entry per user.
    observation:
        The filter's output *after* folding in this step.
    """

    step: int
    public_features: Mapping[str, np.ndarray]
    decisions: np.ndarray
    actions: np.ndarray
    observation: Mapping[str, np.ndarray | float]


class _Column:
    """One named, preallocated column of the history.

    A column is either scalar-per-step (``width is None``, backed by a
    ``(capacity,)`` array) or vector-per-step (backed by a
    ``(capacity, width)`` array).  ``start``/``count`` track the contiguous
    run of steps the column covers, so a key that only appears in some
    records is reported exactly like the old record-of-dicts store: matrix
    queries require full coverage, per-record access only shows the key
    where it was present.
    """

    __slots__ = ("data", "width", "start", "count")

    def __init__(self, value: np.ndarray | float, capacity: int, start: int) -> None:
        array = np.asarray(value, dtype=float)
        if array.ndim == 0:
            self.width: int | None = None
            self.data = np.empty(capacity, dtype=float)
        else:
            self.width = int(array.shape[-1]) if array.ndim == 1 else int(array.size)
            self.data = np.empty((capacity, self.width), dtype=float)
        self.start = start
        self.count = 0

    def write(self, step: int, value: np.ndarray | float) -> None:
        """Write ``value`` at row ``step``, tracking contiguity."""
        if step != self.start + self.count:
            # The key vanished and reappeared; keep only the latest
            # contiguous fragment (pathological usage — the closed loop
            # always records a consistent key set).
            self.start = step
            self.count = 0
        if self.width is None:
            self.data[step] = float(value)
        else:
            self.data[step, :] = np.asarray(value, dtype=float).ravel()
        self.count += 1

    def grow(self, capacity: int) -> None:
        """Reallocate the backing array to ``capacity`` rows."""
        self.data = _grown(self.data, capacity, self.start + self.count)

    def covers(self, num_steps: int) -> bool:
        """Return whether the column has a value for every step so far."""
        return self.start == 0 and self.count == num_steps

    def trimmed(self) -> "_Column":
        """Return a copy whose backing array holds only the filled rows."""
        clone = object.__new__(_Column)
        clone.width = self.width
        clone.data = self.data[: self.start + self.count].copy()
        clone.start = self.start
        clone.count = self.count
        return clone

    def present_at(self, step: int) -> bool:
        """Return whether the column has a value at ``step``."""
        return self.start <= step < self.start + self.count


class _RecordsView(Sequence):
    """Read-only sequence of :class:`StepRecord` built from the columns."""

    def __init__(self, history: "SimulationHistory") -> None:
        self._history = history

    def __len__(self) -> int:
        return self._history.num_steps

    def __iter__(self) -> Iterator[StepRecord]:
        for index in range(len(self)):
            yield self._history.record_at(index)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._history.record_at(i) for i in range(*index.indices(len(self)))]
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("record index out of range")
        return self._history.record_at(index)


def _readonly(view: np.ndarray) -> np.ndarray:
    """Return ``view`` marked read-only (it aliases the internal buffers)."""
    view.flags.writeable = False
    return view


def _grown(old: np.ndarray, capacity: int, filled: int) -> np.ndarray:
    """Return a reallocated copy of ``old`` with ``capacity`` rows."""
    fresh = np.empty((capacity,) + old.shape[1:], dtype=old.dtype)
    fresh[:filled] = old[:filled]
    return fresh


def running_default_rates_from_cums(
    offers_cum: np.ndarray, repayments_cum: np.ndarray
) -> np.ndarray:
    """Return ``ADR_i`` from cumulative offers/repayments (the shared fold).

    This is the single definition of the per-user running default rate —
    "offered but not repaid", rate 0 before any offer — used by **both**
    recording modes: :class:`SimulationHistory`'s incremental layer and the
    streaming :class:`~repro.core.streaming.StreamingAggregator`.  Keeping
    it in one place is what makes the cross-mode bit-identity guarantee
    structural rather than two formulas kept in sync by convention.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(
            offers_cum > 0,
            1.0 - repayments_cum / np.maximum(offers_cum, 1e-12),
            0.0,
        )


class SimulationHistory:
    """A full closed-loop trajectory in columnar, preallocated storage.

    The public surface matches the original record-of-dicts store —
    ``append``/``records``/matrix accessors — but storage is columnar
    (see the module docstring) and the derived series are maintained
    incrementally as steps arrive.

    Matrix accessors return **read-only views** into the internal buffers;
    callers that need to mutate the result should copy it first.

    Parameters
    ----------
    records:
        Optional iterable of :class:`StepRecord` to append at construction
        (compatibility with the old dataclass signature).
    """

    def __init__(self, records: Iterable[StepRecord] | None = None) -> None:
        self._num_steps = 0
        self._num_users: int | None = None
        self._capacity = 0
        self._steps = np.empty(0, dtype=np.int64)
        self._decisions = np.empty((0, 0), dtype=float)
        self._actions = np.empty((0, 0), dtype=float)
        self._features: Dict[str, _Column] = {}
        self._observations: Dict[str, _Column] = {}
        # Incremental running-statistics layer (O(users) state per step).
        self._offers_cum = np.empty(0, dtype=float)
        self._repayments_cum = np.empty(0, dtype=float)
        self._actions_cum = np.empty(0, dtype=float)
        self._running_rates = np.empty((0, 0), dtype=float)
        self._running_actions = np.empty((0, 0), dtype=float)
        self._approvals = np.empty(0, dtype=float)
        # True while _offers_cum/_repayments_cum/_actions_cum reflect every
        # recorded step; record_step_precomputed skips maintaining them (its
        # caller already computed the derived rows) and a later plain
        # record_step rebuilds them first (exact — see _rebuild_cums).
        self._cums_valid = True
        if records is not None:
            for record in records:
                self.append(record)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def append(self, record: StepRecord) -> None:
        """Append one step's record."""
        self.record_step(
            record.step,
            record.public_features,
            record.decisions,
            record.actions,
            record.observation,
        )

    def record_step(
        self,
        step: int,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
    ) -> None:
        """Write one step directly into the columns (the fast ingest path).

        This is what :meth:`repro.core.loop.ClosedLoop.run` calls: values
        are copied straight into the preallocated arrays, so no intermediate
        per-step dicts or record objects are allocated.
        """
        decisions_row = np.asarray(decisions, dtype=float).ravel()
        actions_row = np.asarray(actions, dtype=float).ravel()
        if not self._cums_valid:
            self._rebuild_cums()
        row = self._ingest_row(
            step, public_features, observation, decisions_row, actions_row
        )
        self._update_running_stats(row)
        self._num_steps += 1

    def _ingest_row(
        self,
        step: int,
        public_features: Mapping[str, np.ndarray],
        observation: Mapping[str, np.ndarray | float],
        decisions_row: np.ndarray,
        actions_row: np.ndarray,
    ) -> int:
        """Validate and write one step's columns; return the row index.

        The shared tail of both ingest paths (:meth:`record_step` and
        :meth:`record_step_precomputed`): per-user shape checks, column
        value preparation *before* any storage mutation (a bad value
        leaves the history exactly as it was — a half-written step would
        poison the column coverage bookkeeping), lazy initialisation and
        growth, and the columnar row writes.  Public features are always
        per-user-shaped series: scalars are promoted to width-1 columns so
        ``public_feature_matrix`` stays 2-D.  The caller appends the
        derived statistics for ``row`` and advances ``_num_steps``.
        """
        expected_users = (
            self._num_users if self._num_users is not None else decisions_row.shape[0]
        )
        if decisions_row.shape[0] != expected_users:
            raise ValueError(
                "decisions must have one entry per user "
                f"({decisions_row.shape[0]} != {expected_users})"
            )
        if actions_row.shape[0] != expected_users:
            raise ValueError(
                "actions must have one entry per user "
                f"({actions_row.shape[0]} != {expected_users})"
            )
        feature_rows = [
            (
                name,
                self._prepare_value(
                    self._features, name, np.atleast_1d(np.asarray(value, dtype=float))
                ),
            )
            for name, value in public_features.items()
        ]
        observation_rows = [
            (name, self._prepare_value(self._observations, name, value))
            for name, value in observation.items()
        ]
        if self._num_users is None:
            self._initialise(expected_users)
        if self._num_steps >= self._capacity:
            self._grow()
        row = self._num_steps
        self._steps[row] = int(step)
        self._decisions[row, :] = decisions_row
        self._actions[row, :] = actions_row
        for name, value in feature_rows:
            self._write_column(self._features, name, row, value)
        for name, value in observation_rows:
            self._write_column(self._observations, name, row, value)
        return row

    def record_step_precomputed(
        self,
        step: int,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
        *,
        running_rates: np.ndarray,
        running_actions: np.ndarray,
        approval: float,
    ) -> None:
        """Ingest one step whose derived statistics are already computed.

        The trial-batched engine maintains the cumulative offer/repayment
        state for all trials at once, so per-trial histories would
        recompute the identical ``O(users)`` running-statistics rows ``T``
        times per step.  This ingest path stores the caller's rows directly
        instead of running :meth:`_update_running_stats`.

        The caller **must** supply exactly what the incremental layer would
        compute for this step — ``running_rates`` equal to
        :func:`running_default_rates_from_cums` over the history's
        cumulative 0/1 decisions/actions, ``running_actions`` the Cesàro
        row, ``approval`` the decision mean — or the stored series (and the
        ``recompute_*`` cross-checks) would silently disagree.  The batch
        equivalence suite pins this bit for bit.  Mixing with the plain
        :meth:`record_step` afterwards is supported: the cumulative vectors
        are rebuilt exactly from the recorded 0/1 columns on the next plain
        ingest.
        """
        decisions_row = np.asarray(decisions, dtype=float).ravel()
        actions_row = np.asarray(actions, dtype=float).ravel()
        rates_row = np.asarray(running_rates, dtype=float).ravel()
        running_actions_row = np.asarray(running_actions, dtype=float).ravel()
        expected_users = (
            self._num_users if self._num_users is not None else decisions_row.shape[0]
        )
        for name, row_value in (
            ("running_rates", rates_row),
            ("running_actions", running_actions_row),
        ):
            if row_value.shape[0] != expected_users:
                raise ValueError(
                    f"{name} must have one entry per user "
                    f"({row_value.shape[0]} != {expected_users})"
                )
        row = self._ingest_row(
            step, public_features, observation, decisions_row, actions_row
        )
        self._running_rates[row, :] = rates_row
        self._running_actions[row, :] = running_actions_row
        self._approvals[row] = float(approval)
        self._cums_valid = False
        self._num_steps += 1

    def _rebuild_cums(self) -> None:
        """Rebuild the cumulative vectors from the recorded columns.

        Decisions and actions are 0/1, so their per-user column sums are
        small integers — exact in float regardless of summation order —
        and the rebuilt vectors equal the sequential per-step accumulation
        bit for bit.
        """
        filled = self._num_steps
        decisions = self._decisions[:filled]
        actions = self._actions[:filled]
        self._offers_cum = decisions.sum(axis=0)
        self._repayments_cum = (actions * decisions).sum(axis=0)
        self._actions_cum = actions.sum(axis=0)
        self._cums_valid = True

    @staticmethod
    def _prepare_value(
        columns: Dict[str, _Column], name: str, value: np.ndarray | float
    ) -> np.ndarray | float:
        """Coerce ``value`` for ``name``'s column, validating before any write."""
        column = columns.get(name)
        if column is not None and column.width is not None:
            row = np.asarray(value, dtype=float).ravel()
            if row.size != column.width:
                raise ValueError(
                    f"column {name!r} expects width {column.width}, got {row.size}"
                )
            return row
        if column is not None:  # scalar column
            return float(value)
        array = np.asarray(value, dtype=float)
        return float(array) if array.ndim == 0 else array.ravel()

    def _initialise(self, num_users: int) -> None:
        self._num_users = int(num_users)
        self._capacity = _INITIAL_CAPACITY
        self._steps = np.empty(self._capacity, dtype=np.int64)
        self._decisions = np.empty((self._capacity, self._num_users), dtype=float)
        self._actions = np.empty((self._capacity, self._num_users), dtype=float)
        self._offers_cum = np.zeros(self._num_users, dtype=float)
        self._repayments_cum = np.zeros(self._num_users, dtype=float)
        self._actions_cum = np.zeros(self._num_users, dtype=float)
        self._running_rates = np.empty((self._capacity, self._num_users), dtype=float)
        self._running_actions = np.empty((self._capacity, self._num_users), dtype=float)
        self._approvals = np.empty(self._capacity, dtype=float)

    def _grow(self) -> None:
        """Double the row capacity of every preallocated array."""
        new_capacity = max(_INITIAL_CAPACITY, self._capacity * 2)
        for attribute in (
            "_decisions",
            "_actions",
            "_running_rates",
            "_running_actions",
            "_approvals",
            "_steps",
        ):
            setattr(
                self,
                attribute,
                _grown(getattr(self, attribute), new_capacity, self._num_steps),
            )
        for column in self._features.values():
            column.grow(new_capacity)
        for column in self._observations.values():
            column.grow(new_capacity)
        self._capacity = new_capacity

    def _write_column(
        self,
        columns: Dict[str, _Column],
        name: str,
        row: int,
        value: np.ndarray | float,
    ) -> None:
        column = columns.get(name)
        if column is None:
            column = _Column(value, self._capacity, start=row)
            columns[name] = column
        elif column.count and row != column.start + column.count:
            warnings.warn(
                f"column {name!r} skipped steps "
                f"{column.start + column.count}..{row - 1}; earlier values are "
                "discarded and only the latest contiguous fragment is kept",
                RuntimeWarning,
                stacklevel=4,
            )
        column.write(row, value)

    def _update_running_stats(self, row: int) -> None:
        """Fold step ``row`` into the incremental derived series.

        The updates replay, term by term, the cumulative sums of the
        ``recompute_*`` formulations, so the incremental series are
        bit-identical to the O(steps * users) recomputation.
        """
        decisions_row = self._decisions[row]
        actions_row = self._actions[row]
        self._offers_cum += decisions_row
        self._repayments_cum += actions_row * decisions_row
        self._actions_cum += actions_row
        self._running_rates[row, :] = running_default_rates_from_cums(
            self._offers_cum, self._repayments_cum
        )
        self._running_actions[row, :] = self._actions_cum / float(row + 1)
        self._approvals[row] = np.mean(decisions_row)

    # ------------------------------------------------------------------
    # Record access (compatibility surface)
    # ------------------------------------------------------------------

    @property
    def records(self) -> _RecordsView:
        """Return the steps as a lazy sequence of :class:`StepRecord`."""
        return _RecordsView(self)

    def record_at(self, index: int) -> StepRecord:
        """Materialise the :class:`StepRecord` of step ``index``."""
        if not 0 <= index < self._num_steps:
            raise IndexError("record index out of range")
        features = {
            name: column.data[index].copy()
            for name, column in self._features.items()
            if column.present_at(index)
        }
        observation: Dict[str, np.ndarray | float] = {}
        for name, column in self._observations.items():
            if column.present_at(index):
                observation[name] = (
                    float(column.data[index])
                    if column.width is None
                    else column.data[index].copy()
                )
        return StepRecord(
            step=int(self._steps[index]),
            public_features=features,
            decisions=self._decisions[index].copy(),
            actions=self._actions[index].copy(),
            observation=observation,
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_steps(self) -> int:
        """Return the number of recorded steps."""
        return self._num_steps

    @property
    def num_users(self) -> int:
        """Return the number of users (fixed at the first recorded step)."""
        self._require_non_empty()
        assert self._num_users is not None
        return self._num_users

    # ------------------------------------------------------------------
    # Matrix views
    # ------------------------------------------------------------------

    def decisions_matrix(self) -> np.ndarray:
        """Return the decisions as a read-only ``(steps, users)`` view."""
        self._require_non_empty()
        return _readonly(self._decisions[: self._num_steps])

    def actions_matrix(self) -> np.ndarray:
        """Return the actions as a read-only ``(steps, users)`` view."""
        self._require_non_empty()
        return _readonly(self._actions[: self._num_steps])

    def public_feature_matrix(self, name: str) -> np.ndarray:
        """Return one public feature (e.g. income) as a ``(steps, users)`` view."""
        self._require_non_empty()
        column = self._features.get(name)
        if column is None or not column.covers(self._num_steps):
            raise KeyError(f"public feature {name!r} was not recorded")
        return _readonly(column.data[: self._num_steps])

    def observation_series(self, name: str) -> np.ndarray:
        """Return one observation entry stacked over time.

        Per-user (array-valued) observations produce a ``(steps, users)``
        matrix, scalar observations a ``(steps,)`` vector.  The distinction
        is by the dimensionality of the recorded value — a per-user array
        from a 1-user population stays a ``(steps, 1)`` matrix instead of
        being silently flattened to a scalar series.
        """
        self._require_non_empty()
        column = self._observations.get(name)
        if column is None or not column.covers(self._num_steps):
            raise KeyError(f"observation {name!r} was not recorded")
        return _readonly(column.data[: self._num_steps])

    # ------------------------------------------------------------------
    # Incremental derived series (O(1) per query)
    # ------------------------------------------------------------------

    def running_action_averages(self) -> np.ndarray:
        """Return the Cesàro averages of the actions, per user, over time.

        Entry ``[k, i]`` is ``(1 / (k + 1)) * sum_{j <= k} y_i(j)`` — the
        quantity whose limit Definition 3 (equal impact) constrains.
        Maintained incrementally; O(1) per query.
        """
        self._require_non_empty()
        return _readonly(self._running_actions[: self._num_steps])

    def running_default_rates(self) -> np.ndarray:
        """Return the cumulative average default rates ``ADR_i(k)`` over time.

        Defaults are "offered but not repaid"; a user with no offers so far
        has rate 0 by convention, matching
        :class:`repro.credit.default_rates.DefaultRateTracker`.
        Maintained incrementally; O(1) per query.
        """
        self._require_non_empty()
        return _readonly(self._running_rates[: self._num_steps])

    def approval_rates(self) -> np.ndarray:
        """Return the per-step fraction of approved users (O(1) per query)."""
        self._require_non_empty()
        return _readonly(self._approvals[: self._num_steps])

    # ------------------------------------------------------------------
    # Cross-check recomputations (the original O(steps * users) math)
    # ------------------------------------------------------------------

    def recompute_running_default_rates(self) -> np.ndarray:
        """Recompute ``ADR_i(k)`` from scratch via cumulative sums.

        Kept as a cross-check of the incremental layer; the equivalence
        suite asserts bit-identity with :meth:`running_default_rates`.
        """
        decisions = self.decisions_matrix()
        actions = self.actions_matrix()
        offers = np.cumsum(decisions, axis=0)
        repayments = np.cumsum(actions * decisions, axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            rates = np.where(offers > 0, 1.0 - repayments / np.maximum(offers, 1e-12), 0.0)
        return rates

    def recompute_running_action_averages(self) -> np.ndarray:
        """Recompute the Cesàro action averages from scratch (cross-check)."""
        from repro.utils.stats import cesaro_averages

        return cesaro_averages(self.actions_matrix(), axis=0)

    def recompute_approval_rates(self) -> np.ndarray:
        """Recompute the per-step approval rates from scratch (cross-check)."""
        return self.decisions_matrix().mean(axis=1)

    # ------------------------------------------------------------------
    # Grouping
    # ------------------------------------------------------------------

    def group_series(
        self, per_user_series: np.ndarray, groups: Mapping[object, np.ndarray]
    ) -> Dict[object, np.ndarray]:
        """Average a ``(steps, users)`` series over each group of user indices."""
        series = np.asarray(per_user_series, dtype=float)
        result: Dict[object, np.ndarray] = {}
        for key, indices in groups.items():
            if indices.size == 0:
                result[key] = np.full(series.shape[0], np.nan)
            else:
                result[key] = series[:, indices].mean(axis=1)
        return result

    def _require_non_empty(self) -> None:
        if self._num_steps == 0:
            raise ValueError("the history is empty")

    # ------------------------------------------------------------------
    # Pickling (the parallel runner ships histories between processes)
    # ------------------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        """Pickle only the filled rows, not the over-allocated capacity."""
        state = dict(self.__dict__)
        filled = self._num_steps
        for attribute in (
            "_steps",
            "_decisions",
            "_actions",
            "_running_rates",
            "_running_actions",
            "_approvals",
        ):
            state[attribute] = state[attribute][:filled].copy()
        state["_features"] = {
            name: column.trimmed() for name, column in self._features.items()
        }
        state["_observations"] = {
            name: column.trimmed() for name, column in self._observations.items()
        }
        state["_capacity"] = filled
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
