"""Equal treatment and equal impact: Definitions 1-4 made executable.

The paper's definitions are idealised (they speak of exact constants and of
limits as ``k -> infinity``); on a finite simulated history they become
statistical assessments:

* **Equal treatment** (Definitions 1-2) concerns a single pass through the
  loop: the same information is offered to every user in the class, and the
  response statistics are a user-independent constant.  On a history we
  check (a) whether the decisions were identical across users at each step
  and (b) how far apart the users' (or groups') mean responses are.
* **Equal impact** (Definitions 3-4) concerns the long run: each user's
  Cesàro average converges to a constant ``r_i`` independent of initial
  conditions, and all the ``r_i`` coincide.  On a history we estimate
  ``r_i`` from the tail of the running average, report the largest pairwise
  gap across users and across groups, and report a convergence indicator
  (the dispersion of the tail of each running average).

Both assessments accept an optional grouping so the "conditioned on
non-protected attributes" variants (Definitions 2 and 4) are the same call
with a different grouping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.utils.stats import cesaro_averages, max_pairwise_gap

__all__ = [
    "TreatmentAssessment",
    "ImpactAssessment",
    "equal_treatment_assessment",
    "equal_impact_assessment",
]


@dataclass(frozen=True)
class TreatmentAssessment:
    """Assessment of equal treatment on a simulated history.

    Attributes
    ----------
    uniform_signal:
        Whether every user received the same decision at every step (the
        "same information pi(k) to all users" clause).
    per_step_signal_gap:
        For each step, the largest gap between any two users' decisions
        (zero when the signal is uniform).
    mean_responses:
        The per-user (or per-group) mean response over the assessed window.
    max_response_gap:
        Largest pairwise gap between those mean responses; Definition 1
        requires it to vanish.
    tolerance:
        The tolerance used by :attr:`satisfied`.
    """

    uniform_signal: bool
    per_step_signal_gap: np.ndarray
    mean_responses: Dict[object, float]
    max_response_gap: float
    tolerance: float

    @property
    def satisfied(self) -> bool:
        """Return whether the history is consistent with equal treatment."""
        return self.uniform_signal and self.max_response_gap <= self.tolerance


@dataclass(frozen=True)
class ImpactAssessment:
    """Assessment of equal impact on a simulated history.

    Attributes
    ----------
    user_limits:
        Estimated long-run average ``r_i`` per user (tail of the running
        average of the assessed outcome).
    group_limits:
        Estimated long-run average per group (``nan`` for empty groups).
    max_user_gap:
        Largest pairwise gap between user limits.
    max_group_gap:
        Largest pairwise gap between group limits (0 when fewer than two
        non-empty groups).
    max_tail_dispersion:
        Largest tail dispersion of any user's running average — a
        convergence indicator: small values mean the Cesàro averages have
        settled.
    tolerance:
        The tolerance used by :attr:`satisfied`.
    """

    user_limits: np.ndarray
    group_limits: Dict[object, float]
    max_user_gap: float
    max_group_gap: float
    max_tail_dispersion: float
    tolerance: float

    @property
    def satisfied(self) -> bool:
        """Return whether the history is consistent with equal impact.

        The criterion is the conditioned one when a grouping was supplied
        (all group limits coincide within tolerance) and the unconditional
        one otherwise (all user limits coincide within tolerance).
        """
        if len(self.group_limits) > 1:
            return self.max_group_gap <= self.tolerance
        return self.max_user_gap <= self.tolerance

    @property
    def converged(self) -> bool:
        """Return whether the running averages appear to have settled."""
        return self.max_tail_dispersion <= max(self.tolerance, 1e-12)


def equal_treatment_assessment(
    decisions: np.ndarray,
    responses: np.ndarray,
    groups: Mapping[object, np.ndarray] | None = None,
    tolerance: float = 0.05,
) -> TreatmentAssessment:
    """Assess equal treatment (Definition 1, or 2 when ``groups`` is given).

    Parameters
    ----------
    decisions:
        ``(steps, users)`` matrix of the information/decisions each user
        received.
    responses:
        ``(steps, users)`` matrix of the users' responses ``y_i(k)``.
    groups:
        Optional mapping from group key to user-index array; when given the
        response constants are compared across groups rather than across
        individual users (the conditioned definition).
    tolerance:
        Largest acceptable gap between the compared response constants.
    """
    decisions_matrix = np.asarray(decisions, dtype=float)
    responses_matrix = np.asarray(responses, dtype=float)
    if decisions_matrix.shape != responses_matrix.shape or decisions_matrix.ndim != 2:
        raise ValueError("decisions and responses must be equal-shape (steps, users)")
    signal_gap = decisions_matrix.max(axis=1) - decisions_matrix.min(axis=1)
    uniform = bool(np.all(signal_gap == 0.0))
    if groups:
        means: Dict[object, float] = {}
        for key, indices in groups.items():
            if indices.size:
                means[key] = float(responses_matrix[:, indices].mean())
        gap = max_pairwise_gap(list(means.values())) if len(means) > 1 else 0.0
    else:
        per_user = responses_matrix.mean(axis=0)
        means = {index: float(value) for index, value in enumerate(per_user)}
        gap = max_pairwise_gap(per_user)
    return TreatmentAssessment(
        uniform_signal=uniform,
        per_step_signal_gap=signal_gap,
        mean_responses=means,
        max_response_gap=float(gap),
        tolerance=float(tolerance),
    )


def equal_impact_assessment(
    outcomes: np.ndarray,
    groups: Mapping[object, np.ndarray] | None = None,
    tolerance: float = 0.05,
    tail_fraction: float = 0.25,
    already_averaged: bool = False,
) -> ImpactAssessment:
    """Assess equal impact (Definition 3, or 4 when ``groups`` is given).

    Parameters
    ----------
    outcomes:
        ``(steps, users)`` matrix of the per-step outcome ``y_i(k)`` — or,
        when ``already_averaged`` is true, of an already-cumulative series
        such as ``ADR_i(k)``.
    groups:
        Optional mapping from group key to user-index array for the
        conditioned definition.
    tolerance:
        Largest acceptable gap between the estimated limits.
    tail_fraction:
        Fraction of the final steps used to estimate each limit ``r_i`` and
        its convergence.
    already_averaged:
        Set to true when ``outcomes`` is already a running average (then the
        Cesàro step is skipped).
    """
    matrix = np.asarray(outcomes, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ValueError("outcomes must be a non-empty (steps, users) matrix")
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must lie in (0, 1]")
    running = matrix if already_averaged else cesaro_averages(matrix, axis=0)
    tail_length = max(1, int(round(running.shape[0] * tail_fraction)))
    tail = running[-tail_length:, :]
    user_limits = tail.mean(axis=0)
    # Column-wise standard deviation of the shared tail window: one array
    # operation over the (tail, users) block instead of a per-user
    # tail_dispersion() pass over the whole matrix.  Reduction order may
    # differ from the 1-D per-user path in the last ulp; the dispersion is a
    # tolerance-gated convergence diagnostic, not a bit-exact recorded series.
    dispersions = np.std(tail, axis=0)
    group_limits: Dict[object, float] = {}
    if groups:
        for key, indices in groups.items():
            group_limits[key] = (
                float(user_limits[indices].mean()) if indices.size else float("nan")
            )
        finite = [value for value in group_limits.values() if np.isfinite(value)]
        group_gap = max_pairwise_gap(finite) if len(finite) > 1 else 0.0
    else:
        group_gap = 0.0
    return ImpactAssessment(
        user_limits=user_limits,
        group_limits=group_limits,
        max_user_gap=float(max_pairwise_gap(user_limits)),
        max_group_gap=float(group_gap),
        max_tail_dispersion=float(dispersions.max()),
        tolerance=float(tolerance),
    )
