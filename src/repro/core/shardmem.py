"""Zero-copy shared-memory transport for the pooled shard path.

PR 3's pooled shard execution moved every per-step payload — the workers'
public-feature slices, the orchestrator's decision vector, the workers'
action and rate slices — through pickled executor messages, which made
8 workers *slower* than the serial loop on one CPU (``BENCH_core.json``
``sharded-execution``).  This module replaces that transport with one
POSIX shared-memory segment per worker pool:

* the orchestrator allocates a ``(channels, num_users)`` float64 tensor
  (feature channels + ``decisions``/``actions``/``user_rates``) plus a
  ``(workers, 2)`` scalar table for the per-worker offer/repayment totals;
* each worker maps the segment once at pool start and thereafter writes
  its shard's slice ``[lo, hi)`` in place — the per-step executor messages
  shrink to booleans (and, under sufficient-statistics retraining, the
  tiny :class:`~repro.scoring.suffstats.CompressedDesign` count tables);
* the orchestrator reads whole channel rows back as copies, which are
  bit-identical to the old concatenation of pickled slices (same float64
  values, same order), so the engine's golden digests are untouched.

Lifecycle is the delicate part.  The *orchestrator* owns the segment: it
unlinks exactly once, on pool shutdown — which the supervised pool reaches
on success, on worker death/hang (before the rebuild allocates a fresh
arena), and on the serial fallback.  *Workers* only attach; on Python
3.11/3.12 the stdlib registers every attach with the ``resource_tracker``,
which would both spam "leaked shared_memory" warnings and unlink segments
still in use when a worker exits — so :meth:`SharedMemoryArena.attach`
unregisters the attachment immediately (Python 3.13+ exposes
``track=False`` for the same purpose).  The chaos suite in
``tests/experiments/test_fault_tolerance.py`` pins that no ``/dev/shm``
segment survives injected worker kills, pool rebuilds, or the serial
degrade.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SEGMENT_PREFIX",
    "ArenaSpec",
    "SharedMemoryArena",
    "TransportMeter",
    "set_transport_meter",
    "transport_meter",
    "live_segments",
]

#: Name prefix of every segment this module creates.  The chaos suite lists
#: ``/dev/shm`` entries with this prefix before and after injected worker
#: failures to assert nothing leaked.
SEGMENT_PREFIX = "repro-shm-"

_SCALAR_SLOTS = 2  # per-worker (offers_total, repayments_total)


def _shared_memory():
    """Import the stdlib module lazily so import errors surface per use."""
    from multiprocessing import shared_memory

    return shared_memory


class _suppress_tracker_registration:
    """Keep a ``SharedMemory`` attach out of the resource tracker.

    On Python < 3.13 every ``SharedMemory`` construction registers the
    segment with the ``resource_tracker`` — creator and attacher alike.
    Forked workers share the orchestrator's tracker process and its cache
    is a *set*, so a worker-side attach-then-unregister would erase the
    orchestrator's own registration (and the eventual unlink would log a
    spurious ``KeyError`` in the tracker).  Suppressing the registration
    during the attach leaves the tracker exactly as the creator set it up:
    one registration, cleared once by ``unlink``.  Python 3.13+ exposes
    ``track=False`` for the same purpose.
    """

    def __enter__(self):
        from multiprocessing import resource_tracker

        self._module = resource_tracker
        self._original = resource_tracker.register

        def _register(name, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                self._original(name, rtype)

        resource_tracker.register = _register
        return self

    def __exit__(self, *exc_info):
        self._module.register = self._original
        return False


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable descriptor a worker needs to attach an arena.

    Attributes
    ----------
    name:
        The shared-memory segment name.
    channels:
        All channel names, in tensor row order (feature channels first,
        then ``decisions``, ``actions``, ``user_rates``).
    feature_channels:
        The population's public-feature channel names (the prefix of
        ``channels`` the workers write during ``begin_step``).
    num_users, num_workers:
        Tensor row width and scalar-table height.
    """

    name: str
    channels: Tuple[str, ...]
    feature_channels: Tuple[str, ...]
    num_users: int
    num_workers: int


class SharedMemoryArena:
    """One pool's shared tensor: channel rows plus per-worker scalars."""

    def __init__(self, spec: ArenaSpec, shm, owner: bool) -> None:
        self.spec = spec
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._unlinked = False
        tensor_items = len(spec.channels) * spec.num_users
        buffer = shm.buf
        self._tensor = np.frombuffer(
            buffer, dtype=np.float64, count=tensor_items
        ).reshape(len(spec.channels), spec.num_users)
        self._scalars = np.frombuffer(
            buffer,
            dtype=np.float64,
            count=spec.num_workers * _SCALAR_SLOTS,
            offset=tensor_items * 8,
        ).reshape(spec.num_workers, _SCALAR_SLOTS)
        self._index: Dict[str, int] = {
            channel: row for row, channel in enumerate(spec.channels)
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        feature_channels: Sequence[str],
        num_users: int,
        num_workers: int,
    ) -> "SharedMemoryArena":
        """Allocate a fresh arena (orchestrator side; owns the segment)."""
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        features = tuple(str(name) for name in feature_channels)
        reserved = ("decisions", "actions", "user_rates")
        overlap = set(features) & set(reserved)
        if overlap:
            raise ValueError(
                f"feature channels collide with reserved names: {sorted(overlap)}"
            )
        channels = features + reserved
        size = (len(channels) * num_users + num_workers * _SCALAR_SLOTS) * 8
        name = f"{SEGMENT_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}"
        shm = _shared_memory().SharedMemory(name=name, create=True, size=size)
        spec = ArenaSpec(
            name=name,
            channels=channels,
            feature_channels=features,
            num_users=int(num_users),
            num_workers=int(num_workers),
        )
        arena = cls(spec, shm, owner=True)
        arena._tensor.fill(0.0)
        arena._scalars.fill(0.0)
        return arena

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "SharedMemoryArena":
        """Map an existing arena (worker side; never unlinks)."""
        with _suppress_tracker_registration():
            shm = _shared_memory().SharedMemory(name=spec.name)
        return cls(spec, shm, owner=False)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    @property
    def feature_channels(self) -> Tuple[str, ...]:
        """Return the population's feature channel names."""
        return self.spec.feature_channels

    def write_channel(self, channel: str, lo: int, hi: int, values) -> None:
        """Write ``values`` into rows ``[lo, hi)`` of a channel in place."""
        self._tensor[self._index[channel], lo:hi] = np.asarray(
            values, dtype=float
        ).ravel()

    def read_channel(self, channel: str) -> np.ndarray:
        """Return a *copy* of a whole channel row.

        Copying at the transport edge keeps the orchestrator's arrays
        independent of the workers' next-step writes — one memcpy instead
        of a pickle round-trip, and bit-identical values either way.
        """
        return self._tensor[self._index[channel]].copy()

    def read_channel_slice(self, channel: str, lo: int, hi: int) -> np.ndarray:
        """Return a copy of rows ``[lo, hi)`` of a channel."""
        return self._tensor[self._index[channel], lo:hi].copy()

    def write_scalars(self, worker: int, offers: float, repayments: float) -> None:
        """Record one worker's step totals in its scalar row."""
        self._scalars[worker, 0] = float(offers)
        self._scalars[worker, 1] = float(repayments)

    def scalar_totals(self) -> Tuple[float, float]:
        """Sum the per-worker scalar rows in worker order.

        Plain Python float accumulation in ascending worker order — the
        exact summation the pickled transport performed over the gathered
        responses, so the pooled portfolio rate is unchanged bit for bit.
        """
        offers = sum(float(value) for value in self._scalars[:, 0])
        repayments = sum(float(value) for value in self._scalars[:, 1])
        return offers, repayments

    def per_step_bytes(self) -> int:
        """Return the bytes exchanged through the arena in one loop step.

        Feature channels are written by workers and read back once, the
        decision row is written once and read by workers, the action/rate
        rows are written by workers and read back once; the scalar table
        moves once.  Counted single-direction (the number of payload bytes
        that previously crossed the executor pipes as pickles).
        """
        rows = len(self.spec.channels)
        return (
            rows * self.spec.num_users + self.spec.num_workers * _SCALAR_SLOTS
        ) * 8

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Release the numpy views before closing the mmap, or BufferError.
        self._tensor = None
        self._scalars = None
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (owner only; idempotent)."""
        if self._unlinked or not self._owner:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def destroy(self) -> None:
        """Close and (for the owner) unlink; safe to call repeatedly."""
        self.close()
        self.unlink()


def live_segments() -> Tuple[str, ...]:
    """Return the names of this module's segments currently in ``/dev/shm``.

    The chaos suite's leak oracle: compared before/after injected worker
    kills, pool rebuilds and serial fallbacks.  Returns an empty tuple on
    platforms without a ``/dev/shm`` (the arena itself still works there;
    only this introspection is POSIX-specific).
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return ()
    return tuple(sorted(name for name in entries if name.startswith(SEGMENT_PREFIX)))


# ----------------------------------------------------------------------
# Transport metering (bench/test instrumentation; off by default)
# ----------------------------------------------------------------------


class TransportMeter:
    """Counts the bytes the pooled shard path moves, by transport kind.

    ``pickled_bytes`` counts payloads serialized through the executor pipes
    (measured with real ``pickle.dumps`` sizes); ``shared_bytes`` counts
    bytes exchanged through the arena tensor.  ``steps`` counts the loop
    steps metered, so benches can report per-step figures.  Metering is
    orchestrator-side only and costs nothing unless a meter is installed.
    """

    def __init__(self) -> None:
        self.pickled_bytes = 0
        self.shared_bytes = 0
        self.steps = 0

    def add_pickled(self, nbytes: int) -> None:
        self.pickled_bytes += int(nbytes)

    def add_shared(self, nbytes: int) -> None:
        self.shared_bytes += int(nbytes)

    def note_step(self) -> None:
        self.steps += 1

    def per_step_pickled(self) -> float:
        """Return the average pickled payload bytes per metered step."""
        return self.pickled_bytes / self.steps if self.steps else 0.0

    def per_step_shared(self) -> float:
        """Return the average shared-memory bytes per metered step."""
        return self.shared_bytes / self.steps if self.steps else 0.0


_METER: Optional[TransportMeter] = None


def set_transport_meter(meter: Optional[TransportMeter]) -> None:
    """Install (or clear, with ``None``) the process-wide transport meter."""
    global _METER
    _METER = meter


def transport_meter() -> Optional[TransportMeter]:
    """Return the installed transport meter, if any."""
    return _METER
