"""Supervised worker-pool execution: timeouts, retries, backoff, teardown.

Both pooled execution layers (the intra-trial shard pool in
:mod:`repro.core.loop` and the trial pool in
:mod:`repro.experiments.runner`) share one failure model: a worker can
*die* (OOM kill, SIGKILL — surfaces as ``BrokenProcessPool``), *hang*
(surfaces as a future that never completes), or *raise*.  The supervisor
contract is the same in both layers:

1. every gather goes through a deadline so a hung worker becomes a
   detected failure instead of a stuck experiment;
2. a detected failure is retried — after an exponential backoff — from the
   last consistent snapshot (a checkpoint boundary, or the start of the
   unit of work), with the broken pool torn down and rebuilt;
3. when the retry budget is exhausted the work degrades to the
   bit-identical serial path with a structured :class:`RuntimeWarning`,
   never a crashed experiment.

:class:`SupervisorPolicy` carries the knobs; :class:`WorkerPoolFailure` is
the internal signal that unifies death/hang/raise so the retry loop has a
single except clause.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = [
    "SupervisorPolicy",
    "WorkerPoolFailure",
    "kill_executor",
    "release_resources",
]


class WorkerPoolFailure(RuntimeError):
    """A pooled work unit died, hung, or raised; carries the cause."""

    def __init__(self, reason: str, cause: BaseException | None = None) -> None:
        super().__init__(reason if cause is None else f"{reason}: {cause!r}")
        self.reason = reason
        self.cause = cause


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/timeout/backoff policy of a supervised worker pool.

    Attributes
    ----------
    max_retries:
        How many times a failed unit of work is retried before it degrades
        to the serial path.  ``0`` disables retries (first failure degrades
        immediately); the failure itself is still detected and contained.
    timeout:
        Liveness deadline in seconds for worker futures.  ``None`` (the
        default) waits forever — hung-worker detection is opt-in because a
        correct deadline is workload-dependent.  The shard pool applies it
        per gathered step-phase; the trial pool treats it as "some trial
        must complete within this window" and resets it on every
        completion, so it bounds *stall*, not total runtime.
    backoff_base, backoff_factor, backoff_max:
        Exponential backoff between retries: attempt ``n`` sleeps
        ``min(backoff_base * backoff_factor**(n-1), backoff_max)`` seconds.
        The default climbs 0.05 s → 0.1 s → 0.2 s …, enough to let a
        transiently overloaded host drain without turning tests sluggish.
    """

    max_retries: int = 2
    timeout: float | None = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive when given")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1.0")

    def backoff_delay(self, attempt: int) -> float:
        """Return the sleep before retry ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0.0
        return min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )

    def sleep_before_retry(self, attempt: int) -> None:
        """Sleep the backoff delay of retry ``attempt`` (1-based)."""
        delay = self.backoff_delay(attempt)
        if delay > 0:
            time.sleep(delay)


def kill_executor(executor) -> None:
    """Tear down a process-pool executor that may hold hung workers.

    ``shutdown(wait=False)`` alone leaves a worker stuck in an injected (or
    organic) hang alive indefinitely; terminating the worker processes
    first makes teardown prompt.  Best-effort by design: the private
    ``_processes`` map is CPython's, so its absence simply degrades to the
    plain shutdown.
    """
    processes = getattr(executor, "_processes", None)
    if processes:
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead process races
                pass
    executor.shutdown(wait=False, cancel_futures=True)


def release_resources(*resources) -> None:
    """Best-effort ``destroy()``/``close()`` of pool-owned resources.

    Supervised teardown must release OS-level resources (shared-memory
    arenas, open stores) on *every* exit route — including ones reached
    because something else is already failing — so release failures are
    swallowed: cleanup can never mask the original error.  ``None``
    entries are skipped, letting callers pass optional resources straight
    through.
    """
    for resource in resources:
        if resource is None:
            continue
        closer = getattr(resource, "destroy", None) or getattr(
            resource, "close", None
        )
        if closer is None:
            continue
        try:
            closer()
        except Exception:  # pragma: no cover - cleanup must not mask errors
            pass
