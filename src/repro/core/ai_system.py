"""AI systems: the decision-making box of the closed loop.

An AI system sees the users' public features (never the protected
attribute), plus the filtered feedback, and produces the output ``pi(k)`` —
here encoded as one decision per user.  It may also retrain itself on the
delayed feedback; the orchestrator calls ``update`` with the observation
that was available *before* the current step's actions were filtered in,
which is exactly the paper's "delay" box.

Implementations:

* :class:`CreditScoringSystem` — the paper's retraining scorecard lender.
* :class:`ScorecardDecisionSystem` — a fixed scorecard that is never
  retrained (open-loop baseline).
* :class:`ConstantDecisionSystem` — approve (or deny) everyone; the purest
  form of equal treatment.
"""

from __future__ import annotations

from typing import Dict, Mapping, Protocol, runtime_checkable

import numpy as np

from repro.credit.lender import Lender
from repro.scoring.cutoff import CutoffPolicy
from repro.scoring.scorecard import Scorecard
from repro.scoring.suffstats import CompressedDesign

__all__ = [
    "AISystem",
    "CreditScoringSystem",
    "ScorecardDecisionSystem",
    "ConstantDecisionSystem",
]


@runtime_checkable
class AISystem(Protocol):
    """Protocol for the AI-system box of the closed loop."""

    def decide(
        self,
        public_features: Mapping[str, np.ndarray],
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> np.ndarray:
        """Return one decision per user for step ``k``."""
        ...  # pragma: no cover - protocol

    def update(
        self,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> None:
        """Retrain on the delayed feedback (may be a no-op)."""
        ...  # pragma: no cover - protocol


class CreditScoringSystem:
    """The paper's retraining scorecard lender wrapped as an AI system.

    ``decide`` scores each user's (income code, previous average default
    rate) with the current scorecard and applies the cut-off; during the
    warm-up years everyone is approved.  ``update`` refits the logistic
    model on this step's repayments against the features that were visible
    when the decision was made, then rebuilds the scorecard for the next
    step.

    The system also speaks the *sufficient-statistics retraining* protocol
    of the sharded closed loop: :attr:`suffstats_spec` publishes what a
    worker shard needs to compress its slice of the training set into a
    :class:`~repro.scoring.suffstats.CompressedDesign` count table, and
    :meth:`update_from_suffstats` refits centrally from the merged table in
    O(unique rows).  The orchestrator only uses it when the wrapped lender's
    ``retrain_mode`` is ``"compressed"``.
    """

    def __init__(self, lender: Lender | None = None) -> None:
        self._lender = lender or Lender()
        self._last_scores: np.ndarray | None = None

    @property
    def lender(self) -> Lender:
        """Return the wrapped lender."""
        return self._lender

    @property
    def retrain_mode(self) -> str:
        """Return the wrapped lender's refit strategy."""
        return self._lender.retrain_mode

    @property
    def suffstats_spec(self) -> Dict[str, object]:
        """Return the shard-side compression recipe of the retraining set.

        Workers compress ``(income code, previous rate, repayment)`` rows of
        offered users; all they need beyond their own slices is the income
        threshold of the code indicator and the name of the public feature
        carrying the raw incomes.
        """
        return {
            "feature": "income",
            "income_threshold": self._lender.feature_builder.income_threshold,
        }

    @property
    def last_scores(self) -> np.ndarray | None:
        """Return the scores of the most recent decision round."""
        return None if self._last_scores is None else self._last_scores.copy()

    def decide(
        self,
        public_features: Mapping[str, np.ndarray],
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> np.ndarray:
        """Score and decide for every user."""
        incomes = np.asarray(public_features["income"], dtype=float)
        rates = np.asarray(observation["user_default_rates"], dtype=float)
        decision = self._lender.decide(incomes, rates)
        self._last_scores = decision.scores
        return decision.decisions.astype(float)

    def update(
        self,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> None:
        """Refit the scorecard on this step's repayments."""
        incomes = np.asarray(public_features["income"], dtype=float)
        rates = np.asarray(observation["user_default_rates"], dtype=float)
        self._lender.retrain(
            incomes,
            rates,
            np.asarray(actions, dtype=float),
            offered=np.asarray(decisions, dtype=float),
        )

    def update_from_suffstats(self, table: CompressedDesign, k: int) -> None:
        """Refit the scorecard from a merged shard count table.

        ``table`` must already be restricted to offered users (the shard
        compression passes the decisions as the ``offered`` mask) and merged
        across all shards; the refit then touches only the unique rows.
        """
        self._lender.retrain_from_suffstats(table)

    def export_state(self) -> Dict[str, object]:
        """Return a picklable snapshot of the system's mutable state.

        Wraps the lender's learning state (round counter + fitted model;
        the scorecard is rebuilt from the model on import) together with
        the last decision round's scores.  Used by the checkpoint layer —
        see :mod:`repro.core.checkpoint`.
        """
        return {
            "lender": self._lender.export_state(),
            "last_scores": (
                None if self._last_scores is None else self._last_scores.copy()
            ),
        }

    def import_state(self, state: Mapping[str, object]) -> None:
        """Restore the state captured by :meth:`export_state`."""
        self._lender.import_state(state["lender"])
        scores = state.get("last_scores")
        self._last_scores = (
            None if scores is None else np.asarray(scores, dtype=float).copy()
        )


class ScorecardDecisionSystem:
    """A fixed scorecard applied every step, never retrained.

    This is the open-loop (concept-drift-blind) baseline: the card of
    Table I — or any other card — decides forever on the same points.
    """

    def __init__(self, scorecard: Scorecard, cutoff: float = 0.4) -> None:
        self._scorecard = scorecard
        self._cutoff_policy = CutoffPolicy(cutoff=cutoff)

    @property
    def scorecard(self) -> Scorecard:
        """Return the fixed scorecard."""
        return self._scorecard

    def decide(
        self,
        public_features: Mapping[str, np.ndarray],
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> np.ndarray:
        """Score (previous ADR, income) with the fixed card and decide."""
        incomes = np.asarray(public_features["income"], dtype=float)
        rates = np.asarray(observation["user_default_rates"], dtype=float)
        features = np.column_stack([rates, incomes])
        scores = self._scorecard.score_matrix(features)
        return self._cutoff_policy.decide(scores).astype(float)

    def update(
        self,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> None:
        """Fixed scorecards never retrain."""
        return None


class ConstantDecisionSystem:
    """Give every user the same decision every step.

    With ``decision=1`` this is the approve-everyone policy of the paper's
    warm-up years — the purest equal treatment, and the reference point for
    the equal-impact discussion of the introduction.
    """

    def __init__(self, decision: int = 1) -> None:
        if decision not in (0, 1):
            raise ValueError("decision must be 0 or 1")
        self._decision = int(decision)

    @property
    def decision(self) -> int:
        """Return the constant decision."""
        return self._decision

    def decide(
        self,
        public_features: Mapping[str, np.ndarray],
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> np.ndarray:
        """Return the constant decision for every user."""
        num_users = self._infer_num_users(public_features, observation)
        return np.full(num_users, float(self._decision))

    def update(
        self,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> None:
        """Constant policies never retrain."""
        return None

    @staticmethod
    def _infer_num_users(
        public_features: Mapping[str, np.ndarray],
        observation: Mapping[str, np.ndarray | float],
    ) -> int:
        for mapping in (public_features, observation):
            for value in mapping.values():
                array = np.asarray(value)
                if array.ndim >= 1 and array.size >= 1:
                    return int(array.shape[0])
        raise ValueError(
            "cannot infer the population size; provide per-user public features "
            "or a per-user observation"
        )
