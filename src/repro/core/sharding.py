"""Shard plans: the canonical partition behind intra-trial sharded execution.

One trial of the closed loop is a serial walk over time steps, but within a
step every stochastic population quantity (incomes, repayments, IFS moves)
is independent across users.  The sharded engine exploits that by
partitioning the users of a population into contiguous *shards* and giving
each shard its own derived random stream
(:func:`repro.utils.rng.shard_step_generator`).

The partition is **canonical**: a population of ``n`` users is always split
into ``min(NUM_CANONICAL_SHARDS, n)`` contiguous ranges, regardless of how
many workers later execute them.  The random schedule is therefore a
function of ``(base seed, shard index, step)`` alone, so

* running the shards serially in one process,
* running them on any number of worker processes (``num_shards`` workers
  each own a contiguous run of canonical shards), and
* resuming a chunked run

all produce bit-identical trajectories.  The canonical shard count is part
of the engine's pinned random stream (like the seed derivation labels):
changing :data:`NUM_CANONICAL_SHARDS` changes every simulated trajectory
and requires re-goldening the equivalence suites.

:class:`ShardPlan` is the value object describing the partition;
:class:`PopulationShard` bundles one worker's slice of a population (a
sub-population over a contiguous user range plus the *global* canonical
shard indices it executes, so the worker derives exactly the streams the
serial engine would use for those shards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "NUM_CANONICAL_SHARDS",
    "ShardPlan",
    "PopulationShard",
    "max_worker_shards",
    "shard_population",
]

#: Canonical number of user shards per population.  Part of the pinned
#: random stream: every population is partitioned into this many contiguous
#: ranges (capped by the population size) and shard ``s`` draws from the
#: stream ``derive_seed(base, "shard", s)`` independent of the worker count.
NUM_CANONICAL_SHARDS = 8


@dataclass(frozen=True)
class ShardPlan:
    """A contiguous, covering, ordered partition of ``num_users`` users.

    Attributes
    ----------
    num_users:
        Number of users partitioned.
    bounds:
        Tuple of ``(lo, hi)`` half-open user ranges, ascending and exactly
        covering ``[0, num_users)``.
    """

    num_users: int
    bounds: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.num_users <= 0:
            raise ValueError("num_users must be positive")
        if not self.bounds:
            raise ValueError("a shard plan needs at least one shard")
        cursor = 0
        for lo, hi in self.bounds:
            if lo != cursor:
                raise ValueError(
                    f"shard bounds must be contiguous: expected start {cursor}, got {lo}"
                )
            if hi <= lo:
                raise ValueError("every shard must contain at least one user")
            cursor = hi
        if cursor != self.num_users:
            raise ValueError(
                f"shard bounds must cover [0, {self.num_users}); they end at {cursor}"
            )

    @classmethod
    def canonical(cls, num_users: int) -> "ShardPlan":
        """Return the canonical plan: ``min(NUM_CANONICAL_SHARDS, n)`` ranges.

        The split follows :func:`numpy.array_split` sizing (the first
        ``n % shards`` ranges get one extra user), so the partition is a
        pure function of ``num_users``.
        """
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        return cls.with_shards(num_users, min(NUM_CANONICAL_SHARDS, num_users))

    @classmethod
    def with_shards(cls, num_users: int, num_shards: int) -> "ShardPlan":
        """Return a plan with exactly ``num_shards`` contiguous ranges."""
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        if not 1 <= num_shards <= num_users:
            raise ValueError(
                f"num_shards must lie in [1, {num_users}], got {num_shards}"
            )
        # array_split semantics: spread the remainder over the leading shards.
        base, extra = divmod(num_users, num_shards)
        sizes = [base + 1 if index < extra else base for index in range(num_shards)]
        edges = np.concatenate([[0], np.cumsum(sizes)])
        return cls(
            num_users=num_users,
            bounds=tuple(
                (int(edges[index]), int(edges[index + 1]))
                for index in range(num_shards)
            ),
        )

    @classmethod
    def single(cls, num_users: int) -> "ShardPlan":
        """Return the degenerate one-shard plan (legacy populations)."""
        return cls(num_users=num_users, bounds=((0, num_users),))

    @property
    def num_shards(self) -> int:
        """Return the number of shards in the plan."""
        return len(self.bounds)

    @property
    def sizes(self) -> Tuple[int, ...]:
        """Return the number of users in each shard."""
        return tuple(hi - lo for lo, hi in self.bounds)

    def slices(self) -> List[slice]:
        """Return one :class:`slice` per shard, in shard order."""
        return [slice(lo, hi) for lo, hi in self.bounds]

    def worker_ranges(self, num_workers: int) -> List[Tuple[int, int]]:
        """Assign canonical shards to ``num_workers`` contiguous groups.

        Returns ``(shard_start, shard_stop)`` half-open *shard-index* ranges,
        one per worker, following :func:`numpy.array_split` sizing.  Workers
        beyond the shard count are dropped (``min(num_workers, num_shards)``
        groups are returned), so asking for more workers than shards
        degrades gracefully instead of creating idle workers.
        """
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        count = min(num_workers, self.num_shards)
        base, extra = divmod(self.num_shards, count)
        ranges: List[Tuple[int, int]] = []
        cursor = 0
        for index in range(count):
            size = base + 1 if index < extra else base
            ranges.append((cursor, cursor + size))
            cursor += size
        return ranges

    def localized(self, shard_start: int, shard_stop: int) -> "ShardPlan":
        """Return the sub-plan of shards ``[shard_start, shard_stop)``.

        The returned plan's bounds are re-based to the worker's local user
        range (its first shard starts at 0), which is what a sliced
        sub-population uses internally; the *global* shard indices — and
        hence the random streams — are carried separately by
        :class:`PopulationShard`.
        """
        if not 0 <= shard_start < shard_stop <= self.num_shards:
            raise ValueError("invalid shard range")
        offset = self.bounds[shard_start][0]
        bounds = tuple(
            (lo - offset, hi - offset)
            for lo, hi in self.bounds[shard_start:shard_stop]
        )
        return ShardPlan(
            num_users=self.bounds[shard_stop - 1][1] - offset, bounds=bounds
        )

    def user_range(self, shard_start: int, shard_stop: int) -> Tuple[int, int]:
        """Return the global user range covered by a shard-index range."""
        if not 0 <= shard_start < shard_stop <= self.num_shards:
            raise ValueError("invalid shard range")
        return self.bounds[shard_start][0], self.bounds[shard_stop - 1][1]

    def shard_index_range(self, lo: int, hi: int) -> Tuple[int, int]:
        """Return the shard-index range whose shards cover users ``[lo, hi)``.

        The inverse of :meth:`user_range`: the user range must be a union
        of consecutive shards (this is what population ``shard_slice``
        implementations validate against).
        """
        starts = [bound[0] for bound in self.bounds]
        stops = [bound[1] for bound in self.bounds]
        if lo not in starts or hi not in stops:
            raise ValueError(
                f"[{lo}, {hi}) is not a union of consecutive canonical shards"
            )
        return starts.index(lo), stops.index(hi) + 1


@dataclass(frozen=True)
class PopulationShard:
    """One worker's slice of a sharded population.

    Attributes
    ----------
    population:
        The sub-population over the worker's contiguous user range (built
        with the population's ``shard_slice``); its internal plan is the
        localized restriction of the parent's canonical plan.
    shard_ids:
        The *global* canonical shard indices this worker executes, in
        order.  Workers derive their random streams from these, so the
        draws are identical to the serial engine's for the same shards.
    lo, hi:
        The global user range ``[lo, hi)`` the worker owns.
    """

    population: object
    shard_ids: Tuple[int, ...]
    lo: int
    hi: int

    @property
    def num_users(self) -> int:
        """Return the number of users in the shard."""
        return self.hi - self.lo


def max_worker_shards(num_users: int) -> int:
    """Return the most shard workers a population of ``num_users`` can use.

    The canonical partition caps useful parallelism at
    :data:`NUM_CANONICAL_SHARDS` (extra workers would own no shards — see
    :meth:`ShardPlan.worker_ranges`) and at one user per shard.  The
    execution planner consults this ceiling instead of re-deriving it.
    """
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    return min(NUM_CANONICAL_SHARDS, num_users)


def shard_population(population, num_workers: int) -> List[PopulationShard]:
    """Slice ``population`` into per-worker :class:`PopulationShard` pieces.

    The population must expose ``shard_plan`` and ``shard_slice``; workers
    own contiguous runs of the canonical shards per
    :meth:`ShardPlan.worker_ranges`.
    """
    plan: ShardPlan = population.shard_plan
    shards: List[PopulationShard] = []
    for shard_start, shard_stop in plan.worker_ranges(num_workers):
        lo, hi = plan.user_range(shard_start, shard_stop)
        shards.append(
            PopulationShard(
                population=population.shard_slice(lo, hi),
                shard_ids=tuple(range(shard_start, shard_stop)),
                lo=lo,
                hi=hi,
            )
        )
    return shards
