"""The unified execution planner: one knob in front of three layouts.

The engine grew three execution layouts, each with its own switch and its
own rule of thumb:

* ``trial_batch`` — the lockstep tensor engine: best with one core and
  many trials (it amortises the per-step Python dispatch, not the math);
* ``parallel`` — the trial process pool: best with several cores and
  several heavy trials;
* ``num_shards``/``shard_parallel`` — the intra-trial shard pool: best
  with several cores and one giant trial.

:func:`plan_execution` folds that folklore into code: given the workload
shape (trials, users, steps), the host (``cpu_count``), the recording and
retraining modes, and the checkpoint knobs, it resolves a single
``execution`` request — ``"auto"``, ``"serial"``, ``"batch"``, ``"pool"``
or ``"shard"`` — into an :class:`ExecutionPlan` holding the concrete
layout switches the runner threads through.  ``"auto"`` may *compose*
layouts (trial pooling × user sharding when cores outnumber trials); an
optional calibration micro-bench (:func:`measure_dispatch_overhead`)
refines the batch-vs-serial call on dispatch-bound workloads.

Two invariants the rest of the engine supplies and the planner preserves:

* **Every plan is bit-identical.**  All layouts reproduce the serial
  golden stream (pinned by the consolidated differential harness in
  ``tests/experiments/``), so planning is purely a performance decision —
  ``auto`` can never change a trajectory.
* **Plans are not part of a trajectory's identity.**  Checkpoint
  fingerprints exclude the execution layout (see
  ``repro.experiments.runner._trial_fingerprint``), so a run checkpointed
  under one plan resumes bit-identically under another — including
  ``execution="auto"`` resumed on a host with a different ``cpu_count``.

Forbidden combinations (``"batch"`` × checkpointing, the ``execution``
knob alongside the legacy layout switches) are rejected at configuration
time by :func:`validate_execution_settings`, mirroring
:func:`repro.experiments.config.validate_checkpoint_settings`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.sharding import max_worker_shards

__all__ = [
    "EXECUTION_MODES",
    "CampaignBudget",
    "ExecutionPlan",
    "plan_campaign_jobs",
    "plan_execution",
    "reset_planner_caches",
    "validate_execution_settings",
    "measure_dispatch_overhead",
]

#: The values the ``execution`` knob accepts.
EXECUTION_MODES = ("auto", "serial", "batch", "pool", "shard")

#: Below this population size ``auto`` never reaches for the shard pool:
#: the per-step pool round-trip costs more than the per-user math saves.
AUTO_SHARD_MIN_USERS = 2048

#: ``auto`` composes trial pooling with user sharding only when at least
#: this many cores are left per pooled trial.
AUTO_COMPOSE_MIN_CORES_PER_TRIAL = 2

#: Calibration threshold: when the measured per-step dispatch overhead is
#: below this fraction of a step's vectorized work, batching has nothing
#: to amortise and ``auto`` keeps the serial loop.
AUTO_BATCH_MIN_DISPATCH_FRACTION = 0.01


#: Per-process memos of the host probes.  The core count cannot change
#: under a running interpreter, and the dispatch-overhead micro-bench is a
#: property of the interpreter + BLAS build, not of the workload — so a
#: campaign planning 10k jobs pays for each probe once, not once per job.
_CPU_COUNT_MEMO: Optional[int] = None
_DISPATCH_MEMO: Dict[int, float] = {}


def reset_planner_caches() -> None:
    """Forget the memoized cpu-count and dispatch-overhead probes.

    Test seam: suites that monkeypatch ``os.cpu_count`` (rather than the
    :func:`_detect_cpu_count` function itself) or want a fresh calibration
    probe call this between cases.
    """
    global _CPU_COUNT_MEMO
    _CPU_COUNT_MEMO = None
    _DISPATCH_MEMO.clear()


def _detect_cpu_count() -> int:
    """Return the host's CPU count (monkeypatchable seam for tests)."""
    global _CPU_COUNT_MEMO
    if _CPU_COUNT_MEMO is None:
        _CPU_COUNT_MEMO = os.cpu_count() or 1
    return _CPU_COUNT_MEMO


def validate_execution_settings(
    execution: Optional[str],
    *,
    parallel: bool = False,
    trial_batch: bool = False,
    shard_parallel: bool = False,
    checkpoint_every: int = 0,
    resume: bool = False,
) -> None:
    """Reject unusable ``execution`` combinations with actionable errors.

    Called from :class:`~repro.experiments.config.CaseStudyConfig`
    construction and from the runners' override merges, so a bad
    combination fails at configuration time — the same contract as
    :func:`~repro.experiments.config.validate_checkpoint_settings`.
    """
    if execution is None:
        return
    if execution not in EXECUTION_MODES:
        raise ValueError(
            f"execution must be one of {EXECUTION_MODES} (or None), "
            f"got {execution!r}"
        )
    if parallel or trial_batch or shard_parallel:
        raise ValueError(
            "the execution knob replaces the legacy layout switches: drop "
            "parallel/trial_batch/shard_parallel when setting execution "
            f"(got execution={execution!r})"
        )
    if execution == "batch" and (checkpoint_every > 0 or resume):
        raise ValueError(
            'execution="batch" is incompatible with checkpointing (the '
            "batched engine advances all trials in lockstep with no "
            "per-trial boundary to snapshot); pick another execution mode, "
            "or drop the checkpoint_every/resume knobs"
        )


@dataclass(frozen=True)
class ExecutionPlan:
    """The resolved layout switches of one experiment (or trial) run.

    Attributes
    ----------
    execution:
        The requested knob value (``"auto"``, ``"serial"``, ...).
    layout:
        The resolved headline layout: ``"serial"``, ``"batch"``,
        ``"pool"``, ``"shard"`` or the composition ``"pool+shard"``.
    trial_batch, parallel, max_workers, num_shards, shard_parallel:
        The concrete switches the runner threads into
        ``run_experiment``/``run_trial``/``ClosedLoop.run``.
    cpu_count:
        The core count the planner saw.  Recorded for diagnostics only —
        it is *excluded* from checkpoint fingerprints, so plans chosen on
        different hosts resume each other's checkpoints bit-identically.
    calibrated:
        Whether the calibration micro-bench informed the choice.
    """

    execution: str
    layout: str
    trial_batch: bool
    parallel: bool
    max_workers: Optional[int]
    num_shards: int
    shard_parallel: bool
    cpu_count: int
    calibrated: bool = False

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Assert the plan's internal consistency (no forbidden combos)."""
        if self.execution not in EXECUTION_MODES:
            raise ValueError(f"unknown execution mode {self.execution!r}")
        if self.trial_batch and (self.parallel or self.shard_parallel):
            raise ValueError(
                "a batched plan cannot also pool trials or shards (the "
                "batched engine owns every trial in one process)"
            )
        if self.num_shards < 1:
            raise ValueError("num_shards must be positive")
        if self.shard_parallel and self.num_shards < 2:
            raise ValueError("a sharded plan needs at least two worker shards")
        if self.parallel and (self.max_workers is None or self.max_workers < 1):
            raise ValueError("a pooled plan needs a positive worker count")
        if self.cpu_count < 1:
            raise ValueError("cpu_count must be positive")

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-serializable form (round-trips via :meth:`from_dict`)."""
        return {
            "execution": self.execution,
            "layout": self.layout,
            "trial_batch": self.trial_batch,
            "parallel": self.parallel,
            "max_workers": self.max_workers,
            "num_shards": self.num_shards,
            "shard_parallel": self.shard_parallel,
            "cpu_count": self.cpu_count,
            "calibrated": self.calibrated,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExecutionPlan":
        """Rebuild a plan from :meth:`to_dict` output (validates on build)."""
        return cls(
            execution=str(payload["execution"]),
            layout=str(payload["layout"]),
            trial_batch=bool(payload["trial_batch"]),
            parallel=bool(payload["parallel"]),
            max_workers=(
                None
                if payload.get("max_workers") is None
                else int(payload["max_workers"])
            ),
            num_shards=int(payload["num_shards"]),
            shard_parallel=bool(payload["shard_parallel"]),
            cpu_count=int(payload["cpu_count"]),
            calibrated=bool(payload.get("calibrated", False)),
        )

    def describe(self) -> str:
        """Return a one-line human summary of the plan."""
        pieces = [f"{self.execution}->{self.layout}"]
        if self.parallel:
            pieces.append(f"{self.max_workers} trial workers")
        if self.trial_batch:
            pieces.append("lockstep trials")
        if self.shard_parallel:
            pieces.append(f"{self.num_shards} shard workers")
        if not (self.parallel or self.trial_batch or self.shard_parallel):
            pieces.append("in-process")
        return ", ".join(pieces) + f" (saw {self.cpu_count} cpu)"


def measure_dispatch_overhead(users: int, probes: int = 3) -> float:
    """Estimate the per-step Python dispatch fraction of one loop step.

    Times a trivial Python call chain (the fixed per-step cost batching
    amortises) against one vectorized O(users) kernel (the work that
    doesn't shrink), and returns ``dispatch / (dispatch + work)`` from the
    best of ``probes`` runs.  The probe array is capped so calibration
    costs milliseconds even for million-user plans.  Calibration only ever
    tunes the *layout* — every layout is bit-identical, so a noisy probe
    cannot perturb a trajectory.

    Memoized per process on the capped probe size (the only input that
    shapes the measurement): a calibrated 10k-job campaign probes once.
    :func:`reset_planner_caches` forgets the memo.
    """
    size = max(16, min(int(users), 1 << 16))
    memoized = _DISPATCH_MEMO.get(size)
    if memoized is not None:
        return memoized
    values = np.linspace(0.0, 1.0, size)
    out = np.empty_like(values)

    def _noop(payload: Dict[str, float]) -> Dict[str, float]:
        return payload

    best_work = float("inf")
    best_dispatch = float("inf")
    for _ in range(max(1, probes)):
        start = time.perf_counter()
        np.multiply(values, 1.0000001, out=out)
        np.clip(out, 0.0, 1.0, out=out)
        best_work = min(best_work, time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(8):
            _noop({"step": 0.0})["step"]
        best_dispatch = min(best_dispatch, time.perf_counter() - start)
    total = best_work + best_dispatch
    fraction = 0.0 if total <= 0.0 else best_dispatch / total
    _DISPATCH_MEMO[size] = fraction
    return fraction


def _shard_worker_count(
    users: int, cores: int, requested: Optional[int]
) -> int:
    """Resolve the shard-pool worker count for one trial.

    Capped by the canonical shard count (extra workers would idle — see
    :func:`~repro.core.sharding.max_worker_shards`) and the population
    size; an explicit request wins over the core count.
    """
    ceiling = max_worker_shards(users)
    if requested is not None:
        return max(1, min(int(requested), ceiling))
    return max(1, min(max(cores, 2), ceiling))


def plan_execution(
    execution: str,
    *,
    trials: int,
    users: int,
    steps: int,
    history_mode: str = "full",
    retrain_mode: str = "exact",
    checkpoint_every: int = 0,
    resume: bool = False,
    cpu_count: Optional[int] = None,
    max_workers: Optional[int] = None,
    num_shards: Optional[int] = None,
    calibrate: bool = False,
) -> ExecutionPlan:
    """Resolve an ``execution`` request into an :class:`ExecutionPlan`.

    Deterministic for fixed inputs (``cpu_count`` included; it defaults to
    the live core count) unless ``calibrate`` lets the micro-bench break a
    batch-vs-serial tie.  ``history_mode`` and ``retrain_mode`` are
    accepted for completeness — every layout supports both today, so they
    do not steer the choice, but the signature is the stable seam where a
    mode-specific layout preference would land.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    if users < 1:
        raise ValueError("users must be positive")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if history_mode not in ("full", "aggregate"):
        raise ValueError(
            f'history_mode must be "full" or "aggregate", got {history_mode!r}'
        )
    if retrain_mode not in ("exact", "compressed"):
        raise ValueError(
            f'retrain_mode must be "exact" or "compressed", got {retrain_mode!r}'
        )
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be positive when given")
    validate_execution_settings(
        execution, checkpoint_every=checkpoint_every, resume=resume
    )
    cores = _detect_cpu_count() if cpu_count is None else int(cpu_count)
    if cores < 1:
        raise ValueError("cpu_count must be positive")
    checkpointing = checkpoint_every > 0 or resume

    def serial_plan(requested: str, calibrated: bool = False) -> ExecutionPlan:
        return ExecutionPlan(
            execution=requested,
            layout="serial",
            trial_batch=False,
            parallel=False,
            max_workers=None,
            num_shards=1,
            shard_parallel=False,
            cpu_count=cores,
            calibrated=calibrated,
        )

    if execution == "serial":
        return serial_plan("serial")

    if execution == "batch":
        # validate_execution_settings above already rejected checkpointing.
        return ExecutionPlan(
            execution="batch",
            layout="batch",
            trial_batch=True,
            parallel=False,
            max_workers=None,
            num_shards=1,
            shard_parallel=False,
            cpu_count=cores,
        )

    if execution == "pool":
        if trials < 2:
            return serial_plan("pool")  # nothing to pool over
        workers = min(trials, cores if max_workers is None else max_workers)
        return ExecutionPlan(
            execution="pool",
            layout="pool",
            trial_batch=False,
            parallel=True,
            max_workers=max(1, workers),
            num_shards=1,
            shard_parallel=False,
            cpu_count=cores,
        )

    if execution == "shard":
        shards = _shard_worker_count(users, cores, num_shards)
        if shards < 2:
            return serial_plan("shard")  # one-user-ish populations
        return ExecutionPlan(
            execution="shard",
            layout="shard",
            trial_batch=False,
            parallel=False,
            max_workers=None,
            num_shards=shards,
            shard_parallel=True,
            cpu_count=cores,
        )

    # execution == "auto"
    if trials > 1:
        if cores > 1:
            workers = min(trials, cores if max_workers is None else max_workers)
            workers = max(1, workers)
            spare = cores // workers
            if (
                spare >= AUTO_COMPOSE_MIN_CORES_PER_TRIAL
                and users >= AUTO_SHARD_MIN_USERS
            ):
                shards = _shard_worker_count(users, spare, num_shards)
                if shards >= 2:
                    # Composition: pooled trials, each sharding its users
                    # over the cores its siblings leave idle.
                    return ExecutionPlan(
                        execution="auto",
                        layout="pool+shard",
                        trial_batch=False,
                        parallel=True,
                        max_workers=workers,
                        num_shards=shards,
                        shard_parallel=True,
                        cpu_count=cores,
                    )
            return ExecutionPlan(
                execution="auto",
                layout="pool",
                trial_batch=False,
                parallel=True,
                max_workers=workers,
                num_shards=1,
                shard_parallel=False,
                cpu_count=cores,
            )
        # One core, several trials: the lockstep tensor engine amortises
        # the per-step dispatch — unless checkpointing forbids it, or the
        # calibration probe says there is no dispatch worth amortising.
        if checkpointing:
            return serial_plan("auto")
        if calibrate:
            fraction = measure_dispatch_overhead(users)
            if fraction < AUTO_BATCH_MIN_DISPATCH_FRACTION:
                return serial_plan("auto", calibrated=True)
            return ExecutionPlan(
                execution="auto",
                layout="batch",
                trial_batch=True,
                parallel=False,
                max_workers=None,
                num_shards=1,
                shard_parallel=False,
                cpu_count=cores,
                calibrated=True,
            )
        return ExecutionPlan(
            execution="auto",
            layout="batch",
            trial_batch=True,
            parallel=False,
            max_workers=None,
            num_shards=1,
            shard_parallel=False,
            cpu_count=cores,
        )
    # Single trial: shard it across cores when the population is big
    # enough to pay the pool's per-step round-trip, else stay serial.
    if cores > 1 and steps > 0 and users >= AUTO_SHARD_MIN_USERS:
        shards = _shard_worker_count(users, cores, num_shards)
        if shards >= 2:
            return ExecutionPlan(
                execution="auto",
                layout="shard",
                trial_batch=False,
                parallel=False,
                max_workers=None,
                num_shards=shards,
                shard_parallel=True,
                cpu_count=cores,
            )
    return serial_plan("auto")


@dataclass(frozen=True)
class CampaignBudget:
    """How a campaign's concurrent jobs split the host's core budget.

    A campaign runs many independent experiments (jobs).  Left to itself,
    every job would hand :func:`plan_execution` the *whole* host core
    count and greedily size its own trial/shard pools — J concurrent jobs
    would then oversubscribe the machine J times over.  The budget instead
    runs ``job_workers`` jobs side by side and grants each a
    ``cores_per_job`` slice, which is the ``cpu_count`` its
    :func:`plan_execution` call sees.

    Attributes
    ----------
    jobs:
        Number of jobs the budget was sized for (the campaign's pending
        work, not its grid size).
    job_workers:
        Jobs executed concurrently.  Job-level parallelism is the
        outermost, synchronization-free axis, so it is preferred over
        intra-job pools whenever there are at least as many jobs as cores.
    cores_per_job:
        The ``cpu_count`` each concurrent job plans against (>= 1).
    cpu_count:
        The host core count the budget divided up.
    """

    jobs: int
    job_workers: int
    cores_per_job: int
    cpu_count: int

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError("jobs must be non-negative")
        if self.job_workers < 1:
            raise ValueError("job_workers must be positive")
        if self.cores_per_job < 1:
            raise ValueError("cores_per_job must be positive")
        if self.cpu_count < 1:
            raise ValueError("cpu_count must be positive")
        if self.job_workers * self.cores_per_job > max(self.cpu_count, 1) * 2:
            # Mild oversubscription (rounding) is fine; 2x is a planning bug.
            raise ValueError(
                f"budget oversubscribes the host: {self.job_workers} jobs x "
                f"{self.cores_per_job} cores on {self.cpu_count} cpus"
            )

    def describe(self) -> str:
        """Return a one-line human summary of the budget."""
        return (
            f"{self.job_workers} concurrent job(s) x {self.cores_per_job} "
            f"core(s) each (saw {self.cpu_count} cpu, {self.jobs} job(s) pending)"
        )


def plan_campaign_jobs(
    jobs: int,
    *,
    cpu_count: Optional[int] = None,
    max_workers: Optional[int] = None,
) -> CampaignBudget:
    """Split the host's cores across a campaign's pending jobs.

    Jobs are whole independent experiments, so running them side by side
    parallelizes everything — including the central refit that caps the
    shard pool's speedup — with zero synchronization.  The budget therefore
    maximizes ``job_workers`` first (up to the core count and the optional
    ``max_workers`` cap) and only leaves ``cores_per_job > 1`` when cores
    outnumber jobs; each concurrent job must then hand its
    ``cores_per_job`` slice to :func:`plan_execution` as ``cpu_count``
    instead of letting the planner see the whole host.
    """
    if jobs < 0:
        raise ValueError("jobs must be non-negative")
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be positive when given")
    cores = _detect_cpu_count() if cpu_count is None else int(cpu_count)
    if cores < 1:
        raise ValueError("cpu_count must be positive")
    workers = min(max(jobs, 1), cores)
    if max_workers is not None:
        workers = min(workers, max_workers)
    workers = max(1, workers)
    return CampaignBudget(
        jobs=jobs,
        job_workers=workers,
        cores_per_job=max(1, cores // workers),
        cpu_count=cores,
    )
