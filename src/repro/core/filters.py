"""Filters: the aggregation box between the users and the AI system.

The filter consumes each step's decisions and actions and maintains the
aggregate signal the AI system observes and is retrained on.  The paper's
credit case study uses the cumulative average default rate per user
(:class:`DefaultRateFilter`); the ergodicity discussion of Section VI also
motivates simpler generic filters — cumulative averages, exponential moving
averages, integral (accumulating-error) filters, and an anomaly-clipping
wrapper — which the ablation benchmarks exercise.

Every filter implements the :class:`LoopFilter` protocol: ``observation()``
returns the current aggregate signal (a dict of named arrays/scalars) and
``update(decisions, actions, k)`` folds in a new step and returns the
refreshed observation.
"""

from __future__ import annotations

from typing import Dict, Protocol, runtime_checkable

import numpy as np

from repro.credit.default_rates import DefaultRateTracker

__all__ = [
    "LoopFilter",
    "DefaultRateFilter",
    "BatchedDefaultRateFilter",
    "CumulativeAverageFilter",
    "ExponentialMovingAverageFilter",
    "IntegralFilter",
    "AnomalyClippingFilter",
]

#: Observation type: named aggregate signals.
Observation = Dict[str, np.ndarray | float]


@runtime_checkable
class LoopFilter(Protocol):
    """Protocol for the filter box of the closed loop."""

    def observation(self) -> Observation:
        """Return the current aggregate signal."""
        ...  # pragma: no cover - protocol

    def update(
        self, decisions: np.ndarray, actions: np.ndarray, k: int
    ) -> Observation:
        """Fold in one step of decisions/actions and return the new signal."""
        ...  # pragma: no cover - protocol


class DefaultRateFilter:
    """Cumulative average default rates per user (the paper's filter).

    The observation contains ``user_default_rates`` (one entry per user) and
    the pooled ``portfolio_rate``.

    The filter is *shardable*: a population split across workers can run
    one filter per user shard and recombine with :meth:`merge` (exactly —
    offers and repayments are integer counts), or ship raw state around
    via :meth:`export_state`/:meth:`from_state`.  This is the mergeability
    the ROADMAP's sharded-population runner requires.
    """

    def __init__(self, num_users: int, prior_rate: float = 0.0) -> None:
        self._tracker = DefaultRateTracker(num_users, prior_rate=prior_rate)

    @property
    def tracker(self) -> DefaultRateTracker:
        """Return the underlying default-rate tracker."""
        return self._tracker

    def export_state(self) -> Dict[str, object]:
        """Return a picklable snapshot of the filter's cumulative state."""
        return self._tracker.export_state()

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "DefaultRateFilter":
        """Rebuild a filter from an :meth:`export_state` snapshot."""
        restored = cls.__new__(cls)
        restored._tracker = DefaultRateTracker.from_state(state)
        return restored

    def import_state(self, state: Dict[str, object]) -> None:
        """Replace this filter's cumulative state in place.

        The sharded orchestrator uses this at the end of a pooled run to
        fold the merged worker filters back into the loop's own filter
        object, so callers holding a reference to it see the final state.
        """
        self._tracker = DefaultRateTracker.from_state(state)

    def shard_slice(self, lo: int, hi: int) -> "DefaultRateFilter":
        """Return a fresh filter over users ``[lo, hi)``.

        Only a filter that has not folded in any step can be sliced (the
        per-user cumulative state of a running filter would have to be
        split, which the sharded runner never needs: workers start from a
        fresh filter and merge at the end).
        """
        if self._tracker.steps_recorded != 0:
            raise ValueError("only a fresh DefaultRateFilter can be sliced")
        if not 0 <= lo < hi <= self._tracker.num_users:
            raise ValueError("invalid user range")
        return DefaultRateFilter(hi - lo, prior_rate=self._tracker.prior_rate)

    def merge(self, other: "DefaultRateFilter") -> "DefaultRateFilter":
        """Merge two filters that observed disjoint user shards.

        Both shards must have folded in the same number of steps with the
        same prior rate; ``other``'s users are appended after ``self``'s.
        The merged filter's observation is exactly that of an unsharded
        filter over the concatenated population.
        """
        if not isinstance(other, DefaultRateFilter):
            raise TypeError("can only merge with another DefaultRateFilter")
        merged = DefaultRateFilter.__new__(DefaultRateFilter)
        merged._tracker = self._tracker.merge(other._tracker)
        return merged

    def observation(self) -> Observation:
        """Return the current per-user and pooled default rates."""
        return {
            "user_default_rates": self._tracker.user_rates(),
            "portfolio_rate": self._tracker.portfolio_rate(),
        }

    def update(
        self, decisions: np.ndarray, actions: np.ndarray, k: int
    ) -> Observation:
        """Record one step of offers and repayments."""
        self._tracker.record(decisions.astype(int), actions.astype(int))
        return self.observation()


class BatchedDefaultRateFilter:
    """A stack of independent default-rate filters advanced in lockstep.

    The trial-batched engine runs ``T`` trials of the same closed loop side
    by side; each trial owns an independent
    :class:`~repro.credit.default_rates.DefaultRateTracker`, but the
    per-step arithmetic (integer offer/repayment counts, the ``ADR_i``
    ratio, the pooled portfolio rate) is identical across trials.  This
    class keeps the ``T`` trackers' cumulative state stacked as ``(trials,
    users)`` arrays so one fused call replaces ``T`` scalar-dispatch
    updates.

    Row ``t`` is bit-identical, at every step, to a plain
    :class:`DefaultRateFilter` over trial ``t``'s stream: the counts are
    small integers (exact in float), the rate fold uses the same masked
    division as :meth:`DefaultRateTracker.user_rates`, and the portfolio
    ratio sums each row contiguously exactly like the per-trial
    ``tracker.offers.sum()``.  Pinned by ``tests/core/test_filters.py`` and
    the batch-equivalence suite.
    """

    def __init__(
        self, num_trials: int, num_users: int, prior_rate: float = 0.0
    ) -> None:
        if num_trials <= 0:
            raise ValueError("num_trials must be positive")
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        if not 0.0 <= prior_rate <= 1.0:
            raise ValueError("prior_rate must lie in [0, 1]")
        self._num_trials = int(num_trials)
        self._num_users = int(num_users)
        self._prior_rate = float(prior_rate)
        self._offers = np.zeros((num_trials, num_users), dtype=float)
        self._repayments = np.zeros((num_trials, num_users), dtype=float)
        self._steps_recorded = 0

    @property
    def num_trials(self) -> int:
        """Return the number of stacked trials."""
        return self._num_trials

    @property
    def num_users(self) -> int:
        """Return the number of users per trial."""
        return self._num_users

    @property
    def steps_recorded(self) -> int:
        """Return how many lockstep steps have been recorded."""
        return self._steps_recorded

    def update(self, decisions: np.ndarray, actions: np.ndarray) -> None:
        """Fold one lockstep step of ``(trials, users)`` decisions/actions.

        Mirrors ``T`` independent :meth:`DefaultRateFilter.update` calls:
        offers accumulate the 0/1 decisions, repayments the actions of
        offered users.  Inputs are trusted 0/1 float arrays (the batched
        engine produces them); only shapes are validated here.
        """
        shape = (self._num_trials, self._num_users)
        if decisions.shape != shape or actions.shape != shape:
            raise ValueError(
                f"decisions and actions must both have shape {shape}"
            )
        self._offers += decisions
        self._repayments += actions * decisions
        self._steps_recorded += 1

    def user_rates(self) -> np.ndarray:
        """Return the stacked ``ADR_i(k)`` matrix, one row per trial.

        Row-wise bit-identical to :meth:`DefaultRateTracker.user_rates`:
        never-offered users report the prior rate, everyone else the exact
        ``1 - repayments / offers`` ratio.
        """
        rates = np.full(
            (self._num_trials, self._num_users), self._prior_rate, dtype=float
        )
        offered = self._offers > 0
        rates[offered] = 1.0 - self._repayments[offered] / self._offers[offered]
        return rates

    def portfolio_rates(self) -> np.ndarray:
        """Return the pooled default rate of each trial's offers so far."""
        rates = np.empty(self._num_trials, dtype=float)
        for trial in range(self._num_trials):
            # Per-row contiguous sums reproduce the per-trial tracker's
            # reduction order exactly (same length, same layout).
            total_offers = float(self._offers[trial].sum())
            if total_offers == 0:
                rates[trial] = self._prior_rate
            else:
                rates[trial] = float(
                    1.0 - self._repayments[trial].sum() / total_offers
                )
        return rates

    def tracker_for_trial(self, trial: int) -> DefaultRateTracker:
        """Return trial ``trial``'s state as a standalone tracker."""
        if not 0 <= trial < self._num_trials:
            raise ValueError("trial index out of range")
        return DefaultRateTracker.from_state(
            {
                "num_users": self._num_users,
                "prior_rate": self._prior_rate,
                "offers": self._offers[trial].copy(),
                "repayments": self._repayments[trial].copy(),
                "steps_recorded": self._steps_recorded,
            }
        )


class CumulativeAverageFilter:
    """Per-user cumulative (Cesàro) average of the actions.

    The observation contains ``average_action`` per user and the population
    mean ``aggregate``.
    """

    def __init__(self, num_users: int, initial_value: float = 0.0) -> None:
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        self._sums = np.zeros(num_users, dtype=float)
        self._count = 0
        self._initial = float(initial_value)
        self._num_users = num_users

    def observation(self) -> Observation:
        """Return the current per-user averages."""
        if self._count == 0:
            averages = np.full(self._num_users, self._initial)
        else:
            averages = self._sums / self._count
        return {"average_action": averages, "aggregate": float(averages.mean())}

    def update(
        self, decisions: np.ndarray, actions: np.ndarray, k: int
    ) -> Observation:
        """Fold in one step of actions."""
        array = np.asarray(actions, dtype=float).ravel()
        if array.shape != (self._num_users,):
            raise ValueError("actions must have one entry per user")
        self._sums += array
        self._count += 1
        return self.observation()


class ExponentialMovingAverageFilter:
    """Per-user exponentially weighted moving average of the actions.

    A forgetting filter: ``ema <- (1 - alpha) * ema + alpha * action``.  With
    ``alpha`` close to one it tracks recent behaviour; close to zero it
    approaches the cumulative filter's long memory.
    """

    def __init__(self, num_users: int, alpha: float = 0.3, initial_value: float = 0.0) -> None:
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must lie in (0, 1]")
        self._ema = np.full(num_users, float(initial_value))
        self._alpha = float(alpha)
        self._num_users = num_users

    def observation(self) -> Observation:
        """Return the current per-user exponential averages."""
        return {"average_action": self._ema.copy(), "aggregate": float(self._ema.mean())}

    def update(
        self, decisions: np.ndarray, actions: np.ndarray, k: int
    ) -> Observation:
        """Fold in one step of actions."""
        array = np.asarray(actions, dtype=float).ravel()
        if array.shape != (self._num_users,):
            raise ValueError("actions must have one entry per user")
        self._ema = (1.0 - self._alpha) * self._ema + self._alpha * array
        return self.observation()


class IntegralFilter:
    """Accumulating (integral-action) filter: the ergodicity-breaking case.

    The filter integrates the gap between the aggregate action and a target:
    ``integral <- integral + (mean(actions) - target)``.  Section VI of the
    paper (following Fioravanti et al. 2019) highlights that feedback with
    integral action can destroy the ergodic properties of the closed loop;
    the ablation benchmark demonstrates the effect with this filter.
    """

    def __init__(self, target: float = 0.0, gain: float = 1.0) -> None:
        self._target = float(target)
        self._gain = float(gain)
        self._integral = 0.0

    @property
    def integral(self) -> float:
        """Return the accumulated error."""
        return self._integral

    def observation(self) -> Observation:
        """Return the integral state."""
        return {"integral": self._integral}

    def update(
        self, decisions: np.ndarray, actions: np.ndarray, k: int
    ) -> Observation:
        """Accumulate the gap between the aggregate action and the target."""
        array = np.asarray(actions, dtype=float).ravel()
        if array.size == 0:
            raise ValueError("actions must be non-empty")
        self._integral += self._gain * (float(array.mean()) - self._target)
        return self.observation()


class AnomalyClippingFilter:
    """Wrapper that clips extreme actions before passing them to another filter.

    The paper's Section III notes the filter "may accumulate the data, for
    instance, before filtering out anomalies"; this wrapper implements the
    anomaly step by clipping actions to ``[lower, upper]`` before delegating.
    """

    def __init__(self, inner: LoopFilter, lower: float, upper: float) -> None:
        if lower > upper:
            raise ValueError("lower must not exceed upper")
        self._inner = inner
        self._lower = float(lower)
        self._upper = float(upper)

    @property
    def inner(self) -> LoopFilter:
        """Return the wrapped filter."""
        return self._inner

    def observation(self) -> Observation:
        """Return the wrapped filter's observation."""
        return self._inner.observation()

    def update(
        self, decisions: np.ndarray, actions: np.ndarray, k: int
    ) -> Observation:
        """Clip the actions and delegate to the wrapped filter."""
        clipped = np.clip(np.asarray(actions, dtype=float), self._lower, self._upper)
        return self._inner.update(decisions, clipped, k)
