"""The closed-loop orchestrator (Figure 1 of the paper).

One pass through the loop at time ``k``:

1. the population reveals its public features (e.g. this year's incomes);
2. the AI system decides ``pi(k)`` from those features and the *previous*
   filtered observation;
3. the users respond stochastically with actions ``y_i(k)``;
4. the AI system is retrained on the delayed feedback — the features and
   observation that were available when it decided, paired with the actions
   it has just provoked (this is the paper's "delay" box);
5. the filter folds the new actions into the aggregate observation used at
   the next step.

:class:`ClosedLoop` implements exactly that ordering and records every step
in a :class:`~repro.core.history.SimulationHistory` (or, with
``history_mode="aggregate"``, a memory-bounded
:class:`~repro.core.streaming.AggregateHistory`).

Sharded execution
-----------------

Within a step, every stochastic population quantity is independent across
users, so the loop executes the population *shard by shard*: a shard-aware
population (one exposing ``shard_plan``, see
:class:`~repro.core.sharding.ShardPlan`) is driven with one derived
generator per canonical shard and step
(:func:`~repro.utils.rng.shard_step_generator`) instead of one trial-wide
generator.  The random schedule is a pure function of ``(base seed, shard,
step)`` — independent of worker count, chunking and scheduling — which
makes the following three execution modes produce **bit-identical**
trajectories:

* the default in-process run (all shards advanced serially);
* ``run(..., num_shards=w, shard_parallel=True)``: the canonical shards
  are grouped onto ``w`` persistent worker processes; each step the
  orchestrator gathers the workers' public features, decides centrally,
  scatters the decisions, gathers the actions, retrains centrally, and
  assembles the observation from the workers' per-shard
  :class:`~repro.core.filters.DefaultRateFilter` pieces (integer count
  state, so the merged observation is exactly the unsharded filter's); at
  the end of the run the worker filters are folded back into the loop's
  filter with the exact ``DefaultRateFilter.merge``.  Under
  sufficient-statistics retraining (``retrain_mode="compressed"`` with a
  protocol-speaking AI system) even the per-year refit sheds its O(users)
  central scan: workers compress their training rows into
  :class:`~repro.scoring.suffstats.CompressedDesign` count tables, which
  merge by exact integer addition before one O(unique rows) central fit;
* chunked runs (``run`` called repeatedly with the growing history).

Recording stays in the orchestrator in every mode, so the cross-mode
bit-identity guarantees of :mod:`repro.core.streaming` are untouched.

The per-shard streams are a deliberate, pinned break from the pre-sharding
engine's single trial-wide generator; the equivalence suites were
re-goldened when it landed (see ``tests/experiments/test_engine_equivalence.py``).

Populations without a ``shard_plan`` (e.g. hand-written test doubles) run
as a single shard and keep the legacy one-generator ``begin_step``/
``respond`` signature; their stream is then ``shard_step_generator(base,
0, k)``.
"""

from __future__ import annotations

import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.ai_system import AISystem
from repro.core.checkpoint import (
    CheckpointError,
    CheckpointSpec,
    deserialize_payload,
    serialize_payload,
)
from repro.core.filters import DefaultRateFilter, LoopFilter
from repro.core.history import SimulationHistory, StepRecord
from repro.core.population import Population
from repro.core.shardmem import ArenaSpec, SharedMemoryArena, transport_meter
from repro.core.sharding import PopulationShard, ShardPlan, shard_population
from repro.core.streaming import AggregateHistory
from repro.core.supervision import (
    SupervisorPolicy,
    WorkerPoolFailure,
    kill_executor,
    release_resources,
)
from repro.scoring.features import clipped_default_rates, income_code
from repro.scoring.suffstats import CompressedDesign, merge_tables
from repro.testing.faults import fire as _fire_fault
from repro.utils.rng import shard_seed, shard_step_generator, spawn_generator, step_generator

__all__ = ["ClosedLoop"]

_MAX_SEED = 2**63 - 1
_RETRAIN_MODES = ("exact", "compressed")
_SHARD_TRANSPORTS = ("shared", "pickle")


def _resolve_population_plan(population) -> Tuple[ShardPlan, bool]:
    """Return ``(plan, shard_aware)`` for any population object."""
    plan = getattr(population, "shard_plan", None)
    if isinstance(plan, ShardPlan):
        return plan, True
    return ShardPlan.single(population.num_users), False


# ----------------------------------------------------------------------
# Worker side of the process-pool path.  Each worker process belongs to a
# single-worker executor, so module-level state keyed by a run token
# persists across the per-step task submissions.
# ----------------------------------------------------------------------

_WORKER_STATE: Dict[str, Dict[str, object]] = {}


def _pool_worker_init(token: str, payload: Dict[str, object]) -> bool:
    """Install one worker's shard state (population slice, filter, seed).

    ``filter_state`` (when given) seeds the shard filter with the worker's
    slice of an existing tracker — this is how a pool rebuilt after a
    mid-run failure resumes from the supervisor's snapshot instead of from
    a blank filter.  A fresh run passes the all-zero sliced state, which is
    identical to plain construction.

    ``arena`` (an :class:`~repro.core.shardmem.ArenaSpec`, when given)
    switches the worker to the zero-copy transport: it maps the shared
    segment once here and thereafter exchanges its per-step feature /
    decision / action slices through rows ``[lo, hi)`` of the shared
    tensor instead of pickled executor messages.
    """
    shard: PopulationShard = payload["shard"]
    filter_state = payload.get("filter_state")
    arena_spec: ArenaSpec | None = payload.get("arena")
    _WORKER_STATE[token] = {
        "population": shard.population,
        "shard_ids": shard.shard_ids,
        "base_seed": payload["base_seed"],
        "filter": (
            DefaultRateFilter(
                num_users=shard.num_users, prior_rate=payload["prior_rate"]
            )
            if filter_state is None
            else DefaultRateFilter.from_state(filter_state)
        ),
        "suffstats": payload.get("suffstats"),
        "arena": None if arena_spec is None else SharedMemoryArena.attach(arena_spec),
        "worker_index": payload.get("worker_index", 0),
        "lo": shard.lo,
        "hi": shard.hi,
        "step_features": {},
        "step_rngs": {},
    }
    return True


def _pool_worker_begin(token: str, k: int) -> Dict[str, np.ndarray] | bool:
    """Phase 1 of step ``k``: reveal the worker's public features.

    With an arena attached the feature slices are written into the shared
    tensor in place and only ``True`` crosses the executor pipe; without
    one the feature dict is returned (pickled) as before.
    """
    state = _WORKER_STATE[token]
    _fire_fault("shard_worker_begin", shard=int(state["shard_ids"][0]), step=k)
    rngs = [
        shard_step_generator(state["base_seed"], shard_id, k)
        for shard_id in state["shard_ids"]
    ]
    state["step_rngs"][k] = rngs
    features = state["population"].begin_step(k, rngs)
    if state["suffstats"] is not None:
        # The respond phase compresses this step's training rows locally;
        # stash the feature slice it will need (decide happens centrally,
        # so the worker never sees it again otherwise).
        state["step_features"][k] = features
    arena: SharedMemoryArena | None = state["arena"]
    if arena is None:
        return features
    for name in arena.feature_channels:
        arena.write_channel(name, state["lo"], state["hi"], features[name])
    return True


def _pool_worker_respond(
    token: str, k: int, decisions: np.ndarray | None = None
) -> (
    Tuple[np.ndarray, np.ndarray, float, float, CompressedDesign | None]
    | CompressedDesign
    | None
):
    """Phase 2 of step ``k``: respond, update the shard filter.

    Without an arena, returns ``(actions, user_default_rates, offers_total,
    repayments_total, count_table)`` — the pieces the orchestrator needs to
    assemble the exact global observation, plus (under
    sufficient-statistics retraining) the shard's compressed training rows:
    ``(income code, previous rate, repayment)`` of the offered users, built
    from the *pre-update* shard rates — exactly the delayed feedback the
    central refit trains on.

    With an arena (``decisions is None``), the decision slice is read from
    the shared tensor and the array/scalar pieces are written back in
    place; only the count table (or ``None``) crosses the pipe.
    """
    state = _WORKER_STATE[token]
    _fire_fault("shard_worker_respond", shard=int(state["shard_ids"][0]), step=k)
    arena: SharedMemoryArena | None = state["arena"]
    if decisions is None:
        decisions = arena.read_channel_slice("decisions", state["lo"], state["hi"])
    rngs = state["step_rngs"].pop(k)
    actions = np.asarray(
        state["population"].respond(decisions, k, rngs), dtype=float
    ).ravel()
    shard_filter: DefaultRateFilter = state["filter"]
    table: CompressedDesign | None = None
    spec = state["suffstats"]
    if spec is not None:
        features = state["step_features"].pop(k)
        previous_rates = np.asarray(
            shard_filter.observation()["user_default_rates"], dtype=float
        )
        table = CompressedDesign.from_arrays(
            income_code(features[spec["feature"]], spec["income_threshold"]),
            # Same tolerance-and-clip as the serial retrain routes, so
            # pooled and serial runs agree on which rates are acceptable.
            clipped_default_rates(previous_rates),
            actions,
            offered=decisions,
        )
    observation = shard_filter.update(decisions, actions, k)
    tracker = shard_filter.tracker
    if arena is not None:
        lo, hi = state["lo"], state["hi"]
        arena.write_channel("actions", lo, hi, actions)
        arena.write_channel(
            "user_rates",
            lo,
            hi,
            np.asarray(observation["user_default_rates"], dtype=float),
        )
        arena.write_scalars(
            state["worker_index"],
            float(tracker.offers.sum()),
            float(tracker.repayments.sum()),
        )
        return table
    return (
        actions,
        np.asarray(observation["user_default_rates"], dtype=float),
        float(tracker.offers.sum()),
        float(tracker.repayments.sum()),
        table,
    )


def _pool_worker_finalize(token: str) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Collect the worker's final population and filter state."""
    state = _WORKER_STATE.pop(token)
    arena: SharedMemoryArena | None = state["arena"]
    if arena is not None:
        arena.close()  # drop the mapping; the orchestrator owns the unlink
    return (
        state["population"].export_shard_state(),
        state["filter"].export_state(),
    )


def _pool_worker_export(token: str) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Non-destructively export the worker's population and filter state.

    The checkpoint-boundary twin of :func:`_pool_worker_finalize`: the
    orchestrator gathers every worker's state to build a consistent global
    snapshot, and the worker keeps running.
    """
    state = _WORKER_STATE[token]
    return (
        state["population"].export_shard_state(),
        state["filter"].export_state(),
    )


class _ShardWorkerPool:
    """A set of persistent single-process executors, one per worker shard.

    Using one ``max_workers=1`` executor per shard pins each shard's state
    to one OS process across the whole run — the worker functions above
    keep the sliced population, the derived streams and the shard filter in
    module state between the per-step task submissions.

    When built with an ``arena``, the pool *owns* its shared-memory
    segment: every exit route (successful finalize, supervised teardown
    before a rebuild, serial fallback, any raise during construction)
    funnels through :meth:`shutdown`, which destroys the arena exactly
    once — the invariant the chaos suite's ``/dev/shm`` leak oracle pins.
    """

    def __init__(
        self,
        shards: Sequence[PopulationShard],
        base_seed: int,
        prior_rate: float,
        token: str,
        suffstats_spec: Dict[str, object] | None = None,
        filter_states: Sequence[Dict[str, object] | None] | None = None,
        timeout: float | None = None,
        arena: SharedMemoryArena | None = None,
    ) -> None:
        self.shards = list(shards)
        self.token = token
        self.arena = arena
        self._timeout = timeout
        self._executors: List[ProcessPoolExecutor] = []
        if filter_states is None:
            filter_states = [None] * len(self.shards)
        try:
            for shard in self.shards:
                executor = ProcessPoolExecutor(max_workers=1)
                self._executors.append(executor)
            futures = [
                executor.submit(
                    _pool_worker_init,
                    token,
                    {
                        "shard": shard,
                        "base_seed": base_seed,
                        "prior_rate": prior_rate,
                        "suffstats": suffstats_spec,
                        "filter_state": filter_state,
                        "arena": None if arena is None else arena.spec,
                        "worker_index": index,
                    },
                )
                for index, (executor, shard, filter_state) in enumerate(
                    zip(self._executors, self.shards, filter_states)
                )
            ]
            for future in futures:
                future.result()
        except Exception:
            self.shutdown()
            raise

    def _gather(self, futures) -> List[object]:
        """Collect worker futures, unifying death/hang/raise into one signal.

        A shared deadline covers the whole gather (the phases are
        lockstep, so per-future deadlines would just re-count the same
        wall clock); breaching it, losing a worker process, or a raise
        inside a worker all surface as :class:`WorkerPoolFailure`, which
        the supervising orchestrator turns into a retry from its last
        snapshot or a serial degrade.
        """
        deadline = None if self._timeout is None else time.monotonic() + self._timeout
        results: List[object] = []
        for future in futures:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                results.append(future.result(timeout=remaining))
            except FutureTimeoutError as error:
                raise WorkerPoolFailure("a shard worker hung past the timeout", error)
            except BrokenProcessPool as error:
                raise WorkerPoolFailure("a shard worker process died", error)
            except WorkerPoolFailure:
                raise
            except Exception as error:
                raise WorkerPoolFailure("a shard worker raised", error)
        return results

    def map_begin(self, k: int) -> List[Dict[str, np.ndarray] | bool]:
        results = self._gather(
            [
                executor.submit(_pool_worker_begin, self.token, k)
                for executor in self._executors
            ]
        )
        meter = transport_meter()
        if meter is not None and self.arena is None:
            meter.add_pickled(sum(len(pickle.dumps(piece)) for piece in results))
        return results

    def map_respond(self, k: int, decisions: np.ndarray):
        if self.arena is not None:
            # Scatter by shared write: one memcpy of the decision row, read
            # in place by every worker — nothing user-sized hits the pipes.
            self.arena.write_channel(
                "decisions", 0, self.arena.spec.num_users, decisions
            )
            responses = self._gather(
                [
                    executor.submit(_pool_worker_respond, self.token, k, None)
                    for executor in self._executors
                ]
            )
            meter = transport_meter()
            if meter is not None:
                meter.add_shared(self.arena.per_step_bytes())
                meter.note_step()
            return responses
        responses = self._gather(
            [
                executor.submit(
                    _pool_worker_respond,
                    self.token,
                    k,
                    decisions[shard.lo : shard.hi],
                )
                for executor, shard in zip(self._executors, self.shards)
            ]
        )
        meter = transport_meter()
        if meter is not None:
            meter.add_pickled(
                sum(
                    len(pickle.dumps(decisions[shard.lo : shard.hi]))
                    for shard in self.shards
                )
                + sum(len(pickle.dumps(response)) for response in responses)
            )
            meter.note_step()
        return responses

    def export_states(self):
        """Gather every worker's (population, filter) state, workers kept."""
        return self._gather(
            [
                executor.submit(_pool_worker_export, self.token)
                for executor in self._executors
            ]
        )

    def finalize(self):
        return self._gather(
            [
                executor.submit(_pool_worker_finalize, self.token)
                for executor in self._executors
            ]
        )

    def shutdown(self, graceful: bool = False) -> None:
        # Failure routes must not wait on workers that may be hung, so they
        # get the terminate-first teardown; the clean route waits for the
        # (idle) pools to exit fully, otherwise their management threads
        # race the interpreter's own atexit pool cleanup and can spray
        # "Bad file descriptor" tracebacks on exit.
        for executor in self._executors:
            if graceful:
                executor.shutdown(wait=True, cancel_futures=True)
            else:
                kill_executor(executor)
        self._executors = []
        # After the workers are dead their mappings are gone, so the owner's
        # close+unlink here removes the segment from the system on every
        # exit route (success, rebuild, fallback, raise).
        release_resources(self.arena)
        self.arena = None


class ClosedLoop:
    """Wires an AI system, a population, and a filter into the closed loop.

    Parameters
    ----------
    ai_system:
        The decision maker (implements :class:`~repro.core.ai_system.AISystem`).
    population:
        The users (implements :class:`~repro.core.population.Population`).
    loop_filter:
        The aggregation filter (implements
        :class:`~repro.core.filters.LoopFilter`).
    retrain:
        Whether to call the AI system's ``update`` hook each step.  Setting
        this to ``False`` turns the loop into the open-loop baseline where
        the model never adapts to the feedback it creates.
    """

    def __init__(
        self,
        ai_system: AISystem,
        population: Population,
        loop_filter: LoopFilter,
        retrain: bool = True,
    ) -> None:
        self._ai_system = ai_system
        self._population = population
        self._filter = loop_filter
        self._retrain = retrain
        self._plan, self._shard_aware = _resolve_population_plan(population)
        # Base seed of the shard streams; fixed at the first run/step call
        # so chunked runs continue the exact single-run schedule.
        self._stream_base: int | None = None
        # Per-shard seeds derived from the current base (cached: the shard
        # half of the hash chain is base-dependent only, so deriving it per
        # step would hash the same labels every step).
        self._shard_seeds: List[int] | None = None
        self._pool_token_counter = 0

    @property
    def ai_system(self) -> AISystem:
        """Return the AI system."""
        return self._ai_system

    @property
    def population(self) -> Population:
        """Return the population."""
        return self._population

    @property
    def loop_filter(self) -> LoopFilter:
        """Return the filter."""
        return self._filter

    @property
    def shard_plan(self) -> ShardPlan:
        """Return the canonical shard partition the loop executes."""
        return self._plan

    def _resolve_stream_base(self, rng, continuing: bool = False) -> int:
        """Fix (or reuse) the base seed of the shard streams.

        A fresh run resolves the base from ``rng`` every time — an integer
        is the base itself, a generator contributes one draw (advancing
        it, so repeated runs with the same generator stay independent),
        and ``None`` draws from OS entropy.  Only a *continuation*
        (``run`` with a non-empty history, and ``rng=None``) reuses the
        established base, which is what replays the exact single-run
        schedule across chunks.
        """
        if continuing and rng is None and self._stream_base is not None:
            return self._stream_base
        if rng is not None and not isinstance(rng, np.random.Generator):
            self._stream_base = int(rng)
        else:
            source = spawn_generator(rng)
            self._stream_base = int(source.integers(_MAX_SEED))
        self._shard_seeds = None
        return self._stream_base

    def _step_rngs(self, k: int) -> List[np.random.Generator]:
        """Return the per-shard generators of step ``k``."""
        base = self._stream_base
        assert base is not None
        if self._shard_seeds is None:
            self._shard_seeds = [
                shard_seed(base, shard) for shard in range(self._plan.num_shards)
            ]
        return [step_generator(seed, k) for seed in self._shard_seeds]

    def run(
        self,
        num_steps: int,
        rng: int | np.random.Generator | None = None,
        history: SimulationHistory | AggregateHistory | None = None,
        history_mode: str = "full",
        groups: Mapping[object, np.ndarray] | None = None,
        num_shards: int = 1,
        shard_parallel: bool = False,
        retrain_mode: str | None = None,
        checkpoint: CheckpointSpec | None = None,
        supervisor: SupervisorPolicy | None = None,
        shard_transport: str = "shared",
    ) -> SimulationHistory | AggregateHistory:
        """Run the loop for ``num_steps`` steps and return the history.

        Parameters
        ----------
        num_steps:
            Number of passes through the loop.
        rng:
            Base seed (or generator contributing one draw) of the
            per-shard random streams.  Leave it ``None`` when continuing
            an existing history: the loop then reuses the base it started
            with, which replays the exact schedule of an unchunked run.
        history:
            Optional existing history to append to (the loop can be run in
            several chunks, e.g. to inspect intermediate state).  The
            store's type decides the recording mode, so a resumed run keeps
            the mode it started with regardless of ``history_mode``.
        history_mode:
            ``"full"`` (default) records every ``(steps, users)`` column in
            a :class:`~repro.core.history.SimulationHistory`;
            ``"aggregate"`` folds each step into a memory-bounded
            :class:`~repro.core.streaming.AggregateHistory` that keeps only
            group-level series (per-user accessors then raise
            :class:`~repro.core.history.FullHistoryRequiredError`).
        groups:
            Group partition (e.g. ``population.groups``) used by the
            aggregate store; only consulted when a new aggregate history is
            created here.
        num_shards:
            Number of worker processes the canonical shards are grouped
            onto when ``shard_parallel`` is set.  Results are bit-identical
            for every value: the random schedule depends only on the
            canonical shard partition, never on the worker grouping.
        shard_parallel:
            Execute the worker shards on a process pool (one persistent
            process per worker).  Requires a fresh run (no existing
            history), a shard-aware picklable population and a fresh
            :class:`~repro.core.filters.DefaultRateFilter`; anything else
            falls back to the serial path, which is bit-identical.
        retrain_mode:
            Retraining protocol of the *pooled* path: with
            ``"compressed"`` and an AI system speaking the
            sufficient-statistics protocol (``update_from_suffstats`` +
            ``suffstats_spec``, e.g.
            :class:`~repro.core.ai_system.CreditScoringSystem` wrapping a
            ``retrain_mode="compressed"`` lender), each worker compresses
            its shard's training rows into a
            :class:`~repro.scoring.suffstats.CompressedDesign` count table
            and the orchestrator merges them by exact integer addition
            before one tiny O(unique rows) central fit — instead of the
            O(users) central ``update``.  ``None`` (default) and
            ``"compressed"`` engage the protocol exactly when the AI
            system's own ``retrain_mode`` is ``"compressed"`` (it must
            mirror what the system's ``update`` would do, so it cannot be
            forced onto an exact-mode system); ``"exact"`` disables the
            count-table transport, routing the full per-user arrays to the
            central ``update`` hook — which still applies the AI system's
            *own* refit strategy, so a compressed-mode lender compresses
            centrally either way (the knob selects the transport, not the
            algorithm).  The serial path is unaffected for the same
            reason.
        checkpoint:
            Optional :class:`~repro.core.checkpoint.CheckpointSpec`: at
            every ``checkpoint.every``-th step boundary the loop's state
            (history, filter, AI system, population, stream base) is
            written crash-consistently to
            ``checkpoint.directory/checkpoint.stem.stepNNNNNNNN.ckpt``.
            A run restored from such a snapshot
            (:meth:`restore_snapshot`) and continued is bit-identical to
            the uninterrupted run, because the random streams are
            stateless per ``(shard, step)``.
        supervisor:
            Optional :class:`~repro.core.supervision.SupervisorPolicy` for
            the pooled shard path: worker death, hangs (when
            ``supervisor.timeout`` is set) and worker exceptions are
            detected, the pool is rebuilt and the run retried — after an
            exponential backoff — from the last checkpoint boundary (or
            the start), up to ``supervisor.max_retries`` times; past the
            budget the run degrades to the bit-identical serial path with
            a :class:`RuntimeWarning`.  ``None`` applies the default
            policy.
        shard_transport:
            Transport of the pooled path's per-step payloads:
            ``"shared"`` (default) exchanges the feature/decision/action
            arrays through one
            :class:`~repro.core.shardmem.SharedMemoryArena` per pool
            (workers write their shard slices in place, the orchestrator
            reads whole rows — bit-identical values, no per-step
            pickling); ``"pickle"`` keeps the legacy executor messages.
            Populations that don't expose ``feature_channels`` use the
            pickle transport regardless.
        """
        if num_steps < 0:
            raise ValueError("num_steps must be non-negative")
        if history_mode not in ("full", "aggregate"):
            raise ValueError(
                f'history_mode must be "full" or "aggregate", got {history_mode!r}'
            )
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if retrain_mode is not None and retrain_mode not in _RETRAIN_MODES:
            raise ValueError(
                f'retrain_mode must be one of {_RETRAIN_MODES} (or None), '
                f"got {retrain_mode!r}"
            )
        if shard_transport not in _SHARD_TRANSPORTS:
            raise ValueError(
                f"shard_transport must be one of {_SHARD_TRANSPORTS}, "
                f"got {shard_transport!r}"
            )
        continuing = history is not None and history.num_steps > 0
        self._resolve_stream_base(rng, continuing=continuing)
        if history is not None:
            record_book = history
        elif history_mode == "aggregate":
            record_book = AggregateHistory(
                num_users=self._population.num_users, groups=groups
            )
        else:
            record_book = SimulationHistory()
        start = record_book.num_steps
        if (
            shard_parallel
            and num_steps > 0
            and start == 0
            and min(num_shards, self._plan.num_shards) > 1
        ):
            pooled = self._try_run_pooled(
                num_steps,
                record_book,
                num_shards,
                retrain_mode,
                checkpoint=checkpoint,
                supervisor=supervisor,
                shard_transport=shard_transport,
            )
            if pooled is not None:
                return pooled
        return self._run_serial_range(record_book, start, start + num_steps, checkpoint)

    def _run_serial_range(
        self,
        record_book: SimulationHistory | AggregateHistory,
        start: int,
        end: int,
        checkpoint: CheckpointSpec | None,
    ) -> SimulationHistory | AggregateHistory:
        """Advance the loop serially over ``[start, end)``, checkpointing."""
        for k in range(start, end):
            _fire_fault("loop_step", step=k)
            public_features, decisions, actions, observation = self._advance(
                k, self._step_rngs(k)
            )
            record_book.record_step(k, public_features, decisions, actions, observation)
            if checkpoint is not None and checkpoint.due(record_book.num_steps):
                checkpoint.write(self.export_snapshot(record_book))
        return record_book

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    def export_snapshot(
        self, history: SimulationHistory | AggregateHistory
    ) -> Dict[str, object]:
        """Return a step-boundary snapshot payload of this run.

        The payload captures everything a fresh loop of the same
        configuration needs to continue bit-identically: the recorded
        history, the filter state, the AI system's learning state, the
        population's mutable state, and the base seed of the stateless
        random streams.  Components exposing ``export_state`` /
        ``import_state`` (and populations exposing the shard-state hooks)
        are captured structurally; anything else is embedded as the whole
        object, which pickles with the payload.

        The returned dict aliases live state — serialize it
        (:func:`~repro.core.checkpoint.serialize_payload` or
        :meth:`~repro.core.checkpoint.CheckpointSpec.write`) before
        advancing the loop further.
        """
        if self._stream_base is None:
            raise ValueError("no run in progress: the stream base is unset")

        def _component(obj, export: str, import_: str) -> Dict[str, object]:
            if hasattr(obj, export) and hasattr(obj, import_):
                return {"kind": "state", "state": getattr(obj, export)()}
            return {"kind": "object", "object": obj}

        return {
            "step": int(history.num_steps),
            "num_users": int(self._population.num_users),
            "stream_base": int(self._stream_base),
            "history": history,
            "filter": _component(self._filter, "export_state", "import_state"),
            "ai_system": _component(self._ai_system, "export_state", "import_state"),
            "population": _component(
                self._population, "export_shard_state", "import_shard_state"
            ),
        }

    def restore_snapshot(
        self, payload: Mapping[str, object]
    ) -> SimulationHistory | AggregateHistory:
        """Restore loop state from an :meth:`export_snapshot` payload.

        Returns the restored history; pass it back to :meth:`run` as
        ``history=`` (with ``rng=None``) and the continuation replays the
        uninterrupted run's schedule exactly.  The loop must be built with
        the same configuration that wrote the snapshot — the checkpoint
        layer's fingerprint guards that contract at the file level, and a
        population-size mismatch is rejected here as a second line of
        defence.
        """
        if int(payload["num_users"]) != self._population.num_users:
            raise CheckpointError(
                f"snapshot was taken with {payload['num_users']} users but this "
                f"loop has {self._population.num_users}; resume with the "
                "configuration that wrote the checkpoint"
            )
        population_payload = payload["population"]
        if population_payload["kind"] == "state":
            self._population.import_shard_state(0, population_payload["state"])
        else:
            self._population = population_payload["object"]
            self._plan, self._shard_aware = _resolve_population_plan(self._population)
        filter_payload = payload["filter"]
        if filter_payload["kind"] == "state":
            self._filter.import_state(filter_payload["state"])
        else:
            self._filter = filter_payload["object"]
        ai_payload = payload["ai_system"]
        if ai_payload["kind"] == "state":
            self._ai_system.import_state(ai_payload["state"])
        else:
            self._ai_system = ai_payload["object"]
        self._stream_base = int(payload["stream_base"])
        self._shard_seeds = None
        history = payload["history"]
        if history.num_steps != int(payload["step"]):
            raise CheckpointError(
                f"snapshot is inconsistent: history holds {history.num_steps} "
                f"steps but the payload claims {payload['step']}"
            )
        return history

    def step(self, k: int, rng: int | np.random.Generator | None = None) -> StepRecord:
        """Execute one pass through the loop at time ``k``.

        The base of the shard streams is resolved from ``rng`` for this
        call only (``None`` draws fresh entropy), without touching the base
        an earlier :meth:`run` established — a diagnostic ``step`` between
        chunked runs therefore cannot perturb the continuation's schedule.
        """
        if rng is not None and not isinstance(rng, np.random.Generator):
            base = int(rng)
        else:
            base = int(spawn_generator(rng).integers(_MAX_SEED))
        rngs = [
            shard_step_generator(base, shard, k)
            for shard in range(self._plan.num_shards)
        ]
        public_features, decisions, actions, observation = self._advance(k, rngs)
        return StepRecord(
            step=k,
            public_features={
                name: np.asarray(value, dtype=float).copy()
                for name, value in public_features.items()
            },
            decisions=decisions.copy(),
            actions=actions.copy(),
            observation={
                name: (
                    np.asarray(value, dtype=float).copy()
                    if np.ndim(value) > 0
                    else float(value)
                )
                for name, value in observation.items()
            },
        )

    def _advance(self, k: int, rngs: List[np.random.Generator]):
        """Run one pass through the loop and return its raw pieces.

        ``rngs`` holds one generator per canonical shard; a shard-aware
        population consumes the whole list (advancing each shard on its own
        stream), a legacy population gets the single shard-0 generator.
        Returns ``(public_features, decisions, actions, observation_after)``
        without any defensive copying — the caller either hands them to the
        history's columnar ingest (which copies into its own buffers) or
        wraps them in a :class:`StepRecord` with explicit copies.
        """
        population_rng = rngs if self._shard_aware else rngs[0]
        public_features = self._population.begin_step(k, population_rng)
        observation_before = self._filter.observation()
        decisions = np.asarray(
            self._ai_system.decide(public_features, observation_before, k), dtype=float
        ).ravel()
        if decisions.shape[0] != self._population.num_users:
            raise ValueError(
                "the AI system must return one decision per user "
                f"({decisions.shape[0]} != {self._population.num_users})"
            )
        actions = np.asarray(
            self._population.respond(decisions, k, population_rng), dtype=float
        ).ravel()
        if actions.shape[0] != self._population.num_users:
            raise ValueError("the population must return one action per user")
        if self._retrain:
            self._ai_system.update(
                public_features, decisions, actions, observation_before, k
            )
        observation_after = self._filter.update(decisions, actions, k)
        return public_features, decisions, actions, observation_after

    # ------------------------------------------------------------------
    # Process-pool shard execution
    # ------------------------------------------------------------------

    def _pool_eligible(self) -> bool:
        """Return whether this loop can run its shards on worker processes."""
        population = self._population
        if not self._shard_aware:
            return False
        if not all(
            hasattr(population, name)
            for name in ("shard_slice", "export_shard_state", "import_shard_state")
        ):
            return False
        loop_filter = self._filter
        # Exact type, not isinstance: pooled workers instantiate the plain
        # DefaultRateFilter and the orchestrator reassembles its two
        # observation keys, so a subclass overriding observation()/update()
        # would silently lose its behavior in the pool — send it down the
        # bit-identical serial path instead.
        if type(loop_filter) is not DefaultRateFilter:
            return False
        tracker = loop_filter.tracker
        if tracker.steps_recorded != 0 or tracker.num_users != population.num_users:
            return False
        return True

    @staticmethod
    def _warn_serial_fallback(reason: str, error: Exception) -> None:
        """Surface a pooled-path fallback instead of degrading silently.

        The fallback is always *correct* (the serial path is bit-identical),
        so it must not raise — but a pool that can never start (pickling
        regression, fork failure, daemonic parent) would otherwise cost the
        caller their speedup with zero diagnostic.
        """
        warnings.warn(
            f"shard_parallel fell back to the serial path: {reason} ({error!r})",
            RuntimeWarning,
            stacklevel=4,
        )

    def _resolve_suffstats_spec(
        self, retrain_mode: str | None
    ) -> Dict[str, object] | None:
        """Return the worker-side compression recipe, or ``None`` for exact.

        Sufficient-statistics retraining is used when the resolved mode is
        ``"compressed"`` (explicitly, or auto-detected from the AI system's
        ``retrain_mode`` attribute), retraining is on, and the AI system
        implements the protocol.  Everything else keeps the row-level
        central ``update`` — which is always correct, just O(users).
        """
        if not self._retrain:
            return None
        if retrain_mode == "exact":
            return None  # explicit opt-out of the suffstats protocol
        if getattr(self._ai_system, "retrain_mode", "exact") != "compressed":
            # The protocol must mirror what the AI system's own `update`
            # would do, or the pooled and serial paths would diverge — so
            # it cannot be forced onto an exact-mode system.
            return None
        if not hasattr(self._ai_system, "update_from_suffstats"):
            return None
        spec = getattr(self._ai_system, "suffstats_spec", None)
        if not isinstance(spec, dict) or not (
            "feature" in spec and "income_threshold" in spec
        ):
            # An incomplete recipe would only surface as a KeyError inside
            # a worker process mid-trial; reject it here so the run takes
            # the row-level central update instead.
            return None
        return spec

    def _build_arena(
        self, shard_transport: str, num_workers: int
    ) -> SharedMemoryArena | None:
        """Allocate the pool's shared arena, or ``None`` for pickling.

        Requires the population to declare its public-feature channel
        names (``feature_channels``); populations without the hook — e.g.
        hand-written test doubles — keep the pickle transport, which is
        bit-identical.  An allocation failure (no ``/dev/shm``, exhausted
        segment quota) also degrades to pickling, with a warning.
        """
        if shard_transport != "shared":
            return None
        channels = getattr(self._population, "feature_channels", None)
        if channels is None:
            return None
        try:
            return SharedMemoryArena.create(
                tuple(channels), self._population.num_users, num_workers
            )
        except Exception as error:
            warnings.warn(
                "shared-memory arena allocation failed; the pooled path is "
                f"using the pickle transport instead ({error!r})",
                RuntimeWarning,
                stacklevel=4,
            )
            return None

    def _start_pool(
        self,
        shards: Sequence[PopulationShard],
        prior_rate: float,
        suffstats_spec: Dict[str, object] | None,
        policy: SupervisorPolicy,
        shard_transport: str = "shared",
    ) -> _ShardWorkerPool:
        """Start a worker pool seeded with the filter's *current* state.

        Slicing the live tracker state per shard makes the same call serve
        both a fresh start (all-zero counts, identical to plain worker
        construction) and a supervised restart from a mid-run snapshot
        (each rebuilt worker resumes its shard's exact integer counts).
        Every call allocates a fresh arena (when the transport is shared),
        so a supervised rebuild never reuses a segment a dying worker
        might still be writing.
        """
        state = self._filter.export_state()
        filter_states = [
            _slice_tracker_state(state, shard.lo, shard.hi) for shard in shards
        ]
        self._pool_token_counter += 1
        token = f"closedloop-{id(self):x}-{self._pool_token_counter}"
        arena = self._build_arena(shard_transport, len(shards))
        return _ShardWorkerPool(
            shards,
            self._stream_base,
            prior_rate,
            token,
            suffstats_spec,
            filter_states=filter_states,
            timeout=policy.timeout,
            arena=arena,
        )

    def _try_run_pooled(
        self,
        num_steps: int,
        record_book: SimulationHistory | AggregateHistory,
        num_shards: int,
        retrain_mode: str | None = None,
        checkpoint: CheckpointSpec | None = None,
        supervisor: SupervisorPolicy | None = None,
        shard_transport: str = "shared",
    ) -> SimulationHistory | AggregateHistory | None:
        """Run the shards on supervised worker processes.

        Returns ``None`` for the pre-start serial fallback: ineligible
        population/filter combinations, unpicklable shard payloads and
        worker start-up failures (e.g. a daemonic parent process that may
        not fork children) all land back on the serial path before
        anything is recorded, emitting PR 3's :class:`RuntimeWarning`.

        Once the pool is running, failures are *supervised* instead: a
        worker death (``BrokenProcessPool``), hang (future past
        ``supervisor.timeout``) or raise rolls the loop back to its last
        consistent snapshot — the start of the run, or the last checkpoint
        boundary — tears the pool down, backs off exponentially, rebuilds
        the pool with each worker's filter slice restored, and replays.
        The stateless per-(shard, step) streams make the replay
        bit-identical.  When the retry budget is exhausted the run
        degrades to the serial path *from the snapshot* (also
        bit-identical), again with a structured warning — a crashed worker
        can slow an experiment down, but it can no longer change or kill
        it.
        """
        if not self._pool_eligible():
            return None
        policy = supervisor or SupervisorPolicy()
        prior_rate = self._filter.tracker.prior_rate
        try:
            shards = shard_population(self._population, num_shards)
        except Exception as error:
            self._warn_serial_fallback("slicing the population failed", error)
            return None
        # No pickle pre-probe: an unpicklable shard payload surfaces as an
        # exception from the init futures inside _ShardWorkerPool, which
        # the except below already turns into the serial fallback —
        # probing would serialize every population slice a second time.
        suffstats_spec = self._resolve_suffstats_spec(retrain_mode)
        try:
            pool = self._start_pool(
                shards, prior_rate, suffstats_spec, policy, shard_transport
            )
        except Exception as error:
            self._warn_serial_fallback("starting the worker pool failed", error)
            return None
        # The supervisor's rollback target: a serialized snapshot of the
        # whole run state, refreshed at every checkpoint boundary.
        # Serializing (not aliasing) is what makes it immune to the
        # in-place mutation of the history and filter as steps execute.
        snapshot_ref = [serialize_payload(self.export_snapshot(record_book))]
        attempt = 0
        while True:
            try:
                return self._run_pooled_steps(
                    pool,
                    num_steps,
                    record_book,
                    shards,
                    prior_rate,
                    suffstats_spec,
                    checkpoint,
                    snapshot_ref,
                )
            except WorkerPoolFailure as failure:
                pool.shutdown()
                record_book = self.restore_snapshot(
                    deserialize_payload(snapshot_ref[0])
                )
                start = record_book.num_steps
                attempt += 1
                error = failure.cause if failure.cause is not None else failure
                if attempt <= policy.max_retries:
                    warnings.warn(
                        f"shard worker pool failure ({failure.reason}: {error!r}); "
                        f"rebuilding the pool and retrying from step {start} "
                        f"(attempt {attempt}/{policy.max_retries})",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    policy.sleep_before_retry(attempt)
                    try:
                        shards = shard_population(self._population, num_shards)
                        pool = self._start_pool(
                            shards, prior_rate, suffstats_spec, policy, shard_transport
                        )
                        continue
                    except Exception as rebuild_error:
                        error = rebuild_error
                self._warn_serial_fallback(
                    "the shard worker pool failed mid-run and the retry budget "
                    f"is exhausted; continuing serially from step {start}",
                    error,
                )
                return self._run_serial_range(
                    record_book, start, num_steps, checkpoint
                )

    def _run_pooled_steps(
        self,
        pool: _ShardWorkerPool,
        num_steps: int,
        record_book: SimulationHistory | AggregateHistory,
        shards: Sequence[PopulationShard],
        prior_rate: float,
        suffstats_spec: Dict[str, object] | None,
        checkpoint: CheckpointSpec | None,
        snapshot_ref: List[bytes],
    ) -> SimulationHistory | AggregateHistory:
        """One supervised attempt at the pooled step loop.

        Raises :class:`WorkerPoolFailure` on any worker death/hang/raise;
        the caller owns rollback and retry.  Starts from
        ``record_book.num_steps``, so a post-rollback attempt resumes at
        the snapshot's boundary.
        """
        try:
            observation_before = self._filter.observation()
            arena = pool.arena
            for k in range(record_book.num_steps, num_steps):
                feature_slices = pool.map_begin(k)
                if arena is not None:
                    # The workers wrote their slices in place; one copy per
                    # channel row replaces the pickled concatenation —
                    # same float64 values in the same user order.
                    public_features = {
                        name: arena.read_channel(name)
                        for name in arena.feature_channels
                    }
                else:
                    public_features = _concatenate_features(feature_slices)
                decisions = np.asarray(
                    self._ai_system.decide(public_features, observation_before, k),
                    dtype=float,
                ).ravel()
                if decisions.shape[0] != self._population.num_users:
                    raise ValueError(
                        "the AI system must return one decision per user "
                        f"({decisions.shape[0]} != {self._population.num_users})"
                    )
                responses = pool.map_respond(k, decisions)
                if arena is not None:
                    actions = arena.read_channel("actions")
                    user_rates = arena.read_channel("user_rates")
                    offers_total, repayments_total = arena.scalar_totals()
                    tables = responses
                else:
                    actions = np.concatenate([response[0] for response in responses])
                    user_rates = np.concatenate(
                        [response[1] for response in responses]
                    )
                    offers_total = sum(response[2] for response in responses)
                    repayments_total = sum(response[3] for response in responses)
                    tables = [response[4] for response in responses]
                if self._retrain:
                    if suffstats_spec is not None:
                        # Shard count tables merge by exact integer
                        # addition into the whole-population table, so the
                        # central refit touches only O(unique rows).
                        self._ai_system.update_from_suffstats(
                            merge_tables(tables), k
                        )
                    else:
                        self._ai_system.update(
                            public_features, decisions, actions, observation_before, k
                        )
                # Exactly DefaultRateTracker.portfolio_rate on the pooled
                # integer counts; the per-user rates concatenate exactly.
                observation_after = {
                    "user_default_rates": user_rates,
                    "portfolio_rate": (
                        prior_rate
                        if offers_total == 0
                        else float(1.0 - repayments_total / offers_total)
                    ),
                }
                record_book.record_step(
                    k, public_features, decisions, actions, observation_after
                )
                observation_before = observation_after
                if checkpoint is not None and checkpoint.due(record_book.num_steps):
                    # Fold the workers' live state into the orchestrator so
                    # the snapshot is globally consistent, persist it, and
                    # advance the supervisor's rollback target to this
                    # boundary.
                    self._fold_worker_states(pool, shards)
                    payload = self.export_snapshot(record_book)
                    snapshot_ref[0] = serialize_payload(payload)
                    checkpoint.write(payload)
            final_states = pool.finalize()
        except WorkerPoolFailure:
            raise  # the pool is the caller's to tear down and rebuild
        except BaseException:
            pool.shutdown()
            raise
        self._merge_worker_states(final_states, shards)
        pool.shutdown(graceful=True)
        return record_book

    def _fold_worker_states(
        self, pool: _ShardWorkerPool, shards: Sequence[PopulationShard]
    ) -> None:
        """Pull every worker's state into the orchestrator (workers kept)."""
        self._merge_worker_states(pool.export_states(), shards)

    def _merge_worker_states(self, states, shards: Sequence[PopulationShard]) -> None:
        """Fold per-shard (population, filter) states into the loop's own."""
        merged_filter: DefaultRateFilter | None = None
        for shard, (population_state, filter_state) in zip(shards, states):
            worker_filter = DefaultRateFilter.from_state(filter_state)
            merged_filter = (
                worker_filter
                if merged_filter is None
                else merged_filter.merge(worker_filter)
            )
            self._population.import_shard_state(shard.lo, population_state)
        if merged_filter is not None:
            self._filter.import_state(merged_filter.export_state())


def _slice_tracker_state(
    state: Dict[str, object], lo: int, hi: int
) -> Dict[str, object]:
    """Return rows ``[lo, hi)`` of an exported default-rate tracker state.

    The tracker state is row-independent integer counts, so a shard's slice
    of the global state is exactly the state the shard's own filter would
    hold — which is what lets a rebuilt worker pool resume mid-run from the
    orchestrator's snapshot.
    """
    return {
        "num_users": hi - lo,
        "prior_rate": state["prior_rate"],
        "offers": np.asarray(state["offers"])[lo:hi].copy(),
        "repayments": np.asarray(state["repayments"])[lo:hi].copy(),
        "steps_recorded": state["steps_recorded"],
    }


def _concatenate_features(
    feature_slices: Sequence[Dict[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Concatenate per-worker feature dicts into whole-population arrays."""
    if not feature_slices or not feature_slices[0]:
        return {}
    keys = list(feature_slices[0])
    return {
        key: np.concatenate(
            [np.asarray(piece[key], dtype=float) for piece in feature_slices]
        )
        for key in keys
    }
