"""The closed-loop orchestrator (Figure 1 of the paper).

One pass through the loop at time ``k``:

1. the population reveals its public features (e.g. this year's incomes);
2. the AI system decides ``pi(k)`` from those features and the *previous*
   filtered observation;
3. the users respond stochastically with actions ``y_i(k)``;
4. the AI system is retrained on the delayed feedback — the features and
   observation that were available when it decided, paired with the actions
   it has just provoked (this is the paper's "delay" box);
5. the filter folds the new actions into the aggregate observation used at
   the next step.

:class:`ClosedLoop` implements exactly that ordering and records every step
in a :class:`~repro.core.history.SimulationHistory`.  ``run`` writes each
step's rows straight into the history's preallocated columnar storage
(:meth:`~repro.core.history.SimulationHistory.record_step`) — no per-step
dict deep copies — while ``step`` keeps the original record-returning
interface for callers that drive the loop one step at a time.

``run`` also accepts ``history_mode="aggregate"``: the trajectory is then
folded into a memory-bounded
:class:`~repro.core.streaming.AggregateHistory` (group-level series only,
``O(users)`` state instead of ``(steps, users)`` matrices), which is what
million-user trials use.  Recording is passive — the loop's dynamics and
random streams are identical in both modes, so every aggregate series is
bit-identical to its full-history counterpart.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.ai_system import AISystem
from repro.core.filters import LoopFilter
from repro.core.history import SimulationHistory, StepRecord
from repro.core.population import Population
from repro.core.streaming import AggregateHistory
from repro.utils.rng import spawn_generator

__all__ = ["ClosedLoop"]


class ClosedLoop:
    """Wires an AI system, a population, and a filter into the closed loop.

    Parameters
    ----------
    ai_system:
        The decision maker (implements :class:`~repro.core.ai_system.AISystem`).
    population:
        The users (implements :class:`~repro.core.population.Population`).
    loop_filter:
        The aggregation filter (implements
        :class:`~repro.core.filters.LoopFilter`).
    retrain:
        Whether to call the AI system's ``update`` hook each step.  Setting
        this to ``False`` turns the loop into the open-loop baseline where
        the model never adapts to the feedback it creates.
    """

    def __init__(
        self,
        ai_system: AISystem,
        population: Population,
        loop_filter: LoopFilter,
        retrain: bool = True,
    ) -> None:
        self._ai_system = ai_system
        self._population = population
        self._filter = loop_filter
        self._retrain = retrain

    @property
    def ai_system(self) -> AISystem:
        """Return the AI system."""
        return self._ai_system

    @property
    def population(self) -> Population:
        """Return the population."""
        return self._population

    @property
    def loop_filter(self) -> LoopFilter:
        """Return the filter."""
        return self._filter

    def run(
        self,
        num_steps: int,
        rng: int | np.random.Generator | None = None,
        history: SimulationHistory | AggregateHistory | None = None,
        history_mode: str = "full",
        groups: Mapping[object, np.ndarray] | None = None,
    ) -> SimulationHistory | AggregateHistory:
        """Run the loop for ``num_steps`` steps and return the history.

        Parameters
        ----------
        num_steps:
            Number of passes through the loop.
        rng:
            Seed or generator driving all stochastic components.
        history:
            Optional existing history to append to (the loop can be run in
            several chunks, e.g. to inspect intermediate state).  The
            store's type decides the recording mode, so a resumed run keeps
            the mode it started with regardless of ``history_mode``.
        history_mode:
            ``"full"`` (default) records every ``(steps, users)`` column in
            a :class:`~repro.core.history.SimulationHistory`;
            ``"aggregate"`` folds each step into a memory-bounded
            :class:`~repro.core.streaming.AggregateHistory` that keeps only
            group-level series (per-user accessors then raise
            :class:`~repro.core.history.FullHistoryRequiredError`).
        groups:
            Group partition (e.g. ``population.groups``) used by the
            aggregate store; only consulted when a new aggregate history is
            created here.
        """
        if num_steps < 0:
            raise ValueError("num_steps must be non-negative")
        if history_mode not in ("full", "aggregate"):
            raise ValueError(
                f'history_mode must be "full" or "aggregate", got {history_mode!r}'
            )
        generator = spawn_generator(rng)
        if history is not None:
            record_book = history
        elif history_mode == "aggregate":
            record_book = AggregateHistory(
                num_users=self._population.num_users, groups=groups
            )
        else:
            record_book = SimulationHistory()
        start = record_book.num_steps
        for k in range(start, start + num_steps):
            public_features, decisions, actions, observation = self._advance(k, generator)
            record_book.record_step(k, public_features, decisions, actions, observation)
        return record_book

    def step(self, k: int, rng: int | np.random.Generator | None = None) -> StepRecord:
        """Execute one pass through the loop at time ``k``."""
        generator = spawn_generator(rng)
        public_features, decisions, actions, observation = self._advance(k, generator)
        return StepRecord(
            step=k,
            public_features={
                name: np.asarray(value, dtype=float).copy()
                for name, value in public_features.items()
            },
            decisions=decisions.copy(),
            actions=actions.copy(),
            observation={
                name: (
                    np.asarray(value, dtype=float).copy()
                    if np.ndim(value) > 0
                    else float(value)
                )
                for name, value in observation.items()
            },
        )

    def _advance(self, k: int, generator: np.random.Generator):
        """Run one pass through the loop and return its raw pieces.

        Returns ``(public_features, decisions, actions, observation_after)``
        without any defensive copying — the caller either hands them to the
        history's columnar ingest (which copies into its own buffers) or
        wraps them in a :class:`StepRecord` with explicit copies.
        """
        public_features = self._population.begin_step(k, generator)
        observation_before = self._filter.observation()
        decisions = np.asarray(
            self._ai_system.decide(public_features, observation_before, k), dtype=float
        ).ravel()
        if decisions.shape[0] != self._population.num_users:
            raise ValueError(
                "the AI system must return one decision per user "
                f"({decisions.shape[0]} != {self._population.num_users})"
            )
        actions = np.asarray(
            self._population.respond(decisions, k, generator), dtype=float
        ).ravel()
        if actions.shape[0] != self._population.num_users:
            raise ValueError("the population must return one action per user")
        if self._retrain:
            self._ai_system.update(
                public_features, decisions, actions, observation_before, k
            )
        observation_after = self._filter.update(decisions, actions, k)
        return public_features, decisions, actions, observation_after
