"""Crash-consistent checkpointing of closed-loop runs.

A checkpoint is a self-verifying file: an 8-byte magic, a format version, the
payload length, a SHA-256 digest of the payload, then the pickled payload
itself.  :func:`write_checkpoint` lands it crash-consistently — write to a
temp file in the destination directory, flush, ``fsync``, then an atomic
``os.replace`` (plus a directory fsync so the rename itself is durable) — so
readers only ever see either the previous complete checkpoint or the new
complete checkpoint, never a torn one.  A write that *does* tear (power
loss mid-rename on a non-atomic filesystem, or the chaos suite's
``torn_write`` fault) fails the digest check and is skipped by
:func:`load_latest_checkpoint`, which falls back to the next-newest intact
file — that is why :class:`CheckpointSpec` keeps the last ``keep`` files
instead of one.

Because the engine's random streams are stateless per ``(trial, shard,
step)`` (:mod:`repro.utils.rng`), a run restored from a step-boundary
snapshot and continued replays the *exact* byte-for-byte trajectory of the
uninterrupted run; the fault-tolerance suite pins this against the engine
goldens.

A payload is whatever :meth:`repro.core.loop.ClosedLoop.export_snapshot`
produced, plus a ``fingerprint`` identifying the configuration that wrote
it: :func:`load_latest_checkpoint` refuses (with an actionable error) to
resume a run whose fingerprint differs — resuming step 7 of somebody
else's simulation would silently produce garbage.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import struct
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Tuple

from repro.testing.faults import fire as _fire_fault

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointSpec",
    "checkpoint_path",
    "config_fingerprint",
    "deserialize_payload",
    "list_checkpoints",
    "load_latest_checkpoint",
    "prune_checkpoints",
    "read_checkpoint",
    "serialize_payload",
    "write_checkpoint",
]

#: Bump on any incompatible payload-layout change; readers refuse newer
#: versions with a clear error instead of unpickling garbage.
CHECKPOINT_VERSION = 1

_MAGIC = b"RPROCKPT"
#: magic(8) | version(u16) | payload length(u64) | sha256(32), big-endian.
_HEADER = struct.Struct(">8sHQ32s")

_STEP_FILE = re.compile(r"\.step(\d{8})\.ckpt$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be read, verified, or matched to its run."""


def serialize_payload(payload: Mapping[str, object]) -> bytes:
    """Return the self-verifying on-disk byte representation of ``payload``."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(
        _MAGIC, CHECKPOINT_VERSION, len(blob), hashlib.sha256(blob).digest()
    )
    return header + blob


def deserialize_payload(data: bytes) -> Dict[str, object]:
    """Decode and verify checkpoint bytes; raise :class:`CheckpointError`."""
    if len(data) < _HEADER.size:
        raise CheckpointError(
            f"truncated checkpoint: {len(data)} bytes is shorter than the header"
        )
    magic, version, length, digest = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise CheckpointError("not a checkpoint file (bad magic)")
    if version > CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint format v{version} is newer than this build's "
            f"v{CHECKPOINT_VERSION}; upgrade before resuming"
        )
    blob = data[_HEADER.size :]
    if len(blob) != length:
        raise CheckpointError(
            f"torn checkpoint: payload holds {len(blob)} of {length} bytes"
        )
    if hashlib.sha256(blob).digest() != digest:
        raise CheckpointError("corrupt checkpoint: payload digest mismatch")
    return pickle.loads(blob)


def write_checkpoint(path: str | os.PathLike, payload: Mapping[str, object]) -> Path:
    """Write ``payload`` to ``path`` crash-consistently and return the path.

    Temp file in the destination directory + flush + fsync + atomic
    ``os.replace`` + directory fsync: a crash at any instant leaves either
    no file or a complete, digest-verified file at ``path``.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    data = serialize_payload(payload)
    temp = destination.with_name(f"{destination.name}.tmp.{os.getpid()}")
    try:
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, destination)
    except BaseException:
        temp.unlink(missing_ok=True)
        raise
    _fsync_directory(destination.parent)
    # Chaos-suite hook: a torn_write fault truncates the landed file here,
    # simulating the non-atomic-filesystem tear the digest check exists for.
    _fire_fault("checkpoint_write", path=str(destination))
    return destination


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


def read_checkpoint(path: str | os.PathLike) -> Dict[str, object]:
    """Read and verify one checkpoint file."""
    try:
        data = Path(path).read_bytes()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    return deserialize_payload(data)


def checkpoint_path(directory: str | os.PathLike, stem: str, step: int) -> Path:
    """Return the canonical file path of ``stem``'s step-``step`` snapshot."""
    return Path(directory) / f"{stem}.step{int(step):08d}.ckpt"


def list_checkpoints(
    directory: str | os.PathLike, stem: str
) -> List[Tuple[int, Path]]:
    """Return ``(step, path)`` of ``stem``'s snapshots, newest first."""
    base = Path(directory)
    if not base.is_dir():
        return []
    found: List[Tuple[int, Path]] = []
    prefix = f"{stem}.step"
    for entry in base.iterdir():
        if not entry.name.startswith(prefix):
            continue
        match = _STEP_FILE.search(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    found.sort(key=lambda item: item[0], reverse=True)
    return found


def load_latest_checkpoint(
    directory: str | os.PathLike,
    stem: str,
    expected_fingerprint: str | None = None,
) -> Dict[str, object] | None:
    """Return the newest intact snapshot payload of ``stem``, or ``None``.

    Corrupt or torn files are skipped with a :class:`RuntimeWarning`
    (recovery falls back to the next-newest intact checkpoint — this is
    the torn-write story end to end).  A fingerprint mismatch raises
    :class:`CheckpointError` instead: the files exist and are intact, they
    just belong to a different configuration, and silently restarting from
    scratch would mask the operator error.
    """
    for step, path in list_checkpoints(directory, stem):
        try:
            payload = read_checkpoint(path)
        except CheckpointError as error:
            warnings.warn(
                f"skipping unreadable checkpoint {path.name}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        if expected_fingerprint is not None:
            found = payload.get("fingerprint")
            if found != expected_fingerprint:
                raise CheckpointError(
                    f"checkpoint {path.name} was written by a different "
                    f"configuration (fingerprint {found!r} != expected "
                    f"{expected_fingerprint!r}); point --checkpoint-dir at a "
                    "fresh directory, or rerun with the original configuration"
                )
        return payload
    return None


def prune_checkpoints(
    directory: str | os.PathLike, stem: str, keep: int = 2
) -> None:
    """Delete all but the ``keep`` newest snapshots of ``stem``.

    ``keep >= 2`` is the torn-write safety margin: if the newest file is
    later found damaged, recovery falls back one boundary instead of to
    scratch.  ``keep=0`` removes every snapshot (used once a trial's final
    result has been persisted).  Deletion failures are ignored — pruning
    is an economy, never a correctness requirement.
    """
    for _, path in list_checkpoints(directory, stem)[max(0, keep):]:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - concurrent prune / permissions
            pass


def config_fingerprint(*parts: object) -> str:
    """Return a stable hex fingerprint of the run-defining parameters.

    Built from ``repr`` of each part, so any picklable parameter mix
    works; the caller chooses which knobs define trajectory identity
    (seeds, population shape, model knobs — not execution layout, which is
    bit-identical by construction).
    """
    payload = "\x1f".join(repr(part) for part in parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


@dataclass(frozen=True)
class CheckpointSpec:
    """Where, how often, and under what identity a run checkpoints.

    ``due(steps_recorded)`` is true at every ``every``-th step boundary;
    :meth:`write` stamps the payload with the spec's fingerprint, lands it
    crash-consistently under the step-numbered name, and prunes old
    snapshots down to ``keep``.
    """

    directory: str
    stem: str
    every: int
    fingerprint: str | None = None
    keep: int = 2

    def __post_init__(self) -> None:
        if self.every <= 0:
            raise ValueError("checkpoint_every must be positive on a CheckpointSpec")
        if self.keep < 1:
            raise ValueError("keep must be at least 1")
        if not self.stem:
            raise ValueError("stem must be non-empty")

    def due(self, steps_recorded: int) -> bool:
        """Return whether a snapshot is due after ``steps_recorded`` steps."""
        return steps_recorded > 0 and steps_recorded % self.every == 0

    def write(self, payload: Mapping[str, object]) -> Path:
        """Persist one snapshot payload (must carry a ``"step"`` entry)."""
        stamped = dict(payload)
        stamped["fingerprint"] = self.fingerprint
        path = write_checkpoint(
            checkpoint_path(self.directory, self.stem, int(stamped["step"])), stamped
        )
        prune_checkpoints(self.directory, self.stem, keep=self.keep)
        return path

    def load_latest(self) -> Dict[str, object] | None:
        """Return the newest intact snapshot matching this spec, or ``None``."""
        return load_latest_checkpoint(
            self.directory, self.stem, expected_fingerprint=self.fingerprint
        )
