"""Incremental input-to-state stability (delta-ISS) utilities.

The appendix of the paper recalls Angeli's notion of incremental ISS: a
discrete-time system ``x(k+1) = F(x(k), u(k))`` is incrementally ISS when
any two solutions approach each other up to a class-K function of the input
difference, with the transient bounded by a class-KL function of the initial
gap.  For the paper this is the route by which internal stability of the
controller and filter implies the contractivity needed for ergodicity.

This module offers numerical checks: predicates for class-K / class-KL
candidates evaluated on grids, an estimator of the contraction rate of a
given ``F``, and a sampled incremental-ISS diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.utils.rng import spawn_generator

__all__ = [
    "is_class_k",
    "is_class_kl",
    "estimate_contraction_rate",
    "incremental_iss_diagnostic",
    "IncrementalISSDiagnostic",
]


def is_class_k(
    gamma: Callable[[float], float],
    grid: Sequence[float] | None = None,
    *,
    atol: float = 1e-12,
) -> bool:
    """Check numerically that ``gamma`` behaves like a class-K function.

    A class-K function is continuous, strictly increasing, and zero at zero.
    The check evaluates ``gamma`` on ``grid`` (default: 100 points spanning
    ``[0, 10]``), requiring ``gamma(0) == 0``, non-negativity, and strict
    monotonicity between consecutive grid points.
    """
    points = np.asarray(
        grid if grid is not None else np.linspace(0.0, 10.0, 101), dtype=float
    )
    if points.size < 2 or points[0] != 0.0:
        raise ValueError("grid must start at 0 and contain at least two points")
    values = np.array([float(gamma(point)) for point in points])
    if abs(values[0]) > atol:
        return False
    if np.any(values < -atol):
        return False
    return bool(np.all(np.diff(values) > atol))


def is_class_kl(
    beta: Callable[[float, float], float],
    s_grid: Sequence[float] | None = None,
    t_grid: Sequence[float] | None = None,
    *,
    decay_tolerance: float = 1e-3,
) -> bool:
    """Check numerically that ``beta`` behaves like a class-KL function.

    For each fixed ``t`` the map ``s -> beta(s, t)`` must be class K, and for
    each fixed ``s`` the map ``t -> beta(s, t)`` must be non-increasing and
    decay towards zero (below ``decay_tolerance`` at the last grid time).
    """
    s_points = np.asarray(
        s_grid if s_grid is not None else np.linspace(0.0, 5.0, 26), dtype=float
    )
    t_points = np.asarray(
        t_grid if t_grid is not None else np.linspace(0.0, 50.0, 26), dtype=float
    )
    for t in t_points:
        if not is_class_k(lambda s, _t=t: beta(s, _t), grid=s_points):
            return False
    for s in s_points[1:]:
        values = np.array([float(beta(s, t)) for t in t_points])
        if np.any(np.diff(values) > 1e-9):
            return False
        if values[-1] > max(decay_tolerance, decay_tolerance * values[0]):
            return False
    return True


def estimate_contraction_rate(
    step: Callable[[np.ndarray, np.ndarray], np.ndarray],
    state_dimension: int,
    input_dimension: int,
    num_samples: int = 200,
    state_scale: float = 1.0,
    input_scale: float = 1.0,
    rng: int | np.random.Generator | None = None,
) -> float:
    """Estimate ``sup ||F(x, u) - F(y, u)|| / ||x - y||`` by sampling.

    A value below one indicates the map is a uniform contraction in the
    state on the sampled region — the key ingredient for incremental ISS of
    the unforced difference dynamics.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    generator = spawn_generator(rng)
    worst = 0.0
    for _ in range(num_samples):
        x = (generator.random(state_dimension) * 2.0 - 1.0) * state_scale
        y = (generator.random(state_dimension) * 2.0 - 1.0) * state_scale
        u = (generator.random(input_dimension) * 2.0 - 1.0) * input_scale
        gap = float(np.linalg.norm(x - y))
        if gap == 0.0:
            continue
        image_gap = float(
            np.linalg.norm(
                np.asarray(step(x, u), dtype=float) - np.asarray(step(y, u), dtype=float)
            )
        )
        worst = max(worst, image_gap / gap)
    return worst


@dataclass(frozen=True)
class IncrementalISSDiagnostic:
    """Result of the sampled incremental-ISS check.

    Attributes
    ----------
    contraction_rate:
        Sampled state-contraction rate of ``F``.
    input_gain:
        Sampled sensitivity of ``F`` to input differences
        (``sup ||F(x, u) - F(x, v)|| / ||u - v||``).
    trajectories_converge:
        Whether simulated trajectory pairs driven by identical inputs
        approached each other to within ``convergence_tolerance``.
    convergence_tolerance:
        Tolerance used for the trajectory check.
    """

    contraction_rate: float
    input_gain: float
    trajectories_converge: bool
    convergence_tolerance: float

    @property
    def consistent_with_incremental_iss(self) -> bool:
        """Return whether the sampled evidence supports incremental ISS."""
        return self.contraction_rate < 1.0 and self.trajectories_converge


def incremental_iss_diagnostic(
    step: Callable[[np.ndarray, np.ndarray], np.ndarray],
    state_dimension: int,
    input_dimension: int,
    *,
    horizon: int = 200,
    num_samples: int = 100,
    num_trajectory_pairs: int = 5,
    state_scale: float = 1.0,
    input_scale: float = 1.0,
    convergence_tolerance: float = 1e-3,
    rng: int | np.random.Generator | None = None,
) -> IncrementalISSDiagnostic:
    """Run a sampled incremental-ISS check of ``x(k+1) = F(x(k), u(k))``.

    Two ingredients are combined: a sampled contraction-rate / input-gain
    estimate, and a direct simulation of ``num_trajectory_pairs`` pairs of
    trajectories driven by the *same* random input sequence from different
    initial conditions, which must converge to each other when the system is
    incrementally ISS.
    """
    generator = spawn_generator(rng)
    contraction_rate = estimate_contraction_rate(
        step,
        state_dimension,
        input_dimension,
        num_samples=num_samples,
        state_scale=state_scale,
        input_scale=input_scale,
        rng=generator,
    )
    # Sampled input gain.
    input_gain = 0.0
    for _ in range(num_samples):
        x = (generator.random(state_dimension) * 2.0 - 1.0) * state_scale
        u = (generator.random(input_dimension) * 2.0 - 1.0) * input_scale
        v = (generator.random(input_dimension) * 2.0 - 1.0) * input_scale
        gap = float(np.linalg.norm(u - v))
        if gap == 0.0:
            continue
        image_gap = float(
            np.linalg.norm(
                np.asarray(step(x, u), dtype=float) - np.asarray(step(x, v), dtype=float)
            )
        )
        input_gain = max(input_gain, image_gap / gap)
    # Trajectory convergence under common inputs.
    converged = True
    for _ in range(num_trajectory_pairs):
        x = (generator.random(state_dimension) * 2.0 - 1.0) * state_scale
        y = (generator.random(state_dimension) * 2.0 - 1.0) * state_scale
        inputs = (generator.random((horizon, input_dimension)) * 2.0 - 1.0) * input_scale
        for k in range(horizon):
            x = np.asarray(step(x, inputs[k]), dtype=float)
            y = np.asarray(step(y, inputs[k]), dtype=float)
        if float(np.linalg.norm(x - y)) > convergence_tolerance:
            converged = False
            break
    return IncrementalISSDiagnostic(
        contraction_rate=contraction_rate,
        input_gain=input_gain,
        trajectories_converge=converged,
        convergence_tolerance=convergence_tolerance,
    )
