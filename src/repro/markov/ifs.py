"""Iterated function systems, including the signal-dependent user model.

Two flavours are provided:

* :class:`IteratedFunctionSystem` — the classical IFS with (possibly
  place-dependent) probabilities over a finite family of maps; this is the
  single-vertex special case of a Markov system and the setting of Elton's
  ergodic theorem.
* :class:`SignalDependentIFS` — the paper's user model of Section VI
  (equations 7-9): the user has state-transition maps ``w_ij`` and output
  maps ``w'_il`` whose selection probabilities ``p_ij(pi)`` and
  ``p'_il(pi)`` depend on the broadcast signal ``pi(k)`` rather than on the
  state.  One step consumes a signal and produces the next private state and
  the observable action ``y_i(k)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.markov.maps import StateMap
from repro.utils.rng import spawn_generator
from repro.utils.validation import require_probability_vector

__all__ = ["IteratedFunctionSystem", "SignalDependentIFS"]


def _choice_cdf(probabilities: np.ndarray) -> np.ndarray:
    """Return the cumulative distribution ``Generator.choice`` inverts.

    Selecting ``cdf.searchsorted(u, side="right")`` with one uniform draw
    per selection reproduces ``generator.choice(len(p), p=p)`` bit for bit,
    which keeps the batched IFS path on the same random stream as the
    per-user loop.
    """
    cdf = probabilities.cumsum()
    cdf /= cdf[-1]
    return cdf


def _apply_map_batch(state_map: StateMap, batch: np.ndarray) -> np.ndarray:
    """Apply ``state_map`` to each row of ``batch``, vectorized when possible."""
    apply_batch = getattr(state_map, "apply_batch", None)
    if apply_batch is not None:
        return np.asarray(apply_batch(batch), dtype=float)
    return np.stack(
        [
            np.atleast_1d(np.asarray(state_map(batch[index]), dtype=float))
            for index in range(batch.shape[0])
        ]
    )


class IteratedFunctionSystem:
    """A finite family of maps with (place-dependent) selection probabilities.

    Parameters
    ----------
    maps:
        The family ``w_1, ..., w_L`` of state maps.
    probabilities:
        Either a fixed probability vector of length ``L`` or a callable
        ``x -> probability vector`` for place-dependent probabilities.
    """

    def __init__(
        self,
        maps: Sequence[StateMap],
        probabilities: Sequence[float] | Callable[[np.ndarray], Sequence[float]],
    ) -> None:
        if not maps:
            raise ValueError("an IFS needs at least one map")
        self._maps: Tuple[StateMap, ...] = tuple(maps)
        if callable(probabilities):
            self._probability_function = probabilities
            self._fixed_probabilities: np.ndarray | None = None
        else:
            vector = require_probability_vector(probabilities, "probabilities")
            if vector.size != len(self._maps):
                raise ValueError("probabilities must have one entry per map")
            self._fixed_probabilities = vector
            self._probability_function = None

    @property
    def maps(self) -> Tuple[StateMap, ...]:
        """Return the family of maps."""
        return self._maps

    def probabilities_at(self, state: np.ndarray) -> np.ndarray:
        """Return the selection probabilities at ``state``."""
        if self._fixed_probabilities is not None:
            return self._fixed_probabilities
        vector = require_probability_vector(
            self._probability_function(np.atleast_1d(np.asarray(state, dtype=float))),
            "probabilities",
        )
        if vector.size != len(self._maps):
            raise ValueError("probability function must return one entry per map")
        return vector

    def step(
        self, state: np.ndarray, rng: int | np.random.Generator | None = None
    ) -> Tuple[np.ndarray, int]:
        """Apply one randomly selected map to ``state``.

        Returns the next state and the index of the map that was applied.
        """
        generator = spawn_generator(rng)
        vector = np.atleast_1d(np.asarray(state, dtype=float))
        probabilities = self.probabilities_at(vector)
        index = int(generator.choice(len(self._maps), p=probabilities))
        return np.atleast_1d(np.asarray(self._maps[index](vector), dtype=float)), index

    def orbit(
        self,
        initial_state: np.ndarray,
        length: int,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Simulate ``length`` steps and return the visited states.

        The result has shape ``(length + 1, state_dimension)`` and includes
        the initial state as its first row.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        generator = spawn_generator(rng)
        state = np.atleast_1d(np.asarray(initial_state, dtype=float))
        states = [state.copy()]
        for _ in range(length):
            state, _index = self.step(state, generator)
            states.append(state.copy())
        return np.vstack(states)

    def average_contraction_estimate(
        self,
        state_pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> float:
        """Estimate the worst average contraction factor over sampled pairs.

        Mirrors :meth:`repro.markov.system.MarkovSystem.average_contractivity`
        for the single-vertex case.
        """
        worst = 0.0
        for x, y in state_pairs:
            x_vec = np.atleast_1d(np.asarray(x, dtype=float))
            y_vec = np.atleast_1d(np.asarray(y, dtype=float))
            distance = float(np.linalg.norm(x_vec - y_vec))
            if distance == 0.0:
                continue
            probabilities = self.probabilities_at(x_vec)
            contracted = sum(
                float(probability)
                * float(
                    np.linalg.norm(
                        np.asarray(state_map(x_vec), dtype=float)
                        - np.asarray(state_map(y_vec), dtype=float)
                    )
                )
                for state_map, probability in zip(self._maps, probabilities)
            )
            worst = max(worst, contracted / distance)
        return worst


@dataclass(frozen=True)
class SignalDependentIFS:
    """The paper's stochastic user model (Section VI, equations 7-9).

    A user holds a private state ``x_i(k)``.  On receiving the broadcast
    signal ``pi(k)`` the user

    * moves to ``x_i(k+1) = w_ij(x_i(k))`` with probability ``p_ij(pi(k))``,
      and
    * emits the action ``y_i(k) = w'_il(x_i(k))`` with probability
      ``p'_il(pi(k))``,

    where the two selections are independent given the signal.

    Attributes
    ----------
    transition_maps:
        The state-transition maps ``w_ij``.
    transition_probabilities:
        Callable ``pi -> probability vector`` over the transition maps.
    output_maps:
        The output maps ``w'_il`` (each returns the user's action).
    output_probabilities:
        Callable ``pi -> probability vector`` over the output maps.
    """

    transition_maps: Tuple[StateMap, ...]
    transition_probabilities: Callable[[object], Sequence[float]]
    output_maps: Tuple[StateMap, ...]
    output_probabilities: Callable[[object], Sequence[float]]

    def __post_init__(self) -> None:
        if not self.transition_maps or not self.output_maps:
            raise ValueError("transition_maps and output_maps must be non-empty")

    def _transition_vector(self, signal: object) -> np.ndarray:
        vector = require_probability_vector(
            self.transition_probabilities(signal), "transition probabilities"
        )
        if vector.size != len(self.transition_maps):
            raise ValueError("transition probabilities must match transition_maps")
        return vector

    def _output_vector(self, signal: object) -> np.ndarray:
        vector = require_probability_vector(
            self.output_probabilities(signal), "output probabilities"
        )
        if vector.size != len(self.output_maps):
            raise ValueError("output probabilities must match output_maps")
        return vector

    def step(
        self,
        state: np.ndarray,
        signal: object,
        rng: int | np.random.Generator | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance the user one step under ``signal``.

        Returns the pair ``(next_state, action)`` following equations
        (9a)-(9b) of the paper: the action is computed from the *current*
        state via a randomly selected output map, and the next state via a
        randomly selected transition map.
        """
        generator = spawn_generator(rng)
        vector = np.atleast_1d(np.asarray(state, dtype=float))
        output_index = int(
            generator.choice(len(self.output_maps), p=self._output_vector(signal))
        )
        action = np.atleast_1d(
            np.asarray(self.output_maps[output_index](vector), dtype=float)
        )
        transition_index = int(
            generator.choice(
                len(self.transition_maps), p=self._transition_vector(signal)
            )
        )
        next_state = np.atleast_1d(
            np.asarray(self.transition_maps[transition_index](vector), dtype=float)
        )
        return next_state, action

    def structural_key(self) -> tuple:
        """Return a hashable key identifying the user's exact step arithmetic.

        Two users with equal keys make bit-identical transitions for every
        ``(state, signal, uniform draws)`` triple: their probability
        callables are the *same objects* and their maps are structurally
        equal (see :meth:`repro.markov.maps.AffineMap.structural_key`).
        Distinct-but-structurally-equal users can therefore share one
        vectorized batch in
        :class:`~repro.core.population.IFSPopulation.respond`.  Maps
        without a ``structural_key`` hook compare by identity.
        """

        def map_key(state_map: StateMap) -> tuple:
            key = getattr(state_map, "structural_key", None)
            if key is not None:
                return key()
            return ("opaque", id(state_map))

        return (
            id(self.transition_probabilities),
            id(self.output_probabilities),
            tuple(map_key(state_map) for state_map in self.transition_maps),
            tuple(map_key(state_map) for state_map in self.output_maps),
        )

    def step_batch(
        self,
        states: np.ndarray,
        signals: np.ndarray,
        rng: int | np.random.Generator | None = None,
        uniforms: np.ndarray | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance a whole batch of i.i.d. copies of this user in one step.

        ``states`` is a ``(batch, state_dim)`` stack of private states and
        ``signals`` the per-row broadcast signal.  Returns
        ``(next_states, actions)`` with ``next_states`` of the same shape
        and ``actions`` a ``(batch,)`` vector (the first component of each
        output map's image, matching the scalar-action convention of
        :class:`~repro.core.population.IFSPopulation`).

        The batch is bit-identical to calling :meth:`step` once per row
        with the same generator: the two uniforms per row are consumed in
        the same interleaved order, map selection replicates
        ``Generator.choice``'s cumulative-probability inversion, and
        affine maps apply via a batched matmul whose rows equal the
        per-vector product.

        ``uniforms`` optionally supplies the ``(batch, 2)`` pre-drawn
        uniforms instead of consuming ``rng``.  A mixed population draws
        one ``(users, 2)`` block per step in user order — the exact
        sequence the per-user loop would consume — and hands each
        structural group its rows, so heterogeneous batching stays on the
        same random stream as the reference loop.
        """
        batch = np.atleast_2d(np.asarray(states, dtype=float))
        count = batch.shape[0]
        signal_array = np.broadcast_to(
            np.asarray(signals, dtype=float).ravel()
            if np.ndim(signals) > 0
            else np.asarray([signals], dtype=float),
            (count,),
        )
        if uniforms is None:
            uniforms = spawn_generator(rng).random((count, 2))
        else:
            uniforms = np.asarray(uniforms, dtype=float)
            if uniforms.shape != (count, 2):
                raise ValueError("uniforms must have shape (batch, 2)")
        output_indices = np.empty(count, dtype=np.intp)
        transition_indices = np.empty(count, dtype=np.intp)
        for value in np.unique(signal_array):
            # np.unique collapses NaNs to one entry, but NaN != NaN would
            # leave those rows unassigned under an equality mask.
            mask = np.isnan(signal_array) if np.isnan(value) else signal_array == value
            signal = float(value)
            output_cdf = _choice_cdf(self._output_vector(signal))
            transition_cdf = _choice_cdf(self._transition_vector(signal))
            output_indices[mask] = output_cdf.searchsorted(
                uniforms[mask, 0], side="right"
            )
            transition_indices[mask] = transition_cdf.searchsorted(
                uniforms[mask, 1], side="right"
            )
        actions = np.empty(count, dtype=float)
        for index in np.unique(output_indices):
            mask = output_indices == index
            actions[mask] = _apply_map_batch(self.output_maps[index], batch[mask])[:, 0]
        next_states = np.empty_like(batch)
        for index in np.unique(transition_indices):
            mask = transition_indices == index
            next_states[mask] = _apply_map_batch(self.transition_maps[index], batch[mask])
        return next_states, actions

    def trajectory(
        self,
        initial_state: np.ndarray,
        signals: Sequence[object],
        rng: int | np.random.Generator | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the user against a prescribed signal sequence.

        Returns ``(states, actions)`` where ``states`` has one more row than
        ``actions`` (it includes the initial state).
        """
        generator = spawn_generator(rng)
        state = np.atleast_1d(np.asarray(initial_state, dtype=float))
        states = [state.copy()]
        actions = []
        for signal in signals:
            state, action = self.step(state, signal, generator)
            states.append(state.copy())
            actions.append(action)
        return np.vstack(states), (
            np.vstack(actions) if actions else np.empty((0, 1))
        )
