"""Coupling-based convergence diagnostics.

The paper's conclusion mentions that asymptotic-coupling arguments in the
style of Hairer, Mattingly and Scheutzow could be used to show when equal
impact *cannot* be guaranteed.  The numerical counterpart implemented here
runs two copies of a stochastic system driven by *common randomness* from
different initial conditions and reports how quickly the two copies meet
(or fail to): a rapidly shrinking distance profile supports unique
ergodicity, a persistent gap indicates the loop remembers its initial
condition.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.utils.rng import spawn_generator

__all__ = ["coupling_distance_profile", "coupling_time"]


def coupling_distance_profile(
    step: Callable[[np.ndarray, np.random.Generator], np.ndarray],
    first_initial_state: np.ndarray,
    second_initial_state: np.ndarray,
    horizon: int,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Return ``||x(k) - y(k)||`` when both copies share the same randomness.

    Parameters
    ----------
    step:
        One-step map ``(state, generator) -> next state``; the *same*
        generator object is handed to both copies at every step, so the two
        chains are driven by a synchronous coupling.
    first_initial_state, second_initial_state:
        The two initial conditions.
    horizon:
        Number of steps to simulate.
    rng:
        Seed or generator for the shared randomness.
    """
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    generator = spawn_generator(rng)
    x = np.atleast_1d(np.asarray(first_initial_state, dtype=float))
    y = np.atleast_1d(np.asarray(second_initial_state, dtype=float))
    distances = [float(np.linalg.norm(x - y))]
    for k in range(horizon):
        # Re-seed a per-step generator so both copies consume *identical*
        # random draws regardless of how many draws `step` performs.
        step_seed = int(generator.integers(0, 2**63 - 1))
        x = np.atleast_1d(np.asarray(step(x, np.random.default_rng(step_seed)), dtype=float))
        y = np.atleast_1d(np.asarray(step(y, np.random.default_rng(step_seed)), dtype=float))
        distances.append(float(np.linalg.norm(x - y)))
    return np.asarray(distances)


def coupling_time(
    distance_profile: Sequence[float], tolerance: float = 1e-6
) -> int | None:
    """Return the first step at which the coupled distance drops below ``tolerance``.

    Returns ``None`` when the two copies never meet within the profile's
    horizon — the numerical signature of a loop that is *not* uniquely
    ergodic (or simply needs a longer horizon).
    """
    profile = np.asarray(distance_profile, dtype=float)
    below = np.flatnonzero(profile <= tolerance)
    if below.size == 0:
        return None
    return int(below[0])
