"""State-transition maps used by Markov systems and IFSs.

A Markov system (Werner 2004) is a family of Borel-measurable maps together
with place-dependent probabilities.  In practice almost all of the paper's
examples are built from affine maps ``x -> A x + b`` (whose contraction
factor is the operator norm of ``A``) or from arbitrary callables wrapped in
:class:`FunctionMap`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

__all__ = ["StateMap", "AffineMap", "FunctionMap"]


@runtime_checkable
class StateMap(Protocol):
    """Protocol for a state-transition map ``w : R^n -> R^m``."""

    def __call__(self, state: np.ndarray) -> np.ndarray:
        """Apply the map to ``state`` and return the image."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class AffineMap:
    """An affine map ``w(x) = A x + b``.

    Affine maps are the workhorse of iterated-function-system examples: the
    map is a contraction exactly when the spectral norm of ``A`` is below
    one, which :meth:`lipschitz_constant` reports.
    """

    matrix: np.ndarray
    offset: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.atleast_2d(np.asarray(self.matrix, dtype=float))
        offset = np.atleast_1d(np.asarray(self.offset, dtype=float))
        if matrix.shape[0] != offset.shape[0]:
            raise ValueError(
                "matrix row count must equal offset length "
                f"({matrix.shape[0]} != {offset.shape[0]})"
            )
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "offset", offset)

    @classmethod
    def scalar(cls, slope: float, intercept: float) -> "AffineMap":
        """Build a one-dimensional affine map ``x -> slope * x + intercept``."""
        return cls(matrix=np.array([[float(slope)]]), offset=np.array([float(intercept)]))

    def __call__(self, state: np.ndarray) -> np.ndarray:
        """Apply the map to a state vector (scalars are promoted to 1-D)."""
        vector = np.atleast_1d(np.asarray(state, dtype=float))
        return self.matrix @ vector + self.offset

    def apply_batch(self, states: np.ndarray) -> np.ndarray:
        """Apply the map to a ``(batch, state_dim)`` stack of states.

        The batched matmul form keeps every row bit-identical to the
        per-vector ``__call__`` (each slice is the same matrix-vector
        product), which the vectorized IFS population relies on.
        """
        batch = np.atleast_2d(np.asarray(states, dtype=float))
        return (self.matrix[None, :, :] @ batch[:, :, None])[:, :, 0] + self.offset

    def structural_key(self) -> tuple:
        """Return a hashable key identifying the map's exact arithmetic.

        Two affine maps with equal keys apply identically to every state
        (same shapes, same float contents), so distinct-but-equal instances
        can share one vectorized batch in the IFS population.
        """
        return (
            "affine",
            self.matrix.shape,
            self.matrix.tobytes(),
            self.offset.tobytes(),
        )

    def lipschitz_constant(self) -> float:
        """Return the spectral norm of ``A`` (the map's Lipschitz constant)."""
        return float(np.linalg.norm(self.matrix, ord=2))

    def fixed_point(self) -> np.ndarray:
        """Return the unique fixed point when ``I - A`` is invertible.

        Raises :class:`numpy.linalg.LinAlgError` when ``A`` has eigenvalue 1.
        """
        identity = np.eye(self.matrix.shape[0])
        return np.linalg.solve(identity - self.matrix, self.offset)


@dataclass(frozen=True)
class FunctionMap:
    """Wrap an arbitrary callable as a :class:`StateMap` with a name.

    The optional ``lipschitz`` bound, when supplied, lets the ergodicity
    diagnostics use an exact constant rather than a sampled estimate.
    """

    function: Callable[[np.ndarray], np.ndarray]
    name: str = "map"
    lipschitz: float | None = None

    def __call__(self, state: np.ndarray) -> np.ndarray:
        """Apply the wrapped callable to ``state``."""
        return np.atleast_1d(
            np.asarray(self.function(np.atleast_1d(np.asarray(state, dtype=float))), dtype=float)
        )

    def apply_batch(self, states: np.ndarray) -> np.ndarray:
        """Apply the wrapped callable to each row of a batch of states.

        Arbitrary callables cannot be assumed to broadcast, so this simply
        loops rows; affine maps override the hot path with true array ops.
        """
        batch = np.atleast_2d(np.asarray(states, dtype=float))
        return np.stack([self(batch[index]) for index in range(batch.shape[0])])

    def structural_key(self) -> tuple:
        """Return a hashable key identifying the map's exact arithmetic.

        Arbitrary callables can only be compared by identity, so two
        :class:`FunctionMap` instances share a key exactly when they wrap
        the *same* function object.
        """
        return ("function", id(self.function))

    def lipschitz_constant(self) -> float | None:
        """Return the declared Lipschitz bound, or ``None`` when unknown."""
        return self.lipschitz
