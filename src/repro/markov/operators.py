"""Markov operators and their adjoints.

The appendix of the paper defines, for a Markov system, the operator

    P f(x) = sum_e p_e(x) * f(w_e(x))

on bounded measurable functions, and its adjoint ``P*`` on probability
measures; an invariant measure satisfies ``P* mu = mu``.  For systems whose
state space is (or can be discretised to) a finite set, both objects reduce
to a stochastic matrix and its left eigenvector, which this module computes
exactly.  For continuous-state systems :class:`MarkovOperator` evaluates
``P f`` pointwise and applies ``P*`` empirically to a particle cloud.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.markov.system import MarkovSystem
from repro.utils.rng import spawn_generator
from repro.utils.validation import require_probability_vector

__all__ = ["MarkovOperator", "transition_matrix", "stationary_distribution"]


class MarkovOperator:
    """The operator ``P`` (and adjoint ``P*``) of a :class:`MarkovSystem`."""

    def __init__(self, system: MarkovSystem) -> None:
        self._system = system

    @property
    def system(self) -> MarkovSystem:
        """Return the underlying Markov system."""
        return self._system

    def apply_to_function(
        self, function: Callable[[np.ndarray], float], state: np.ndarray
    ) -> float:
        """Evaluate ``P f`` at ``state``.

        ``P f(x) = sum_e p_e(x) f(w_e(x))`` where the sum runs over the edges
        leaving the vertex of ``x``.
        """
        vector = np.atleast_1d(np.asarray(state, dtype=float))
        vertex = self._system.vertex_of(vector)
        edges = self._system.outgoing_edges(vertex)
        probabilities = self._system.edge_probabilities(vector)
        return float(
            sum(
                probability * float(function(np.asarray(edge.state_map(vector), dtype=float)))
                for edge, probability in zip(edges, probabilities)
            )
        )

    def push_forward_particles(
        self,
        particles: np.ndarray,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Apply ``P*`` empirically to a cloud of particles.

        Each particle is advanced one random step of the system; the
        resulting cloud is an empirical approximation of ``P* mu`` when the
        input cloud approximates ``mu``.
        """
        generator = spawn_generator(rng)
        particle_array = np.atleast_2d(np.asarray(particles, dtype=float))
        advanced = [
            self._system.step(particle, generator)[0] for particle in particle_array
        ]
        return np.vstack(advanced)


def transition_matrix(
    states: Sequence[np.ndarray],
    system: MarkovSystem,
    locate: Callable[[np.ndarray], int] | None = None,
) -> np.ndarray:
    """Build the stochastic matrix of a Markov system on a finite state set.

    Parameters
    ----------
    states:
        The finite list of states the system actually visits.  Every image
        ``w_e(state)`` must be (numerically) one of these states; ``locate``
        may override the default nearest-state matching.
    system:
        The Markov system to discretise.
    locate:
        Optional callable mapping an image state to its index in ``states``.

    Returns
    -------
    numpy.ndarray
        A row-stochastic matrix ``T`` with ``T[a, b]`` the probability of
        moving from ``states[a]`` to ``states[b]`` in one step.
    """
    state_array = [np.atleast_1d(np.asarray(state, dtype=float)) for state in states]
    if not state_array:
        raise ValueError("states must be non-empty")

    def default_locate(image: np.ndarray) -> int:
        distances = [float(np.linalg.norm(image - candidate)) for candidate in state_array]
        best = int(np.argmin(distances))
        if distances[best] > 1e-6:
            raise ValueError(
                "image state is not close to any listed state; "
                "provide an explicit locate callable"
            )
        return best

    locate_fn = locate or default_locate
    size = len(state_array)
    matrix = np.zeros((size, size), dtype=float)
    for row, state in enumerate(state_array):
        vertex = system.vertex_of(state)
        edges = system.outgoing_edges(vertex)
        probabilities = system.edge_probabilities(state)
        for edge, probability in zip(edges, probabilities):
            image = np.atleast_1d(np.asarray(edge.state_map(state), dtype=float))
            matrix[row, locate_fn(image)] += probability
    return matrix


def stationary_distribution(matrix: np.ndarray, *, atol: float = 1e-10) -> np.ndarray:
    """Return a stationary distribution of a row-stochastic matrix.

    The distribution solves ``pi T = pi`` and is computed from the left
    eigenvector of eigenvalue one.  When several stationary distributions
    exist (a reducible chain) the returned vector is one of them; uniqueness
    should be checked separately via
    :func:`repro.markov.ergodicity.is_primitive`.
    """
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise ValueError("matrix must be square")
    row_sums = array.sum(axis=1)
    if np.any(np.abs(row_sums - 1.0) > 1e-6):
        raise ValueError("matrix rows must sum to one")
    eigenvalues, eigenvectors = np.linalg.eig(array.T)
    index = int(np.argmin(np.abs(eigenvalues - 1.0)))
    if abs(eigenvalues[index] - 1.0) > 1e-6:
        raise ValueError("matrix has no eigenvalue 1; it is not stochastic")
    vector = np.real(eigenvectors[:, index])
    vector = np.abs(vector)
    distribution = vector / vector.sum()
    # Polish the eigenvector with a few power iterations for numerical hygiene.
    for _ in range(50):
        refreshed = distribution @ array
        if np.linalg.norm(refreshed - distribution, ord=1) < atol:
            distribution = refreshed
            break
        distribution = refreshed
    return require_probability_vector(distribution, "stationary distribution", atol=1e-6)
