"""Spectral diagnostics of finite-state chains: how fast does impact equalise?

For a finite-state Markov chain the speed at which time averages converge —
and hence how quickly equal impact becomes visible — is governed by the
spectral gap of the transition matrix: the distance between 1 and the
second-largest eigenvalue modulus (SLEM).  This module computes the SLEM,
the spectral gap, the implied relaxation time, and a standard upper bound
on the total-variation mixing time for reversible chains; it complements
the graph-level checks in :mod:`repro.markov.ergodicity` with quantitative
rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.operators import stationary_distribution

__all__ = ["SpectralDiagnostics", "spectral_diagnostics", "mixing_time_upper_bound"]


@dataclass(frozen=True)
class SpectralDiagnostics:
    """Spectral summary of a finite-state transition matrix.

    Attributes
    ----------
    second_largest_modulus:
        The second-largest eigenvalue modulus (SLEM) of the matrix.
    spectral_gap:
        ``1 - SLEM``; zero for periodic or reducible chains.
    relaxation_time:
        ``1 / spectral_gap`` (``inf`` when the gap is zero).
    stationary:
        A stationary distribution of the chain.
    """

    second_largest_modulus: float
    spectral_gap: float
    relaxation_time: float
    stationary: np.ndarray

    @property
    def geometrically_ergodic(self) -> bool:
        """Return whether the chain mixes at a geometric rate (positive gap)."""
        return self.spectral_gap > 1e-12


def spectral_diagnostics(matrix: np.ndarray) -> SpectralDiagnostics:
    """Compute the spectral diagnostics of a row-stochastic matrix."""
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise ValueError("matrix must be square")
    row_sums = array.sum(axis=1)
    if np.any(np.abs(row_sums - 1.0) > 1e-6):
        raise ValueError("matrix rows must sum to one")
    eigenvalues = np.linalg.eigvals(array)
    moduli = np.sort(np.abs(eigenvalues))[::-1]
    # The leading modulus is 1 (Perron root); the SLEM is the next one.
    slem = float(moduli[1]) if moduli.size > 1 else 0.0
    slem = min(slem, 1.0)
    gap = max(0.0, 1.0 - slem)
    return SpectralDiagnostics(
        second_largest_modulus=slem,
        spectral_gap=gap,
        relaxation_time=float("inf") if gap <= 1e-15 else 1.0 / gap,
        stationary=stationary_distribution(array),
    )


def mixing_time_upper_bound(matrix: np.ndarray, epsilon: float = 0.25) -> float:
    """Return the standard relaxation-time bound on the mixing time.

    For a reversible, irreducible, aperiodic chain the total-variation
    mixing time satisfies

        t_mix(epsilon) <= relaxation_time * ln(1 / (epsilon * pi_min)),

    where ``pi_min`` is the smallest stationary probability.  The bound is
    reported as ``inf`` when the spectral gap vanishes.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    diagnostics = spectral_diagnostics(matrix)
    if not diagnostics.geometrically_ergodic:
        return float("inf")
    pi_min = float(diagnostics.stationary.min())
    if pi_min <= 0:
        return float("inf")
    return diagnostics.relaxation_time * float(np.log(1.0 / (epsilon * pi_min)))
