"""Markov systems in the sense of Werner (2004).

A Markov system is a family ``(X_{i(e)}, w_e, p_e)_{e in E}`` where ``E`` is
the edge set of a finite directed (multi)graph on vertices ``V``; each edge
``e`` carries a Borel map ``w_e`` that sends the partition cell of its
initial vertex into the cell of its terminal vertex, and a place-dependent
probability ``p_e(x) >= 0`` with ``sum_{e out of i(e)} p_e(x) = 1``.  The
paper's Appendix reproduces this construction verbatim; this module turns it
into an executable object with simulation, graph-structure queries, and an
average-contractivity check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.markov.maps import StateMap
from repro.utils.rng import spawn_generator

__all__ = ["MarkovEdge", "MarkovSystem"]


@dataclass(frozen=True)
class MarkovEdge:
    """One edge of a Markov system.

    Attributes
    ----------
    source, target:
        Vertex indices the edge connects (``i(e)`` and ``t(e)`` in the
        paper's notation).
    state_map:
        The Borel map ``w_e`` applied to the state when the edge fires.
    probability:
        The place-dependent probability ``p_e`` as a callable of the state.
        Constants may be passed as plain floats.
    label:
        Optional human-readable identifier.
    """

    source: int
    target: int
    state_map: StateMap
    probability: Callable[[np.ndarray], float] | float
    label: str = ""

    def probability_at(self, state: np.ndarray) -> float:
        """Evaluate ``p_e`` at ``state`` (constant probabilities allowed)."""
        if callable(self.probability):
            return float(self.probability(state))
        return float(self.probability)


class MarkovSystem:
    """An executable Markov system over a finite vertex set.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``N`` of the underlying directed graph.
    edges:
        The edges, each a :class:`MarkovEdge`.
    vertex_of_state:
        Callable mapping a state vector to the index of the partition cell
        that contains it.  For the common single-vertex case (``N == 1``,
        an ordinary place-dependent IFS) the default always returns 0.
    """

    def __init__(
        self,
        num_vertices: int,
        edges: Sequence[MarkovEdge],
        vertex_of_state: Callable[[np.ndarray], int] | None = None,
    ) -> None:
        if num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        if not edges:
            raise ValueError("a Markov system needs at least one edge")
        for edge in edges:
            if not (0 <= edge.source < num_vertices and 0 <= edge.target < num_vertices):
                raise ValueError(
                    f"edge {edge.label!r} references vertex outside 0..{num_vertices - 1}"
                )
        self._num_vertices = num_vertices
        self._edges: Tuple[MarkovEdge, ...] = tuple(edges)
        self._vertex_of_state = vertex_of_state or (lambda _state: 0)
        self._outgoing: Dict[int, List[int]] = {v: [] for v in range(num_vertices)}
        for index, edge in enumerate(self._edges):
            self._outgoing[edge.source].append(index)
        for vertex, indices in self._outgoing.items():
            if not indices:
                raise ValueError(f"vertex {vertex} has no outgoing edge")

    @property
    def num_vertices(self) -> int:
        """Return the number of vertices of the underlying graph."""
        return self._num_vertices

    @property
    def edges(self) -> Tuple[MarkovEdge, ...]:
        """Return the edges of the system."""
        return self._edges

    def vertex_of(self, state: np.ndarray) -> int:
        """Return the index of the partition cell containing ``state``."""
        return int(self._vertex_of_state(np.atleast_1d(np.asarray(state, dtype=float))))

    def adjacency_matrix(self) -> np.ndarray:
        """Return the 0/1 adjacency matrix of the underlying directed graph."""
        matrix = np.zeros((self._num_vertices, self._num_vertices), dtype=float)
        for edge in self._edges:
            matrix[edge.source, edge.target] = 1.0
        return matrix

    def outgoing_edges(self, vertex: int) -> Tuple[MarkovEdge, ...]:
        """Return the edges leaving ``vertex``."""
        return tuple(self._edges[index] for index in self._outgoing[vertex])

    def edge_probabilities(self, state: np.ndarray) -> np.ndarray:
        """Return the probabilities of the edges leaving the state's vertex.

        The probabilities are renormalised defensively; a vertex whose
        outgoing probabilities sum to zero at ``state`` raises
        :class:`ValueError` because the process would be stuck.
        """
        vertex = self.vertex_of(state)
        edges = self.outgoing_edges(vertex)
        raw = np.array([edge.probability_at(state) for edge in edges], dtype=float)
        if np.any(raw < -1e-12):
            raise ValueError("edge probabilities must be non-negative")
        total = raw.sum()
        if total <= 0:
            raise ValueError(f"no admissible edge at state {state!r}")
        return np.clip(raw, 0.0, None) / total

    def step(
        self, state: np.ndarray, rng: int | np.random.Generator | None = None
    ) -> Tuple[np.ndarray, MarkovEdge]:
        """Advance the system by one step from ``state``.

        Returns the next state and the edge that fired.
        """
        generator = spawn_generator(rng)
        vector = np.atleast_1d(np.asarray(state, dtype=float))
        vertex = self.vertex_of(vector)
        edges = self.outgoing_edges(vertex)
        probabilities = self.edge_probabilities(vector)
        index = int(generator.choice(len(edges), p=probabilities))
        chosen = edges[index]
        return np.atleast_1d(np.asarray(chosen.state_map(vector), dtype=float)), chosen

    def orbit(
        self,
        initial_state: np.ndarray,
        length: int,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Simulate an orbit of ``length`` steps starting from ``initial_state``.

        The result stacks the visited states (including the initial one) into
        an array of shape ``(length + 1, state_dimension)``.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        generator = spawn_generator(rng)
        state = np.atleast_1d(np.asarray(initial_state, dtype=float))
        states = [state.copy()]
        for _ in range(length):
            state, _edge = self.step(state, generator)
            states.append(state.copy())
        return np.vstack(states)

    def average_contractivity(
        self,
        state_pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> float:
        """Estimate the average contraction factor over given state pairs.

        For each pair ``(x, y)`` in the same partition cell the quantity

            sum_e p_e(x) * d(w_e(x), w_e(y)) / d(x, y)

        is evaluated; the maximum over pairs is returned.  A value strictly
        below one certifies the average-contractivity condition of Werner
        (2004) on the sampled pairs.
        """
        worst = 0.0
        for x, y in state_pairs:
            x_vec = np.atleast_1d(np.asarray(x, dtype=float))
            y_vec = np.atleast_1d(np.asarray(y, dtype=float))
            if self.vertex_of(x_vec) != self.vertex_of(y_vec):
                raise ValueError("state pairs must lie in the same partition cell")
            distance = float(np.linalg.norm(x_vec - y_vec))
            if distance == 0.0:
                continue
            vertex = self.vertex_of(x_vec)
            edges = self.outgoing_edges(vertex)
            probabilities = self.edge_probabilities(x_vec)
            contracted = 0.0
            for edge, probability in zip(edges, probabilities):
                image_distance = float(
                    np.linalg.norm(
                        np.asarray(edge.state_map(x_vec), dtype=float)
                        - np.asarray(edge.state_map(y_vec), dtype=float)
                    )
                )
                contracted += probability * image_distance
            worst = max(worst, contracted / distance)
        return worst
