"""Empirical invariant measures and unique-ergodicity diagnostics.

Equal impact asks for a single invariant measure to which the closed loop is
statistically drawn regardless of initial conditions.  For systems we can
only simulate, this module estimates that measure empirically from long
orbits, measures distances between empirical measures (1-D Wasserstein and
total variation on a common binning), and checks unique ergodicity
numerically by comparing orbits started from well-separated initial
conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.utils.rng import spawn_generator

__all__ = [
    "EmpiricalMeasure",
    "estimate_invariant_measure",
    "wasserstein_distance_1d",
    "total_variation_distance",
    "unique_ergodicity_diagnostic",
]


@dataclass(frozen=True)
class EmpiricalMeasure:
    """An empirical probability measure given by a cloud of samples.

    Attributes
    ----------
    samples:
        Array of shape ``(n, d)`` of samples (1-D inputs are promoted).
    """

    samples: np.ndarray

    def __post_init__(self) -> None:
        array = np.asarray(self.samples, dtype=float)
        if array.ndim == 1:
            array = array[:, None]
        if array.ndim != 2 or array.shape[0] == 0:
            raise ValueError("samples must be a non-empty (n, d) array")
        object.__setattr__(self, "samples", array)

    @property
    def size(self) -> int:
        """Return the number of samples."""
        return int(self.samples.shape[0])

    @property
    def dimension(self) -> int:
        """Return the dimension of the samples."""
        return int(self.samples.shape[1])

    def mean(self) -> np.ndarray:
        """Return the empirical mean."""
        return self.samples.mean(axis=0)

    def expectation(self, function: Callable[[np.ndarray], float]) -> float:
        """Return the empirical expectation of ``function``."""
        return float(np.mean([function(sample) for sample in self.samples]))

    def quantile(self, q: float, component: int = 0) -> float:
        """Return the empirical ``q``-quantile of one component."""
        return float(np.quantile(self.samples[:, component], q))


def estimate_invariant_measure(
    orbit: np.ndarray,
    burn_in: float = 0.2,
) -> EmpiricalMeasure:
    """Estimate the invariant measure from a simulated orbit.

    The first ``burn_in`` fraction of the orbit is discarded as transient;
    the remaining states form the empirical measure.
    """
    if not 0 <= burn_in < 1:
        raise ValueError("burn_in must lie in [0, 1)")
    array = np.asarray(orbit, dtype=float)
    if array.ndim == 1:
        array = array[:, None]
    if array.shape[0] < 2:
        raise ValueError("orbit must contain at least two states")
    start = int(array.shape[0] * burn_in)
    return EmpiricalMeasure(samples=array[start:])


def wasserstein_distance_1d(
    first: Sequence[float] | np.ndarray, second: Sequence[float] | np.ndarray
) -> float:
    """Return the 1-Wasserstein distance between two 1-D sample sets.

    Computed as the L1 distance between empirical quantile functions on a
    common grid, which for equal-size samples reduces to the mean absolute
    difference of sorted samples.
    """
    a = np.sort(np.asarray(first, dtype=float).ravel())
    b = np.sort(np.asarray(second, dtype=float).ravel())
    if a.size == 0 or b.size == 0:
        raise ValueError("sample sets must be non-empty")
    grid = np.linspace(0.0, 1.0, max(a.size, b.size), endpoint=False) + 0.5 / max(
        a.size, b.size
    )
    qa = np.quantile(a, grid)
    qb = np.quantile(b, grid)
    return float(np.mean(np.abs(qa - qb)))


def total_variation_distance(
    first: Sequence[float] | np.ndarray,
    second: Sequence[float] | np.ndarray,
    bins: int = 20,
) -> float:
    """Return the total-variation distance of two sample sets on a common binning.

    Both sample sets are histogrammed on ``bins`` equal-width bins spanning
    their joint range; the distance is half the L1 distance of the resulting
    histograms.  This is a coarse but binning-consistent estimate suitable
    for comparing empirical invariant measures.
    """
    a = np.asarray(first, dtype=float).ravel()
    b = np.asarray(second, dtype=float).ravel()
    if a.size == 0 or b.size == 0:
        raise ValueError("sample sets must be non-empty")
    low = min(a.min(), b.min())
    high = max(a.max(), b.max())
    if high == low:
        high = low + 1.0
    edges = np.linspace(low, high, bins + 1)
    hist_a, _ = np.histogram(a, bins=edges)
    hist_b, _ = np.histogram(b, bins=edges)
    pa = hist_a / hist_a.sum()
    pb = hist_b / hist_b.sum()
    return float(0.5 * np.abs(pa - pb).sum())


@dataclass(frozen=True)
class UniqueErgodicityDiagnostic:
    """Result of the numerical unique-ergodicity check.

    Attributes
    ----------
    wasserstein_distances:
        Pairwise 1-D Wasserstein distances between empirical measures
        obtained from different initial conditions (first component only for
        multi-dimensional states).
    max_distance:
        The largest pairwise distance.
    tolerance:
        The tolerance against which ``max_distance`` was compared.
    """

    wasserstein_distances: Tuple[float, ...]
    max_distance: float
    tolerance: float

    @property
    def consistent_with_unique_ergodicity(self) -> bool:
        """Return whether all initial conditions produced the same measure."""
        return self.max_distance <= self.tolerance


def unique_ergodicity_diagnostic(
    simulate_orbit: Callable[[np.ndarray, int, np.random.Generator], np.ndarray],
    initial_states: Sequence[np.ndarray],
    orbit_length: int = 2000,
    burn_in: float = 0.3,
    tolerance: float = 0.1,
    rng: int | np.random.Generator | None = None,
) -> UniqueErgodicityDiagnostic:
    """Check numerically that orbits forget their initial condition.

    Parameters
    ----------
    simulate_orbit:
        Callable ``(initial_state, length, generator) -> orbit array``;
        typically the bound method ``system.orbit``.
    initial_states:
        At least two well-separated initial conditions.
    orbit_length, burn_in:
        Length of each orbit and the fraction discarded as transient.
    tolerance:
        Maximum allowed pairwise Wasserstein distance between the empirical
        measures for the diagnostic to pass.
    rng:
        Seed or generator; each orbit receives an independent sub-stream.
    """
    if len(initial_states) < 2:
        raise ValueError("need at least two initial states")
    generator = spawn_generator(rng)
    measures = []
    for initial_state in initial_states:
        orbit = simulate_orbit(
            np.atleast_1d(np.asarray(initial_state, dtype=float)),
            orbit_length,
            np.random.default_rng(generator.integers(0, 2**63 - 1)),
        )
        measures.append(estimate_invariant_measure(orbit, burn_in=burn_in))
    distances = []
    for i in range(len(measures)):
        for j in range(i + 1, len(measures)):
            distances.append(
                wasserstein_distance_1d(
                    measures[i].samples[:, 0], measures[j].samples[:, 0]
                )
            )
    max_distance = max(distances)
    return UniqueErgodicityDiagnostic(
        wasserstein_distances=tuple(distances),
        max_distance=max_distance,
        tolerance=tolerance,
    )
