"""Markov systems, iterated function systems, and ergodicity diagnostics.

This package is the mathematical substrate behind the paper's guarantee
section (Section VI and the Appendix): the closed loop of an AI system and
its users is modelled as a *Markov system* in the sense of Werner (2004) —
a directed graph whose edges carry state-transition maps and place-dependent
probabilities — or, when signal-dependent, as an iterated function system
(IFS).  Equal impact holds when that system is uniquely ergodic, i.e. when
it possesses a unique attractive invariant measure.

Public API
----------
Maps and systems
    :class:`AffineMap`, :class:`FunctionMap`,
    :class:`MarkovSystem`, :class:`MarkovEdge`,
    :class:`IteratedFunctionSystem`, :class:`SignalDependentIFS`.
Operators
    :class:`MarkovOperator`, :func:`transition_matrix`,
    :func:`stationary_distribution`.
Ergodicity diagnostics
    :func:`is_strongly_connected`, :func:`is_aperiodic`, :func:`is_primitive`,
    :func:`average_contraction_factor`, :func:`check_ergodicity`,
    :class:`ErgodicityReport`.
Invariant measures
    :class:`EmpiricalMeasure`, :func:`estimate_invariant_measure`,
    :func:`wasserstein_distance_1d`, :func:`total_variation_distance`,
    :func:`unique_ergodicity_diagnostic`.
Stability
    :func:`is_class_k`, :func:`is_class_kl`,
    :func:`incremental_iss_diagnostic`, :func:`estimate_contraction_rate`.
Coupling
    :func:`coupling_distance_profile`, :func:`coupling_time`.
"""

from repro.markov.maps import AffineMap, FunctionMap, StateMap
from repro.markov.system import MarkovEdge, MarkovSystem
from repro.markov.ifs import IteratedFunctionSystem, SignalDependentIFS
from repro.markov.operators import (
    MarkovOperator,
    stationary_distribution,
    transition_matrix,
)
from repro.markov.ergodicity import (
    ErgodicityReport,
    average_contraction_factor,
    check_ergodicity,
    is_aperiodic,
    is_primitive,
    is_strongly_connected,
)
from repro.markov.invariant import (
    EmpiricalMeasure,
    estimate_invariant_measure,
    total_variation_distance,
    unique_ergodicity_diagnostic,
    wasserstein_distance_1d,
)
from repro.markov.stability import (
    estimate_contraction_rate,
    incremental_iss_diagnostic,
    is_class_k,
    is_class_kl,
)
from repro.markov.coupling import coupling_distance_profile, coupling_time
from repro.markov.spectral import (
    SpectralDiagnostics,
    mixing_time_upper_bound,
    spectral_diagnostics,
)

__all__ = [
    "AffineMap",
    "FunctionMap",
    "StateMap",
    "MarkovEdge",
    "MarkovSystem",
    "IteratedFunctionSystem",
    "SignalDependentIFS",
    "MarkovOperator",
    "transition_matrix",
    "stationary_distribution",
    "ErgodicityReport",
    "is_strongly_connected",
    "is_aperiodic",
    "is_primitive",
    "average_contraction_factor",
    "check_ergodicity",
    "EmpiricalMeasure",
    "estimate_invariant_measure",
    "wasserstein_distance_1d",
    "total_variation_distance",
    "unique_ergodicity_diagnostic",
    "is_class_k",
    "is_class_kl",
    "incremental_iss_diagnostic",
    "estimate_contraction_rate",
    "coupling_distance_profile",
    "coupling_time",
    "SpectralDiagnostics",
    "spectral_diagnostics",
    "mixing_time_upper_bound",
]
