"""Ergodicity diagnostics for Markov systems.

The paper's guarantee (Section VI) is: when the directed graph of the Markov
system is strongly connected an invariant measure exists, and when the
adjacency matrix is additionally *primitive* the invariant measure is
attractive and the system is uniquely ergodic.  This module provides the
graph-theoretic checks (strong connectivity, aperiodicity, primitivity), an
average-contractivity estimate, and a single :func:`check_ergodicity` entry
point that rolls them into an :class:`ErgodicityReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import networkx as nx
import numpy as np

from repro.markov.system import MarkovSystem
from repro.utils.rng import spawn_generator

__all__ = [
    "is_strongly_connected",
    "is_aperiodic",
    "is_primitive",
    "average_contraction_factor",
    "ErgodicityReport",
    "check_ergodicity",
]


def _as_digraph(adjacency: np.ndarray) -> nx.DiGraph:
    matrix = np.asarray(adjacency, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    graph = nx.DiGraph()
    graph.add_nodes_from(range(matrix.shape[0]))
    rows, cols = np.nonzero(matrix > 0)
    graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return graph


def is_strongly_connected(adjacency: np.ndarray) -> bool:
    """Return whether the directed graph of ``adjacency`` is strongly connected.

    This is the paper's condition for the *existence* of an invariant measure
    of the closed loop.
    """
    graph = _as_digraph(adjacency)
    if graph.number_of_nodes() == 1:
        return True
    return nx.is_strongly_connected(graph)


def is_aperiodic(adjacency: np.ndarray) -> bool:
    """Return whether the directed graph of ``adjacency`` is aperiodic.

    For a graph that is not strongly connected the period is assessed on its
    recurrent parts: every strongly connected component containing a cycle
    must itself be aperiodic.  A graph with no cycles at all is reported as
    not aperiodic (it has no recurrent behaviour to speak of).
    """
    graph = _as_digraph(adjacency)
    if graph.number_of_nodes() == 1:
        # A single vertex is aperiodic iff it has a self-loop.
        return bool(np.asarray(adjacency, dtype=float)[0, 0] > 0)
    if nx.is_strongly_connected(graph):
        return nx.is_aperiodic(graph)
    components = [
        graph.subgraph(component).copy()
        for component in nx.strongly_connected_components(graph)
    ]
    cyclic = [component for component in components if component.number_of_edges() > 0]
    if not cyclic:
        return False
    return all(nx.is_aperiodic(component) for component in cyclic)


def is_primitive(adjacency: np.ndarray) -> bool:
    """Return whether ``adjacency`` is a primitive non-negative matrix.

    A non-negative square matrix is primitive when some power of it is
    entrywise positive; equivalently, when its directed graph is strongly
    connected *and* aperiodic.  Primitivity is the paper's condition for the
    invariant measure to be attractive (unique ergodicity).
    """
    matrix = np.asarray(adjacency, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    if np.any(matrix < 0):
        raise ValueError("adjacency must be non-negative")
    return is_strongly_connected(matrix) and is_aperiodic(matrix)


def average_contraction_factor(
    system: MarkovSystem,
    num_pairs: int = 200,
    state_dimension: int = 1,
    state_scale: float = 1.0,
    rng: int | np.random.Generator | None = None,
) -> float:
    """Estimate the system's average contraction factor by sampling pairs.

    Random pairs of states are drawn uniformly from a centred cube of side
    ``2 * state_scale``; for each pair the average-contractivity ratio is
    computed and the worst ratio is returned.  A value below one suggests
    (but does not prove) that the system satisfies Werner's average
    contractivity condition on the sampled region.
    """
    if num_pairs <= 0:
        raise ValueError("num_pairs must be positive")
    generator = spawn_generator(rng)
    pairs: list[Tuple[np.ndarray, np.ndarray]] = []
    attempts = 0
    while len(pairs) < num_pairs and attempts < 50 * num_pairs:
        attempts += 1
        x = (generator.random(state_dimension) * 2.0 - 1.0) * state_scale
        y = (generator.random(state_dimension) * 2.0 - 1.0) * state_scale
        if system.vertex_of(x) == system.vertex_of(y):
            pairs.append((x, y))
    if not pairs:
        raise ValueError("could not sample state pairs within a single partition cell")
    return system.average_contractivity(pairs)


@dataclass(frozen=True)
class ErgodicityReport:
    """Summary of the ergodicity diagnostics of a Markov system.

    Attributes
    ----------
    strongly_connected:
        Whether the underlying directed graph is strongly connected
        (existence of an invariant measure).
    aperiodic:
        Whether the graph is aperiodic.
    primitive:
        Whether the adjacency matrix is primitive (attractive invariant
        measure, unique ergodicity).
    contraction_factor:
        Sampled worst-case average contraction factor (``None`` when the
        estimate was not requested).
    """

    strongly_connected: bool
    aperiodic: bool
    primitive: bool
    contraction_factor: float | None

    @property
    def invariant_measure_exists(self) -> bool:
        """Return the paper's existence conclusion."""
        return self.strongly_connected

    @property
    def uniquely_ergodic(self) -> bool:
        """Return the paper's unique-ergodicity conclusion."""
        return self.primitive

    def summary(self) -> str:
        """Return a one-paragraph human-readable summary."""
        lines = [
            f"strongly connected: {self.strongly_connected}",
            f"aperiodic: {self.aperiodic}",
            f"primitive: {self.primitive}",
        ]
        if self.contraction_factor is not None:
            lines.append(f"sampled average contraction factor: {self.contraction_factor:.4f}")
        lines.append(
            "conclusion: "
            + (
                "uniquely ergodic (attractive invariant measure)"
                if self.uniquely_ergodic
                else "invariant measure exists"
                if self.invariant_measure_exists
                else "no ergodicity guarantee"
            )
        )
        return "\n".join(lines)


def check_ergodicity(
    system: MarkovSystem,
    *,
    estimate_contraction: bool = True,
    num_pairs: int = 200,
    state_dimension: int = 1,
    state_scale: float = 1.0,
    rng: int | np.random.Generator | None = None,
) -> ErgodicityReport:
    """Run the paper's ergodicity checklist on ``system``.

    The graph conditions (strong connectivity, aperiodicity, primitivity)
    are exact; the contraction factor is a sampled estimate controlled by
    ``num_pairs`` / ``state_dimension`` / ``state_scale``.
    """
    adjacency = system.adjacency_matrix()
    contraction = None
    if estimate_contraction:
        contraction = average_contraction_factor(
            system,
            num_pairs=num_pairs,
            state_dimension=state_dimension,
            state_scale=state_scale,
            rng=rng,
        )
    return ErgodicityReport(
        strongly_connected=is_strongly_connected(adjacency),
        aperiodic=is_aperiodic(adjacency),
        primitive=is_primitive(adjacency),
        contraction_factor=contraction,
    )
