"""Command-line interface: regenerate any table or figure from a terminal.

Installed as the ``repro`` module's ``__main__``-style entry point::

    python -m repro.cli fig3 --users 400 --trials 3
    python -m repro.cli table1
    python -m repro.cli ablation-baselines --users 250 --trials 2
    python -m repro.cli all --full
    python -m repro.cli fig3 --users 1000000 --trials 2 --history-mode aggregate
    python -m repro.cli campaign --spec grid.toml --campaign-cache .campaign-cache

Each sub-command prints the plain-text rendering of the corresponding
artefact of the paper (Table I, Figures 2-5) or of the ablations and
extension experiments; ``campaign`` sweeps a declarative scenario grid
through the content-addressed result cache (see :mod:`repro.campaign`).
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, Sequence

from repro.experiments import (
    CaseStudyConfig,
    baseline_comparison,
    drift_comparison,
    ergodicity_ablation,
    fig2_income_distribution,
    fig3_race_adr,
    fig4_user_adr,
    fig5_density,
    run_experiment,
    steering_comparison,
    table1_scorecard_result,
)

__all__ = ["build_parser", "main"]


#: Sub-commands whose group-level output supports the memory-bounded
#: ``--history-mode aggregate`` path; everything else needs per-user rows.
#: fig5 joined the list when the streaming per-step rate histograms landed.
_AGGREGATE_CAPABLE = ("fig3", "fig4", "fig5")


def _config_from_arguments(arguments: argparse.Namespace) -> CaseStudyConfig:
    shared = dict(
        seed=arguments.seed,
        history_mode=arguments.history_mode,
        num_shards=arguments.shards,
        shard_parallel=arguments.shard_parallel,
        retrain_mode=arguments.retrain_mode,
        warm_start=arguments.warm_start,
        trial_batch=arguments.trial_batch,
        checkpoint_dir=arguments.checkpoint_dir,
        checkpoint_every=arguments.checkpoint_every,
        resume=arguments.resume,
        execution=arguments.execution,
    )
    if arguments.full:
        return CaseStudyConfig(**shared)
    return CaseStudyConfig(
        num_users=arguments.users,
        num_trials=arguments.trials,
        **shared,
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the closed-loop equal-impact paper.",
    )
    parser.add_argument("--users", type=int, default=300, help="users per trial (default 300)")
    parser.add_argument("--trials", type=int, default=2, help="number of trials (default 2)")
    parser.add_argument("--seed", type=int, default=20240101, help="master random seed")
    parser.add_argument(
        "--full", action="store_true", help="use the paper-scale configuration (1000 users, 5 trials)"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "worker shards per trial (intra-trial parallelism); results are "
            "bit-identical for every value — the random schedule depends only "
            "on the population's canonical shard partition, never on the "
            "worker count (pass --shard-parallel to actually use a process "
            "pool; otherwise the shards run serially in-process)"
        ),
    )
    parser.add_argument(
        "--shard-parallel",
        action="store_true",
        help="execute each trial's worker shards on a process pool",
    )
    parser.add_argument(
        "--trial-batch",
        action="store_true",
        help=(
            "run all trials in lockstep through the trial-batched tensor "
            "engine: (trials x users) fused per-step math, bit-identical "
            "to the serial trial loop; the winning strategy on few cores "
            "with many trials (takes precedence over trial pooling and "
            "ignores --shard-parallel)"
        ),
    )
    parser.add_argument(
        "--execution",
        choices=["auto", "serial", "batch", "pool", "shard"],
        default=None,
        help=(
            "one knob in front of the three execution layouts, resolved by "
            "the planner from (cpu_count, trials, users, steps, checkpoint "
            "knobs): 'serial' runs in-process, 'batch' runs trials in "
            "lockstep (the tensor engine), 'pool' runs trials on a process "
            "pool, 'shard' splits each trial's users over a worker pool, "
            "and 'auto' picks — possibly composing pooled trials with "
            "sharded users.  Every choice is bit-identical; this knob only "
            "changes the wall clock.  Replaces --trial-batch and "
            "--shard-parallel (combining them is rejected); --shards is "
            "treated as a worker-count hint"
        ),
    )
    parser.add_argument(
        "--retrain-mode",
        choices=["exact", "compressed"],
        default="exact",
        help=(
            "yearly scorecard refit strategy: 'exact' (default) runs the "
            "row-level IRLS over every user, reproducing the paper bit for "
            "bit; 'compressed' deduplicates the degenerate training set "
            "into a sufficient-statistics count table so each refit costs "
            "O(unique rows) — coefficients agree to solver tolerance and "
            "decisions are identical at paper scale"
        ),
    )
    parser.add_argument(
        "--warm-start",
        action="store_true",
        help=(
            "seed each yearly refit at the previous year's parameters "
            "(fewer Newton iterations; changes the iteration path, not the "
            "optimum, so it is off by default)"
        ),
    )
    parser.add_argument(
        "--history-mode",
        choices=["full", "aggregate"],
        default="full",
        help=(
            "trajectory recording mode: 'full' retains per-user history, "
            "'aggregate' streams group-level series and per-step rate "
            "histograms in bounded memory (million-user runs; fig3/fig4/fig5, "
            "bit-identical results)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "directory for crash-consistent per-trial snapshots and "
            "completed-trial results (enables fault-tolerant runs; see "
            "--checkpoint-every and --resume)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help=(
            "snapshot each trial's full loop state every N steps (0 "
            "disables; requires --checkpoint-dir).  Resumed runs are "
            "bit-identical to uninterrupted ones: the random streams are "
            "stateless per (trial, shard, step)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue an interrupted run from --checkpoint-dir: completed "
            "trials are skipped, interrupted trials restore their latest "
            "intact snapshot; a configuration mismatch is rejected with an "
            "actionable error"
        ),
    )
    parser.add_argument(
        "--spec",
        default=None,
        help=(
            "campaign spec file (.toml or .json) declaring the scenario x "
            "policy x population x seed grid; required by (and only used "
            "with) the campaign command"
        ),
    )
    parser.add_argument(
        "--campaign-cache",
        default=None,
        help=(
            "directory of the campaign's content-addressed result cache "
            "(default: .campaign-cache).  Re-running a completed campaign "
            "from the same cache is a pure cache read; an interrupted sweep "
            "resumes from the jobs already published"
        ),
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help=(
            "with campaign: print the plan (jobs, cache hits, core budget) "
            "and exit without running anything"
        ),
    )
    parser.add_argument(
        "command",
        choices=[
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "ablation-baselines",
            "ablation-ergodicity",
            "steering",
            "drift",
            "campaign",
            "all",
        ],
        help="which artefact to regenerate",
    )
    return parser


def _run_campaign_command(
    arguments: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """Handle the ``campaign`` sub-command: plan, sweep, report hit rate."""
    from repro.campaign import load_campaign_spec, plan_campaign, run_campaign

    if arguments.spec is None:
        parser.error("campaign needs a spec file: pass --spec grid.toml")
    cache_dir = arguments.campaign_cache or ".campaign-cache"
    try:
        spec = load_campaign_spec(arguments.spec)
    except (OSError, ValueError) as error:
        parser.error(str(error))
    plan = plan_campaign(spec, cache_dir)
    print(plan.describe())
    if arguments.dry_run:
        return 0
    result = run_campaign(spec, cache_dir)
    print()
    print(result.summary())
    return 0


def _figures(config: CaseStudyConfig, which: Sequence[str]) -> str:
    """Run the shared simulation once and render the requested figures."""
    experiment = run_experiment(config)
    renderers: Dict[str, Callable[[], str]] = {
        "fig3": lambda: fig3_race_adr(result=experiment).summary(),
        "fig4": lambda: fig4_user_adr(result=experiment).summary(),
        "fig5": lambda: fig5_density(result=experiment).summary(),
    }
    sections = []
    for name in which:
        sections.append(f"== {name} ==\n{renderers[name]()}")
    return "\n\n".join(sections)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: parse arguments, run the requested artefact, print it."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "campaign":
        # The campaign spec file carries its own grid and run options; the
        # per-experiment flags above do not apply.
        return _run_campaign_command(arguments, parser)
    if arguments.history_mode == "aggregate" and arguments.command not in _AGGREGATE_CAPABLE:
        parser.error(
            "--history-mode aggregate only supports the group-series figures "
            f"({', '.join(_AGGREGATE_CAPABLE)}); {arguments.command!r} needs per-user history"
        )
    try:
        config = _config_from_arguments(arguments)
    except ValueError as error:
        # e.g. --resume without --checkpoint-dir: surface the actionable
        # validation message as a usage error, not a traceback.
        parser.error(str(error))

    if arguments.command == "table1":
        print(table1_scorecard_result(config.scaled(num_trials=1)).summary())
    elif arguments.command == "fig2":
        print(fig2_income_distribution(config.end_year).summary())
    elif arguments.command in ("fig3", "fig4", "fig5"):
        print(_figures(config, [arguments.command]))
    elif arguments.command == "ablation-baselines":
        print(baseline_comparison(config).summary())
    elif arguments.command == "ablation-ergodicity":
        print(ergodicity_ablation().summary())
    elif arguments.command == "steering":
        print(steering_comparison(config).summary())
    elif arguments.command == "drift":
        print(drift_comparison(config).summary())
    elif arguments.command == "all":
        print("== table1 ==")
        print(table1_scorecard_result(config.scaled(num_trials=1)).summary())
        print("\n== fig2 ==")
        print(fig2_income_distribution(config.end_year).summary())
        print()
        print(_figures(config, ["fig3", "fig4", "fig5"]))
        print("\n== ablation-baselines ==")
        print(baseline_comparison(config).summary())
        print("\n== ablation-ergodicity ==")
        print(ergodicity_ablation().summary())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI tests
    raise SystemExit(main())
