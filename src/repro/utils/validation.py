"""Argument-validation helpers shared across the library.

All validators raise :class:`ValueError` with a message that names the
offending parameter, so configuration mistakes surface at construction time
rather than as silent numerical oddities deep inside a simulation.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_probability",
    "require_probability_vector",
    "require_in_range",
]


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if it is finite and strictly positive, else raise."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is finite and non-negative, else raise."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def require_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1], else raise."""
    if not math.isfinite(value) or value < 0 or value > 1:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def require_probability_vector(
    values: Sequence[float], name: str, *, atol: float = 1e-8
) -> np.ndarray:
    """Return ``values`` as an array if it is a probability vector.

    A probability vector has no negative entries and sums to one within
    ``atol``.  The returned array is a fresh ``float64`` copy, normalised so
    downstream code can rely on an exact unit sum.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D sequence")
    if np.any(~np.isfinite(array)) or np.any(array < -atol):
        raise ValueError(f"{name} must contain finite non-negative entries")
    total = float(array.sum())
    if abs(total - 1.0) > atol:
        raise ValueError(f"{name} must sum to 1 (got {total:.6g})")
    clipped = np.clip(array, 0.0, None)
    return clipped / clipped.sum()


def require_in_range(
    value: float, name: str, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Return ``value`` if it lies in ``[low, high]`` (or ``(low, high)``)."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must lie in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return float(value)
