"""Deterministic random-number management.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  The helpers here give one canonical way to
turn seeds into generators and to derive independent child seeds from a
parent seed plus a sequence of labels (for example ``("trial", 3)``), so that
experiments are reproducible and trials are statistically independent.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "derive_seed",
    "spawn_generator",
    "spawn_generators",
    "shard_seed",
    "shard_step_generator",
    "step_generator",
]

_MAX_SEED = 2**63 - 1


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of ``labels``.

    The derivation hashes the parent seed together with the textual
    representation of each label, so distinct label sequences yield
    (practically) independent child seeds while identical inputs always
    yield the same output.

    Parameters
    ----------
    seed:
        Parent seed, any Python integer.
    labels:
        Arbitrary hashable/printable objects identifying the child stream,
        e.g. ``derive_seed(7, "trial", 3, "income")``.

    Returns
    -------
    int
        A non-negative integer strictly below ``2**63 - 1``.
    """
    # SHA-256 over the concatenated byte stream; feeding the hash one
    # joined payload produces the identical digest as the incremental
    # per-label updates it replaces, with fewer C calls on the hot
    # per-step stream derivations.
    payload = str(int(seed)).encode("utf-8") + b"".join(
        b"/" + repr(label).encode("utf-8") for label in labels
    )
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") % _MAX_SEED


def spawn_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces an OS-entropy-seeded generator, an integer produces a
    deterministically seeded generator, and an existing generator is passed
    through unchanged (so callers can thread one generator through a whole
    simulation).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def shard_seed(seed: int, shard: int) -> int:
    """Return the seed of user-shard ``shard``'s independent stream.

    The sharded engine partitions every population into the *canonical*
    shards of :class:`repro.core.sharding.ShardPlan` and gives shard ``s``
    the stream rooted at ``derive_seed(seed, "shard", s)``.  The derivation
    depends only on the trial's base seed and the shard index — never on how
    many workers execute the shards — which is what makes sharded runs
    bit-identical for any worker count.
    """
    return derive_seed(seed, "shard", shard)


def step_generator(shard_seed_value: int, step: int) -> np.random.Generator:
    """Return the generator of step ``step`` for a pre-derived shard seed.

    ``shard_seed_value`` is the output of :func:`shard_seed`.  Hot loops
    (the closed loop's per-step stream derivation, the trial-batched
    engine's ``(trial, shard, step)`` walk) derive the shard seeds once and
    pay only the per-step half of the hash chain here; the stream is
    exactly :func:`shard_step_generator`'s.  ``Generator(PCG64(seed))`` is
    what ``default_rng(seed)`` constructs for an integer seed, minus its
    argument dispatch — the identical stream, measurably cheaper in a loop
    that builds one generator per ``(trial, shard, step)``.
    """
    return np.random.Generator(
        np.random.PCG64(derive_seed(shard_seed_value, "step", step))
    )


def shard_step_generator(
    seed: int, shard: int, step: int
) -> np.random.Generator:
    """Return the generator driving shard ``shard`` at time step ``step``.

    The stream is *stateless* across steps: the generator for ``(shard,
    step)`` is freshly derived as ``derive_seed(shard_seed(seed, shard),
    "step", step)``, so a worker can reproduce any shard's draws for any
    step from the base seed alone — no generator state ever needs to be
    shipped between processes, and chunked runs replay the exact stream of
    a single run.  Within one step the population consumes the generator
    sequentially (``begin_step`` first, then ``respond``).
    """
    return step_generator(shard_seed(seed, shard), step)


def spawn_generators(
    seed: int, labels: Iterable[object]
) -> list[np.random.Generator]:
    """Return one independent generator per label, derived from ``seed``.

    Useful for giving each trial of an experiment, or each user of a
    population, its own stream:  ``spawn_generators(7, range(5))``.
    """
    label_list: Sequence[object] = list(labels)
    return [np.random.default_rng(derive_seed(seed, label)) for label in label_list]
