"""Shared utilities: random-number management, validation, and statistics.

These helpers are deliberately small and dependency-free (beyond numpy) so
that every substrate package (:mod:`repro.markov`, :mod:`repro.credit`,
:mod:`repro.data`, ...) can rely on the same conventions for seeding,
argument validation, and time-series statistics.
"""

from repro.utils.rng import derive_seed, spawn_generator, spawn_generators
from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
    require_probability_vector,
)
from repro.utils.stats import (
    cesaro_averages,
    gini_coefficient,
    max_pairwise_gap,
    running_mean,
    tail_dispersion,
    time_average,
)

__all__ = [
    "derive_seed",
    "spawn_generator",
    "spawn_generators",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_probability",
    "require_probability_vector",
    "cesaro_averages",
    "gini_coefficient",
    "max_pairwise_gap",
    "running_mean",
    "tail_dispersion",
    "time_average",
]
