"""Time-series statistics used throughout the equal-impact analysis.

The central quantity in the paper is the Cesàro (running time) average

    (1 / (k + 1)) * sum_{j=0..k} y_i(j),

whose convergence to a user-independent constant *is* equal impact
(Definition 3).  The helpers here compute running averages, detect
convergence of their tails, and quantify dispersion across users.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "running_mean",
    "cesaro_averages",
    "time_average",
    "tail_dispersion",
    "max_pairwise_gap",
    "gini_coefficient",
]


def running_mean(values: Sequence[float]) -> np.ndarray:
    """Return the running mean of ``values``.

    Element ``k`` of the result equals ``mean(values[: k + 1])``.  The input
    must be non-empty.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    return np.cumsum(array) / np.arange(1, array.size + 1)


def cesaro_averages(series: np.ndarray, axis: int = -1) -> np.ndarray:
    """Return Cesàro averages of ``series`` along ``axis``.

    ``series`` may be any array of per-step observations; the result has the
    same shape, with entry ``k`` along ``axis`` equal to the mean of entries
    ``0..k``.  This is the vectorised, multi-user counterpart of
    :func:`running_mean`.
    """
    array = np.asarray(series, dtype=float)
    if array.size == 0:
        raise ValueError("series must be non-empty")
    length = array.shape[axis]
    counts_shape = [1] * array.ndim
    counts_shape[axis] = length
    counts = np.arange(1, length + 1, dtype=float).reshape(counts_shape)
    return np.cumsum(array, axis=axis) / counts


def time_average(series: Sequence[float]) -> float:
    """Return the plain time average of a scalar series."""
    array = np.asarray(series, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("series must be a non-empty 1-D sequence")
    return float(array.mean())


def tail_dispersion(series: Sequence[float], tail_fraction: float = 0.25) -> float:
    """Return the standard deviation of the trailing part of ``series``.

    A small tail dispersion of a running average is the practical signature
    of convergence to a limit: once the Cesàro average has settled, its last
    ``tail_fraction`` of samples barely move.
    """
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must lie in (0, 1]")
    array = np.asarray(series, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("series must be a non-empty 1-D sequence")
    tail_length = max(1, int(round(array.size * tail_fraction)))
    return float(np.std(array[-tail_length:]))


def max_pairwise_gap(values: Sequence[float]) -> float:
    """Return ``max(values) - min(values)``.

    Applied to the vector of per-user long-run averages ``r_i`` this is the
    natural scalar violation measure for equal impact: the definition holds
    exactly when the gap is zero.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    return float(array.max() - array.min())


def gini_coefficient(values: Sequence[float]) -> float:
    """Return the Gini coefficient of a non-negative vector.

    Used as an inequality summary of long-run outcomes across users; zero
    means perfectly equal impact, values near one mean the outcome is
    concentrated on few users.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    if np.any(array < 0):
        raise ValueError("values must be non-negative")
    total = array.sum()
    if total == 0:
        return 0.0
    sorted_values = np.sort(array)
    n = sorted_values.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * sorted_values) / (n * total)) - (n + 1) / n)
