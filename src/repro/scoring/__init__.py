"""Credit-scoring substrate: logistic regression, scorecards, and cut-offs.

The paper's AI system is a scorecard whose parameters are retrained each
year by logistic regression on two features — the income code
``1_{income >= $15K}`` and the user's previous average default rate — with a
fixed cut-off score of 0.4 deciding approval.  Everything needed for that
pipeline is implemented here from scratch (no scikit-learn): a numerically
careful logistic-regression solver, a scorecard representation matching the
paper's Table I, weight-of-evidence binning, score calibration, and the
cut-off decision rule.
"""

from repro.scoring.logistic import LogisticRegression, LogisticFit
from repro.scoring.scorecard import Scorecard, ScorecardFactor, paper_table1_scorecard
from repro.scoring.features import FeatureBuilder, income_code
from repro.scoring.suffstats import CompressedDesign, merge_tables
from repro.scoring.cutoff import CutoffPolicy
from repro.scoring.woe import WoeBin, WoeBinning, information_value
from repro.scoring.calibration import ScoreScaler
from repro.scoring.counterfactual import CounterfactualExplanation, explain_decision

__all__ = [
    "LogisticRegression",
    "LogisticFit",
    "Scorecard",
    "ScorecardFactor",
    "paper_table1_scorecard",
    "FeatureBuilder",
    "income_code",
    "CompressedDesign",
    "merge_tables",
    "CutoffPolicy",
    "WoeBin",
    "WoeBinning",
    "information_value",
    "ScoreScaler",
    "CounterfactualExplanation",
    "explain_decision",
]
