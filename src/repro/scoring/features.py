"""Feature engineering for the credit-scoring loop.

The paper's retraining step uses exactly two independent variables per user:
the income code ``1_{income >= $15K}`` (the lender only sees the code, not
the income itself) and the user's average default rate at the previous time
step.  :class:`FeatureBuilder` assembles that design matrix and keeps the
column order consistent between training and scoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["income_code", "clipped_default_rates", "FeatureBuilder"]


def clipped_default_rates(
    previous_default_rates: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Validate previous average default rates and clip them to ``[0, 1]``.

    Values up to ``1e-9`` outside the interval are tolerated (float noise
    from upstream aggregation) and clipped exactly onto it; anything
    further out raises.  Every retraining route — the row-level design
    matrix, the lender's compressed path and the sharded workers' count
    tables — shares this one definition, so serial and pooled runs can
    never disagree on which rates are acceptable.
    """
    rates = np.asarray(previous_default_rates, dtype=float)
    if rates.size and (
        float(rates.min()) < -1e-9 or float(rates.max()) > 1 + 1e-9
    ):
        raise ValueError("previous_default_rates must lie in [0, 1]")
    return np.clip(rates, 0.0, 1.0)


def income_code(incomes: Sequence[float] | np.ndarray, threshold: float = 15.0) -> np.ndarray:
    """Return the 0/1 income code ``1_{income >= threshold}``.

    ``threshold`` is in thousands of dollars; the paper uses $15K, matching
    the lowest CPS bracket boundary.
    """
    array = np.asarray(incomes, dtype=float)
    return (array >= threshold).astype(float)


@dataclass(frozen=True)
class FeatureBuilder:
    """Builds the (income code, previous ADR) design matrix of the paper.

    Attributes
    ----------
    income_threshold:
        Threshold (in $K) of the income code indicator.
    """

    income_threshold: float = 15.0

    #: Column order of the produced design matrix.
    feature_names: Tuple[str, str] = ("income_code", "average_default_rate")

    def design_matrix(
        self,
        incomes: Sequence[float] | np.ndarray,
        previous_default_rates: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        """Return the ``(n, 2)`` design matrix for ``n`` users.

        Column 0 is the income code, column 1 the previous average default
        rate, matching :attr:`feature_names`.
        """
        codes = income_code(incomes, self.income_threshold)
        rates = np.asarray(previous_default_rates, dtype=float)
        if codes.shape != rates.shape:
            raise ValueError("incomes and previous_default_rates must align")
        return np.column_stack([codes, clipped_default_rates(rates)])
