"""Counterfactual explanations for scorecard decisions.

Section VII of the paper notes that, alongside scorecards, counterfactual
explanations are the other route to the "statements of specific reasons for
adverse credit decisions" the Equal Credit Opportunity Act requires: they
tell a declined applicant the smallest change that would have flipped the
decision.  For a linear scorecard the computation is exact: the score
shortfall divided by the factor's points gives the required movement in
that factor.

:func:`explain_decision` produces one :class:`CounterfactualExplanation` per
actionable factor, sorted by how small the required change is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from repro.scoring.scorecard import Scorecard

__all__ = ["CounterfactualExplanation", "explain_decision"]


@dataclass(frozen=True)
class CounterfactualExplanation:
    """The smallest change in one factor that flips the decision.

    Attributes
    ----------
    factor:
        Name of the factor to change.
    current_value:
        The applicant's current (transformed) value of the factor.
    required_value:
        The value of the factor at which the score reaches the cut-off,
        holding every other factor fixed.
    change:
        ``required_value - current_value``.
    achievable:
        Whether the required value respects the factor's declared bounds.
    """

    factor: str
    current_value: float
    required_value: float
    change: float
    achievable: bool

    def describe(self) -> str:
        """Return a one-line human-readable recommendation."""
        direction = "increase" if self.change > 0 else "decrease"
        feasibility = "" if self.achievable else " (outside the feasible range)"
        return (
            f"{direction} {self.factor} from {self.current_value:.4g} "
            f"to {self.required_value:.4g}{feasibility}"
        )


def explain_decision(
    scorecard: Scorecard,
    features: Mapping[str, float],
    cutoff: float,
    bounds: Mapping[str, Tuple[float, float]] | None = None,
    margin: float = 1e-9,
) -> Sequence[CounterfactualExplanation]:
    """Explain how a declined applicant could cross the cut-off.

    Parameters
    ----------
    scorecard:
        The linear scorecard that produced the decision.  Factors with a
        ``transform`` are explained in terms of the *transformed* value (the
        quantity the points actually multiply), because the raw-to-
        transformed mapping need not be invertible.
    features:
        The applicant's raw factor values, keyed by factor name.
    cutoff:
        The decision cut-off the score must exceed.
    bounds:
        Optional feasible range per factor (in transformed units); a
        counterfactual outside the range is reported with
        ``achievable=False``.  Defaults assume default rates live in
        ``[0, 1]`` and indicator factors in ``{0, 1}``.
    margin:
        How far above the cut-off the counterfactual score should land.

    Returns
    -------
    Sequence[CounterfactualExplanation]
        One explanation per factor with non-zero points, sorted by the
        absolute size of the required change.  An applicant who is already
        above the cut-off gets an empty sequence.
    """
    current_score = scorecard.score(features)
    if current_score > cutoff:
        return []
    shortfall = cutoff - current_score + margin
    bounds = bounds or {}
    explanations = []
    for factor in scorecard.factors:
        if factor.points == 0.0:
            continue
        raw_value = float(features[factor.name])
        transformed = (
            float(factor.transform(raw_value)) if factor.transform is not None else raw_value
        )
        required = transformed + shortfall / factor.points
        if factor.name in bounds:
            low, high = bounds[factor.name]
        elif factor.transform is not None:
            low, high = 0.0, 1.0
        elif "rate" in factor.name:
            low, high = 0.0, 1.0
        else:
            low, high = float("-inf"), float("inf")
        explanations.append(
            CounterfactualExplanation(
                factor=factor.name,
                current_value=transformed,
                required_value=required,
                change=required - transformed,
                achievable=bool(low - 1e-12 <= required <= high + 1e-12),
            )
        )
    return sorted(explanations, key=lambda explanation: abs(explanation.change))
