"""Logistic regression implemented from scratch.

The paper retrains a logistic model every year on a small design matrix
(income code and previous average default rate), so the solver must be
robust to the degenerate situations that retraining-in-the-loop produces:
perfectly separable data, single-class labels, and collinear columns.  The
implementation uses iteratively reweighted least squares (Newton's method)
with an L2 ridge term and a gradient-descent fallback, and guards the
single-class case by returning an intercept-only model at the empirical log
odds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["LogisticFit", "LogisticRegression"]

_CLIP = 30.0  # logit clipping to keep exp() finite

# The raw gufunc behind ``np.linalg.solve`` for a single right-hand side.
# The yearly refits solve thousands of tiny (3, 3) Newton systems, where the
# public wrapper's argument checking costs several times the LAPACK call;
# invoking the gufunc directly produces the identical bits (it IS the
# computation the wrapper performs).  Guarded: the import is best-effort
# (private numpy module), and a non-finite result — the raw gufunc's
# signature for a singular system, which the wrapper would turn into
# ``LinAlgError`` — reroutes through the public wrapper so the exception
# semantics are unchanged.
try:  # pragma: no cover - depends on the numpy build
    from numpy.linalg import _umath_linalg as _raw_linalg_module

    # Resolve the gufunc itself defensively: numpy has reshaped this
    # private module before, so a build where it exists without ``solve1``
    # must land on the public wrapper below, not crash every fit.
    _raw_solve1 = getattr(_raw_linalg_module, "solve1", None)
    if _raw_solve1 is not None and not callable(_raw_solve1):
        _raw_solve1 = None
except Exception:  # pragma: no cover - older/newer numpy layouts
    _raw_solve1 = None


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    clipped = np.clip(z, -_CLIP, _CLIP)
    return 1.0 / (1.0 + np.exp(-clipped))


@dataclass(frozen=True)
class LogisticFit:
    """Result of fitting a logistic regression.

    Attributes
    ----------
    coefficients:
        Weights of each feature column, in input order.
    intercept:
        Intercept term.
    converged:
        Whether the optimiser reached its tolerance within the iteration
        budget.
    iterations:
        Number of optimiser iterations performed.
    log_likelihood:
        Penalised log-likelihood at the returned parameters.
    """

    coefficients: np.ndarray
    intercept: float
    converged: bool
    iterations: int
    log_likelihood: float


class LogisticRegression:
    """Binary logistic regression with L2 regularisation.

    Parameters
    ----------
    l2_penalty:
        Ridge penalty applied to the coefficients (not the intercept); a
        small positive default keeps the Newton step well-posed when the
        yearly retraining data happens to be separable.
    max_iterations:
        Iteration budget for the IRLS solver.
    tolerance:
        Convergence tolerance on the infinity norm of the parameter update.
    """

    def __init__(
        self,
        l2_penalty: float = 1e-3,
        max_iterations: int = 200,
        tolerance: float = 1e-8,
    ) -> None:
        self._l2_penalty = require_non_negative(l2_penalty, "l2_penalty")
        self._max_iterations = int(require_positive(max_iterations, "max_iterations"))
        self._tolerance = require_positive(tolerance, "tolerance")
        self._fit: LogisticFit | None = None

    @property
    def fit_result(self) -> LogisticFit:
        """Return the last fit, raising if the model has not been fitted."""
        if self._fit is None:
            raise RuntimeError("the model has not been fitted yet")
        return self._fit

    @property
    def coefficients(self) -> np.ndarray:
        """Return the fitted feature weights."""
        return self.fit_result.coefficients

    @property
    def intercept(self) -> float:
        """Return the fitted intercept."""
        return self.fit_result.intercept

    def fit(
        self,
        features: np.ndarray,
        labels: Sequence[int] | np.ndarray,
        sample_weights: Sequence[float] | np.ndarray | None = None,
        initial_parameters: Sequence[float] | np.ndarray | None = None,
    ) -> LogisticFit:
        """Fit the model on a design matrix and binary labels.

        Parameters
        ----------
        features:
            Array of shape ``(n, d)``; a 1-D input is treated as one column.
        labels:
            Binary labels in {0, 1}.
        sample_weights:
            Optional non-negative per-sample weights.  Integer multiplicities
            make the fit the exact weighted-likelihood equivalent of
            repeating each row ``weight`` times — the sufficient-statistics
            route of :mod:`repro.scoring.suffstats`.
        initial_parameters:
            Optional Newton starting point ``[intercept, *coefficients]``
            (warm start).  The yearly retraining loop seeds this with the
            previous year's parameters, which shrinks the iteration count;
            the optimum — and hence the converged parameters up to the
            solver tolerance — is unchanged.  Ignored by the single-class
            guard, which has a closed form.

        Returns
        -------
        LogisticFit
            The fitted parameters and solver diagnostics.  The fit is also
            stored on the estimator for use by :meth:`predict_probability`.
        """
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        y = np.asarray(labels, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and labels must have the same number of rows")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty data set")
        if np.any((y != 0.0) & (y != 1.0)):
            raise ValueError("labels must be binary (0 or 1)")
        if sample_weights is None:
            weights = np.ones_like(y)
        else:
            weights = np.asarray(sample_weights, dtype=float).ravel()
            if weights.shape != y.shape or np.any(weights < 0):
                raise ValueError("sample_weights must be non-negative, one per sample")

        if np.all(y == y[0]):
            self._fit = self._single_class_fit(x, y, weights)
            return self._fit

        design = np.hstack([np.ones((x.shape[0], 1)), x])
        if initial_parameters is None:
            theta = np.zeros(design.shape[1])
        else:
            theta = np.asarray(initial_parameters, dtype=float).ravel().copy()
            if theta.shape != (design.shape[1],):
                raise ValueError(
                    "initial_parameters must be [intercept, *coefficients] "
                    f"of length {design.shape[1]}, got length {theta.shape[0]}"
                )
            if not np.all(np.isfinite(theta)):
                raise ValueError("initial_parameters must be finite")
        penalty = np.full(design.shape[1], self._l2_penalty)
        penalty[0] = 0.0  # do not shrink the intercept

        # Warm starts can sit deep in the sigmoid's saturated region, where
        # the clipped log-likelihood is flat and the undamped Newton step
        # overshoots catastrophically (the Hessian is nearly singular
        # there).  Warm-started fits therefore backtrack each step until it
        # *strictly* improves the penalised log-likelihood — a flat plateau
        # never accepts a flight across it — and any stall, spurious
        # convergence (tiny step, large gradient) or exhausted iteration
        # budget falls back to the plain cold start, so a warm start can
        # only change the iteration path, never the robustness.  The
        # safeguards run only when warm-started: the cold-start iteration
        # stays byte-identical to the pre-warm-start solver.
        damped = initial_parameters is not None
        gradient_scale = (
            1e-6 * max(1.0, float(weights.sum())) if damped else float("inf")
        )
        converged = False
        stalled = False
        iterations = 0
        # The linear predictor of the CURRENT iterate is computed exactly
        # once per distinct theta (here, and at the bottom of the loop after
        # each accepted step) and shared by the sigmoid, the damped path's
        # log-likelihood and the final reported log-likelihood — the retired
        # code recomputed ``design @ theta`` and its clip inside
        # ``_log_likelihood`` per damped iteration and once more for the
        # final fit.  Same operations on the same values, so every iterate
        # is byte-identical (asserted in tests/scoring/test_logistic.py).
        z = design @ theta
        # Loop-invariant pieces, hoisted: the ridge diagonal added to every
        # Hessian and the transposed design are constants of the fit, so
        # rebuilding them per Newton iteration only cost dispatch.  The
        # per-iteration arithmetic is unchanged operation for operation.
        # The errstate guard covers the raw solve gufunc (whose singular
        # signature is a quiet nan, checked after each solve) — entered
        # once per fit rather than per iteration; none of the other loop
        # operations can raise floating-point warnings (the linear
        # predictor is clipped before the exponentials).
        design_transpose = design.T
        penalty_diagonal = np.diag(np.maximum(penalty, 1e-12))
        with np.errstate(all="ignore"):
            for iterations in range(1, self._max_iterations + 1):
                z_clipped = z.clip(-_CLIP, _CLIP)
                exp_negative = np.exp(-z_clipped)
                p = 1.0 / (1.0 + exp_negative)  # _sigmoid(z), sharing the clip
                gradient = design_transpose @ (weights * (y - p)) - penalty * theta
                w = np.maximum(weights * p * (1.0 - p), 1e-10)
                hessian = (design * w[:, None]).T @ design + penalty_diagonal
                update = None
                if _raw_solve1 is not None:
                    candidate = _raw_solve1(
                        hessian, gradient, signature="dd->d"
                    )
                    if np.isfinite(candidate).all():
                        update = candidate
                if update is None:
                    try:
                        update = np.linalg.solve(hessian, gradient)
                    except np.linalg.LinAlgError:
                        update = gradient / max(
                            float(np.max(np.abs(np.diag(hessian)))), 1.0
                        )
                if damped:
                    if float(np.abs(update).max()) < self._tolerance:
                        # A full Newton step already below tolerance: at the
                        # optimum (the best case of a warm start — accept
                        # without demanding a float-representable
                        # improvement), unless the gradient says this is a
                        # saturation plateau rather than stationarity.
                        if float(np.abs(gradient).max()) > gradient_scale:
                            stalled = True
                            break
                        theta = theta + update
                        z = design @ theta
                        converged = True
                        break
                    # The Newton direction is an ascent direction (the
                    # Hessian is positive definite), so some halved step
                    # improves the objective unless the float surface is
                    # locally flat — in which case the warm start is
                    # abandoned below.
                    current = self._penalised_log_likelihood(
                        z_clipped, y, weights, theta, penalty, exp_negative
                    )
                    chosen = None
                    step = update
                    for _ in range(30):
                        if (
                            self._log_likelihood(
                                design, y, weights, theta + step, penalty
                            )
                            > current
                        ):
                            chosen = step
                            break
                        step = 0.5 * step
                    if chosen is None:
                        stalled = True
                        break
                    update = chosen
                theta = theta + update
                z = design @ theta
                if float(np.abs(update).max()) < self._tolerance:
                    if damped and float(np.abs(gradient).max()) > gradient_scale:
                        stalled = True  # tiny halved step far from stationarity
                        break
                    converged = True
                    break

        if damped and (stalled or not converged):
            return self.fit(features, labels, sample_weights=sample_weights)

        self._fit = LogisticFit(
            coefficients=theta[1:].copy(),
            intercept=float(theta[0]),
            converged=converged,
            iterations=iterations,
            log_likelihood=self._penalised_log_likelihood(
                z.clip(-_CLIP, _CLIP), y, weights, theta, penalty
            ),
        )
        return self._fit

    def _single_class_fit(
        self, x: np.ndarray, y: np.ndarray, weights: np.ndarray
    ) -> LogisticFit:
        """Return an intercept-only fit when all labels coincide.

        With no variation in the label there is nothing for the slope terms
        to learn; the intercept is set at a clipped empirical log odds so
        downstream scoring still produces sensible probabilities near 0 or 1.
        """
        positive_rate = float(np.clip(np.average(y, weights=weights), 1e-4, 1 - 1e-4))
        intercept = float(np.log(positive_rate / (1.0 - positive_rate)))
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        theta = np.zeros(design.shape[1])
        theta[0] = intercept
        penalty = np.zeros(design.shape[1])
        return LogisticFit(
            coefficients=np.zeros(x.shape[1]),
            intercept=intercept,
            converged=True,
            iterations=0,
            log_likelihood=self._log_likelihood(design, y, weights, theta, penalty),
        )

    @staticmethod
    def _penalised_log_likelihood(
        z_clipped: np.ndarray,
        y: np.ndarray,
        weights: np.ndarray,
        theta: np.ndarray,
        penalty: np.ndarray,
        exp_negative: np.ndarray | None = None,
    ) -> float:
        """Penalised log-likelihood from a pre-clipped linear predictor.

        ``exp_negative`` (``exp(-z_clipped)``) may be shared by a caller
        that already computed it for the sigmoid; passing it changes no
        bits — it is the identical array the fallback recomputes.
        """
        if exp_negative is None:
            exp_negative = np.exp(-z_clipped)
        log_p = -np.log1p(exp_negative)
        log_one_minus_p = -np.log1p(np.exp(z_clipped))
        likelihood = float(np.sum(weights * (y * log_p + (1.0 - y) * log_one_minus_p)))
        return likelihood - 0.5 * float(np.sum(penalty * theta**2))

    @staticmethod
    def _log_likelihood(
        design: np.ndarray,
        y: np.ndarray,
        weights: np.ndarray,
        theta: np.ndarray,
        penalty: np.ndarray,
    ) -> float:
        z = np.clip(design @ theta, -_CLIP, _CLIP)
        return LogisticRegression._penalised_log_likelihood(
            z, y, weights, theta, penalty
        )

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Return the linear predictor (log odds) for each row of ``features``."""
        fit = self.fit_result
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        if x.shape[1] != fit.coefficients.shape[0]:
            raise ValueError(
                f"expected {fit.coefficients.shape[0]} feature columns, got {x.shape[1]}"
            )
        return x @ fit.coefficients + fit.intercept

    def predict_probability(self, features: np.ndarray) -> np.ndarray:
        """Return the predicted probability of the positive class."""
        return _sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Return hard 0/1 predictions at the given probability threshold."""
        return (self.predict_probability(features) >= threshold).astype(int)
