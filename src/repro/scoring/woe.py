"""Weight-of-evidence (WOE) binning and information value.

Scorecard practice (which the paper's Table I abstracts) usually converts
continuous factors into bins, replaces each bin by its weight of evidence

    WOE(bin) = ln( share of goods in bin / share of bads in bin ),

and summarises the factor's predictive strength by the information value

    IV = sum over bins of (share of goods - share of bads) * WOE.

This module provides equal-frequency binning with WOE assignment and the IV
summary; it is used by the extended examples to build richer scorecards than
the two-factor card of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["WoeBin", "WoeBinning", "information_value"]

_EPSILON = 0.5  # Laplace-style smoothing of empty bins, in observation counts


@dataclass(frozen=True)
class WoeBin:
    """One bin of a WOE binning.

    Attributes
    ----------
    lower, upper:
        Bin boundaries; the bin covers ``[lower, upper)`` except for the last
        bin, which is closed on the right.
    woe:
        Weight of evidence of the bin.
    good_share, bad_share:
        Smoothed shares of good (label 1) and bad (label 0) observations
        falling in the bin.
    count:
        Number of observations in the bin.
    """

    lower: float
    upper: float
    woe: float
    good_share: float
    bad_share: float
    count: int


class WoeBinning:
    """Equal-frequency WOE binning of one continuous factor."""

    def __init__(self, num_bins: int = 5) -> None:
        if num_bins < 2:
            raise ValueError("num_bins must be at least 2")
        self._num_bins = num_bins
        self._bins: Tuple[WoeBin, ...] | None = None
        self._edges: np.ndarray | None = None

    @property
    def bins(self) -> Tuple[WoeBin, ...]:
        """Return the fitted bins, raising if :meth:`fit` has not been called."""
        if self._bins is None:
            raise RuntimeError("the binning has not been fitted yet")
        return self._bins

    def fit(
        self, values: Sequence[float] | np.ndarray, labels: Sequence[int] | np.ndarray
    ) -> "WoeBinning":
        """Fit the binning on factor values and binary labels (1 = good)."""
        x = np.asarray(values, dtype=float).ravel()
        y = np.asarray(labels, dtype=float).ravel()
        if x.shape != y.shape or x.size == 0:
            raise ValueError("values and labels must be non-empty and aligned")
        if np.any((y != 0.0) & (y != 1.0)):
            raise ValueError("labels must be binary (0 or 1)")
        quantiles = np.linspace(0.0, 1.0, self._num_bins + 1)
        edges = np.unique(np.quantile(x, quantiles))
        if edges.size < 2:
            edges = np.array([x.min(), x.max() + 1.0])
        self._edges = edges
        total_good = float(y.sum())
        total_bad = float((1.0 - y).sum())
        bins = []
        for index in range(edges.size - 1):
            lower, upper = float(edges[index]), float(edges[index + 1])
            if index == edges.size - 2:
                mask = (x >= lower) & (x <= upper)
            else:
                mask = (x >= lower) & (x < upper)
            goods = float(y[mask].sum()) + _EPSILON
            bads = float((1.0 - y[mask]).sum()) + _EPSILON
            good_share = goods / (total_good + _EPSILON * (edges.size - 1))
            bad_share = bads / (total_bad + _EPSILON * (edges.size - 1))
            bins.append(
                WoeBin(
                    lower=lower,
                    upper=upper,
                    woe=float(np.log(good_share / bad_share)),
                    good_share=good_share,
                    bad_share=bad_share,
                    count=int(mask.sum()),
                )
            )
        self._bins = tuple(bins)
        return self

    def transform(self, values: Sequence[float] | np.ndarray) -> np.ndarray:
        """Replace each value by the WOE of the bin it falls into.

        Values outside the fitted range are assigned to the nearest boundary
        bin.
        """
        bins = self.bins
        x = np.asarray(values, dtype=float).ravel()
        woes = np.empty_like(x)
        lowers = np.array([b.lower for b in bins])
        for position, value in enumerate(x):
            index = int(np.searchsorted(lowers, value, side="right")) - 1
            index = min(max(index, 0), len(bins) - 1)
            woes[position] = bins[index].woe
        return woes


def information_value(binning: WoeBinning) -> float:
    """Return the information value of a fitted WOE binning.

    Conventional reading: below 0.02 the factor is useless, 0.02-0.1 weak,
    0.1-0.3 medium, above 0.3 strong.
    """
    return float(
        sum((b.good_share - b.bad_share) * b.woe for b in binning.bins)
    )
