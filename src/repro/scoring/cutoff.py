"""Cut-off decision rules.

A scorecard only produces a score; the lender converts scores into approve /
deny decisions by comparing against a cut-off.  The paper fixes the cut-off
at 0.4 on the log-odds score for every year of the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["CutoffPolicy"]


@dataclass(frozen=True)
class CutoffPolicy:
    """Approve when the score strictly exceeds ``cutoff``.

    Attributes
    ----------
    cutoff:
        The decision threshold on the score (paper default 0.4).
    approve_on_tie:
        Whether a score exactly equal to the cut-off is approved.
    """

    cutoff: float = 0.4
    approve_on_tie: bool = False

    def decide(self, scores: Sequence[float] | np.ndarray) -> np.ndarray:
        """Return 0/1 decisions (1 = approve) for each score."""
        array = np.asarray(scores, dtype=float)
        if self.approve_on_tie:
            return (array >= self.cutoff).astype(int)
        return (array > self.cutoff).astype(int)

    def approval_rate(self, scores: Sequence[float] | np.ndarray) -> float:
        """Return the fraction of scores that would be approved."""
        decisions = self.decide(scores)
        if decisions.size == 0:
            raise ValueError("scores must be non-empty")
        return float(decisions.mean())
