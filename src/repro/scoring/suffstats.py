"""Sufficient statistics for the yearly logistic refit.

The paper's retraining step fits a logistic model on exactly two features —
the 0/1 income code and the user's previous average default rate — against a
binary repayment label.  That design matrix is massively degenerate: the
income code takes two values, the previous rate is a ratio of small integer
counts (``defaults / offers`` with ``offers <= k`` at step ``k``), and the
label is binary, so a 100k–1M row training set collapses to at most a few
thousand distinct ``(code, rate, label)`` rows.  Because the logistic
log-likelihood, gradient and Hessian are all sums of per-row terms, the
unique rows plus their integer multiplicities are *exact sufficient
statistics*: a weighted fit on the compressed table optimises the same
objective as the row-level fit, at ``O(unique rows)`` per IRLS iteration
instead of ``O(users)``.

:class:`CompressedDesign` builds that table with one :func:`numpy.unique`
pass over a packed 64-bit key.  The packing exploits the feature ranges: a
finite ``float64`` rate in ``[0, 1]`` never uses its top two bits (sign is
zero, and the exponent stays below the bit-62 threshold because the value is
below 2.0), so the income code and the label slot into bits 63 and 62 and
the whole row becomes one ``uint64``.  Equal keys are bit-equal rows, so the
dedup is exact, and the sorted unique keys give a canonical row order that
is independent of the input permutation.

Count tables are also *shard-mergeable*: the multiplicities are ``int64``
counts, so merging per-shard tables by exact integer addition reproduces the
whole-population table bit for bit (:meth:`CompressedDesign.merge` /
:func:`merge_tables`).  The sharded closed-loop runner uses this to move the
per-year refit's O(users) scan onto the workers, leaving only a tiny
O(unique rows) central fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.scoring.logistic import _CLIP

__all__ = ["CompressedDesign", "merge_tables", "pack_rows"]

_CODE_BIT = np.uint64(63)
_LABEL_BIT = np.uint64(62)
_RATE_MASK = np.uint64((1 << 62) - 1)
_ONE = np.uint64(1)
#: Bit pattern of ``float64(1.0)``.  Non-negative finite floats are
#: monotone in their bit patterns, so a rate is finite in ``[0, 1]`` iff
#: its (sign-normalised) bits do not exceed this — NaN, inf and negative
#: values all map above it.
_ONE_BITS = np.uint64(0x3FF0000000000000)


def _binary_bits(values: np.ndarray, name: str) -> np.ndarray:
    """Validate a 0/1 column and return it as ``uint64``.

    Boolean input is inherently binary and casts straight through; for
    numeric input the integer cast is needed for the key packing anyway,
    so the validation costs only one comparison against the cast-back
    values (which also catches negative values and NaN, since both break
    the uint64 round-trip).
    """
    if values.dtype == np.bool_:
        return values.astype(np.uint64)
    with np.errstate(invalid="ignore"):
        bits = values.astype(np.uint64)
    if values.size and (
        int(bits.max()) > 1 or not np.array_equal(bits, values)
    ):
        raise ValueError(f"{name} must be binary (0 or 1)")
    return bits


def pack_rows(
    income_codes: np.ndarray,
    previous_rates: np.ndarray,
    labels: np.ndarray,
) -> np.ndarray:
    """Pack ``(code, rate, label)`` rows into validated ``uint64`` keys.

    The single definition of the key bit layout (rate bits below, code and
    label in bits 63/62 — see the module docstring), shared by
    :meth:`CompressedDesign.from_arrays` and the trial-batched engine's
    fused whole-experiment packing.  Works elementwise on any shape: a
    ``(trials, users)`` block packs in one pass and every row equals the
    per-trial 1-D packing bit for bit.
    """
    rates = np.asarray(previous_rates, dtype=float)
    # ``-0.0 + 0.0 == +0.0`` under round-to-nearest: normalising the sign
    # of zero keeps the rate's sign bit clear for the code bit.  The
    # addition also materialises a contiguous float64 copy for the bit
    # view below.
    rate_bits = (rates + 0.0).view(np.uint64)
    if rates.size and int(rate_bits.max()) > int(_ONE_BITS):
        raise ValueError("previous_rates must be finite and lie in [0, 1]")
    return (
        rate_bits
        | (_binary_bits(income_codes, "income_codes") << _CODE_BIT)
        | (_binary_bits(labels, "labels") << _LABEL_BIT)
    )


@dataclass(frozen=True)
class CompressedDesign:
    """Deduplicated ``(income_code, previous_rate, label)`` training rows.

    Attributes
    ----------
    keys:
        Packed ``uint64`` row keys, sorted ascending (canonical order).
    counts:
        ``int64`` multiplicity of each unique row; exact sufficient
        statistics, mergeable across shards by integer addition.
    """

    keys: np.ndarray
    counts: np.ndarray

    @property
    def num_unique(self) -> int:
        """Return the number of distinct training rows."""
        return int(self.keys.shape[0])

    @property
    def num_rows(self) -> int:
        """Return the total row count the table represents."""
        return int(self.counts.sum())

    @property
    def codes(self) -> np.ndarray:
        """Return the income code of each unique row."""
        return ((self.keys >> _CODE_BIT) & _ONE).astype(float)

    @property
    def rates(self) -> np.ndarray:
        """Return the previous average default rate of each unique row."""
        return (self.keys & _RATE_MASK).view(np.float64).copy()

    @property
    def labels(self) -> np.ndarray:
        """Return the binary label of each unique row."""
        return ((self.keys >> _LABEL_BIT) & _ONE).astype(float)

    @classmethod
    def from_arrays(
        cls,
        income_codes: Sequence[float] | np.ndarray,
        previous_rates: Sequence[float] | np.ndarray,
        labels: Sequence[int] | np.ndarray,
        offered: Sequence[int] | np.ndarray | None = None,
    ) -> "CompressedDesign":
        """Compress a row-level training set into unique rows and counts.

        Parameters
        ----------
        income_codes:
            0/1 income codes, one per user.
        previous_rates:
            Previous average default rates in ``[0, 1]``, one per user.
        labels:
            Binary labels in {0, 1}, one per user.
        offered:
            Optional 0/1 mask; rows where it is not 1 are dropped before
            compression (a denied user produces no observable label).
        """
        codes = np.asarray(income_codes).ravel()
        rates = np.asarray(previous_rates, dtype=float).ravel()
        label_array = np.asarray(labels).ravel()
        if not (codes.shape == rates.shape == label_array.shape):
            raise ValueError("income_codes, previous_rates and labels must align")
        keys = pack_rows(codes, rates, label_array)
        if offered is not None:
            mask = np.asarray(offered, dtype=float).ravel() == 1.0
            if mask.shape != codes.shape:
                raise ValueError("offered mask must have one entry per row")
            # Masking the packed keys (after validating the full columns,
            # exactly as the exact path's design matrix does) replaces
            # three gathers with one.
            keys = keys[mask]
        return cls.from_key_array(keys)

    @classmethod
    def from_key_array(cls, keys: np.ndarray) -> "CompressedDesign":
        """Compress pre-packed row keys (see :func:`pack_rows`) into a table."""
        unique_keys, counts = np.unique(keys, return_counts=True)
        return cls(keys=unique_keys, counts=counts.astype(np.int64))

    def design_matrix(self) -> np.ndarray:
        """Return the unique ``(num_unique, 2)`` design matrix.

        Column order matches
        :attr:`repro.scoring.features.FeatureBuilder.feature_names`:
        income code first, previous average default rate second.
        """
        return np.column_stack([self.codes, self.rates])

    def merge(self, other: "CompressedDesign") -> "CompressedDesign":
        """Merge two count tables by exact integer addition.

        The merge is associative and commutative, and merging the per-shard
        tables of any partition of a population reproduces the
        whole-population table bit for bit.
        """
        return merge_tables([self, other])

    def weighted_log_likelihood(self, theta: np.ndarray) -> float:
        """Return the unpenalised log-likelihood at ``theta`` (diagnostics).

        ``theta`` is ``[intercept, code_weight, rate_weight]``.  Up to float
        reassociation this equals the row-level log-likelihood of the
        uncompressed training set — the sufficient-statistics property the
        hypothesis suite pins.
        """
        parameters = np.asarray(theta, dtype=float).ravel()
        if parameters.shape != (3,):
            raise ValueError("theta must be [intercept, code_weight, rate_weight]")
        z = np.clip(
            parameters[0] + self.codes * parameters[1] + self.rates * parameters[2],
            -_CLIP,
            _CLIP,
        )
        log_p = -np.log1p(np.exp(-z))
        log_one_minus_p = -np.log1p(np.exp(z))
        y = self.labels
        terms = self.counts * (y * log_p + (1.0 - y) * log_one_minus_p)
        return float(terms.sum())


def merge_tables(tables: Iterable[CompressedDesign]) -> CompressedDesign:
    """Merge any number of count tables into one by exact integer addition."""
    table_list = [table for table in tables]
    if not table_list:
        raise ValueError("cannot merge an empty collection of tables")
    if len(table_list) == 1:
        only = table_list[0]
        return CompressedDesign(keys=only.keys.copy(), counts=only.counts.copy())
    all_keys = np.concatenate([table.keys for table in table_list])
    all_counts = np.concatenate([table.counts for table in table_list])
    unique_keys, inverse = np.unique(all_keys, return_inverse=True)
    merged_counts = np.zeros(unique_keys.shape[0], dtype=np.int64)
    np.add.at(merged_counts, inverse, all_counts)
    return CompressedDesign(keys=unique_keys, counts=merged_counts)
