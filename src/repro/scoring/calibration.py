"""Score scaling: converting log odds into conventional scorecard points.

Industry scorecards rarely report raw log odds; they rescale them so that a
chosen base score corresponds to chosen base odds and a fixed number of
points doubles the odds (PDO).  The paper works directly in log-odds units,
but the scaler is provided so the library's scorecards can be presented in
either convention — and so the cut-off of 0.4 log odds can be translated
into a conventional points cut-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import require_positive

__all__ = ["ScoreScaler"]


@dataclass(frozen=True)
class ScoreScaler:
    """Affine map from log odds to scorecard points.

    Attributes
    ----------
    base_score:
        Points assigned at ``base_odds`` (e.g. 600 points at odds 30:1).
    base_odds:
        Odds of being good at the base score.
    points_to_double_odds:
        Points added whenever the odds double (PDO; e.g. 20).
    """

    base_score: float = 600.0
    base_odds: float = 30.0
    points_to_double_odds: float = 20.0

    def __post_init__(self) -> None:
        require_positive(self.base_odds, "base_odds")
        require_positive(self.points_to_double_odds, "points_to_double_odds")

    @property
    def factor(self) -> float:
        """Return the multiplicative factor applied to log odds."""
        return self.points_to_double_odds / float(np.log(2.0))

    @property
    def offset(self) -> float:
        """Return the additive offset of the scaling."""
        return self.base_score - self.factor * float(np.log(self.base_odds))

    def points_from_log_odds(self, log_odds: Sequence[float] | np.ndarray | float) -> np.ndarray:
        """Convert log odds into scorecard points."""
        return self.offset + self.factor * np.asarray(log_odds, dtype=float)

    def log_odds_from_points(self, points: Sequence[float] | np.ndarray | float) -> np.ndarray:
        """Convert scorecard points back into log odds."""
        return (np.asarray(points, dtype=float) - self.offset) / self.factor

    def probability_from_points(self, points: Sequence[float] | np.ndarray | float) -> np.ndarray:
        """Return the probability of being good implied by the points."""
        log_odds = self.log_odds_from_points(points)
        return 1.0 / (1.0 + np.exp(-np.clip(log_odds, -30.0, 30.0)))
