"""Scorecards: the explainable credit models of the paper's case study.

A scorecard assigns points per factor and sums them (plus an optional base
score).  The paper's Table I is the two-factor card

    score = -8.17 * average default rate + 5.77 * 1_{income >= $15K},

so a user with income $50K and average default rate 0.1 scores
``-8.17 * 0.1 + 5.77 = 4.953``.  Scorecards in this module can be written by
hand, or derived from a fitted logistic regression so that the yearly
retraining loop produces a fresh, explainable card each year.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence, Tuple

import numpy as np

from repro.scoring.logistic import LogisticRegression

__all__ = ["ScorecardFactor", "Scorecard", "paper_table1_scorecard"]


@dataclass(frozen=True)
class ScorecardFactor:
    """One row of a scorecard.

    Attributes
    ----------
    name:
        Factor name; it doubles as the key looked up in the feature mapping
        passed to :meth:`Scorecard.score`.
    points:
        Points contributed per unit of the (transformed) factor value.
    transform:
        Optional transformation applied to the raw feature before the points
        multiply it (e.g. an income-threshold indicator).  Defaults to the
        identity.
    description:
        Human-readable description used by :meth:`Scorecard.table`.
    vectorized_transform:
        Declare that ``transform`` is *elementwise batch-aware*: it maps an
        array to the equal-shape array of per-element scalar results, so
        :meth:`Scorecard.score_matrix` may evaluate it once per column
        instead of once per row.  Opt-in on purpose — a scalar-contract
        transform that happens to accept arrays non-elementwise (e.g. one
        that subtracts a column mean) would silently change scores if the
        batch path were inferred by duck typing.
    """

    name: str
    points: float
    transform: Callable[[float], float] | None = None
    description: str = ""
    vectorized_transform: bool = False

    def contribution(self, raw_value: float) -> float:
        """Return this factor's contribution to the total score."""
        value = float(raw_value)
        if self.transform is not None:
            value = float(self.transform(value))
        return self.points * value


def _transform_column(factor: "ScorecardFactor", values: np.ndarray) -> np.ndarray:
    """Apply a factor's transform to a whole feature column.

    A factor declared ``vectorized_transform`` is evaluated in one batch
    call (guarded: a raised exception or a shape mismatch falls back to the
    per-row loop, so a mis-declared transform degrades to correct-but-slow
    instead of crashing); every other factor keeps the per-row loop.  For
    an elementwise transform — which is what the declaration asserts — both
    routes evaluate the same function on the same values, so the scores are
    bit-identical either way.
    """
    transform = factor.transform
    if factor.vectorized_transform:
        try:
            batch = np.asarray(transform(values), dtype=float)
        except Exception:
            batch = None
        if batch is not None and batch.shape == values.shape:
            return batch
    return np.array([float(transform(value)) for value in values])


class Scorecard:
    """A linear, explainable scoring model built from named factors."""

    def __init__(
        self, factors: Sequence[ScorecardFactor], base_score: float = 0.0
    ) -> None:
        if not factors:
            raise ValueError("a scorecard needs at least one factor")
        names = [factor.name for factor in factors]
        if len(set(names)) != len(names):
            raise ValueError("factor names must be unique")
        self._factors: Tuple[ScorecardFactor, ...] = tuple(factors)
        self._base_score = float(base_score)

    @property
    def factors(self) -> Tuple[ScorecardFactor, ...]:
        """Return the scorecard's factors."""
        return self._factors

    @property
    def base_score(self) -> float:
        """Return the base (intercept) score."""
        return self._base_score

    @property
    def factor_names(self) -> Tuple[str, ...]:
        """Return the names of the factors, in order."""
        return tuple(factor.name for factor in self._factors)

    def score(self, features: Mapping[str, float]) -> float:
        """Score a single user given a mapping from factor name to raw value.

        Raises :class:`KeyError` when a factor is missing from ``features``.
        """
        total = self._base_score
        for factor in self._factors:
            if factor.name not in features:
                raise KeyError(f"missing feature {factor.name!r}")
            total += factor.contribution(features[factor.name])
        return total

    def score_matrix(self, features: np.ndarray) -> np.ndarray:
        """Score many users at once.

        ``features`` must have one column per factor, in the scorecard's
        factor order; transforms are applied columnwise.
        """
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix[:, None]
        if matrix.shape[1] != len(self._factors):
            raise ValueError(
                f"expected {len(self._factors)} feature columns, got {matrix.shape[1]}"
            )
        scores = np.full(matrix.shape[0], self._base_score, dtype=float)
        for column, factor in enumerate(self._factors):
            values = matrix[:, column]
            if factor.transform is not None:
                values = _transform_column(factor, values)
            scores += factor.points * values
        return scores

    @classmethod
    def from_logistic(
        cls,
        model: LogisticRegression,
        feature_names: Sequence[str],
        descriptions: Mapping[str, str] | None = None,
        include_intercept: bool = True,
    ) -> "Scorecard":
        """Build a scorecard whose points are a fitted logistic model's weights.

        The resulting score is the model's linear predictor (log odds), which
        is exactly how the paper turns the yearly retrained logistic model
        into the scorecard used for decisions.
        """
        fit = model.fit_result
        if len(feature_names) != fit.coefficients.shape[0]:
            raise ValueError("feature_names must match the number of coefficients")
        descriptions = descriptions or {}
        factors = [
            ScorecardFactor(
                name=name,
                points=float(weight),
                description=descriptions.get(name, ""),
            )
            for name, weight in zip(feature_names, fit.coefficients)
        ]
        base = fit.intercept if include_intercept else 0.0
        return cls(factors=factors, base_score=base)

    def table(self) -> str:
        """Return a plain-text rendering in the style of the paper's Table I."""
        lines = ["Factor                     Points    Description"]
        lines.append("-" * 60)
        for factor in self._factors:
            lines.append(
                f"{factor.name:<26} {factor.points:>+8.3f}  {factor.description}"
            )
        if self._base_score != 0.0:
            lines.append(f"{'(base score)':<26} {self._base_score:>+8.3f}")
        return "\n".join(lines)


def paper_table1_scorecard(income_threshold: float = 15.0) -> Scorecard:
    """Return the exact scorecard of the paper's Table I.

    Factors: average default rate with −8.17 points per unit, and the income
    code ``1_{income >= income_threshold}`` (threshold in $K) with +5.77
    points.
    """

    def income_indicator(income):
        # Batch-aware on purpose: score_matrix evaluates it once per
        # column instead of once per row (scalars still work — the 0-d
        # result floats cleanly in ScorecardFactor.contribution).
        return (np.asarray(income, dtype=float) > income_threshold).astype(float)

    return Scorecard(
        factors=[
            ScorecardFactor(
                name="average_default_rate",
                points=-8.17,
                description="x Average Default Rate",
            ),
            ScorecardFactor(
                name="income",
                points=5.77,
                transform=income_indicator,
                description=f"> ${income_threshold:.0f}K indicator",
                vectorized_transform=True,
            ),
        ],
        base_score=0.0,
    )
