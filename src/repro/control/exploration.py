"""Epsilon-greedy exploration: keeping the loop's graph strongly connected.

Section VI ties the existence of an invariant measure — the backbone of
equal impact — to strong connectivity of the Markov system's graph: from
every state the loop must be able to reach every other state.  A scorecard
that permanently locks out users with a poor history destroys that
connectivity (the "locked out" state becomes absorbing).  The epsilon-greedy
wrapper restores it mechanically: every denial is flipped to an approval
with a small probability, so every user's history keeps receiving fresh
observations.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.ai_system import AISystem
from repro.utils.rng import spawn_generator
from repro.utils.validation import require_probability

__all__ = ["EpsilonGreedyPolicy"]


class EpsilonGreedyPolicy:
    """Wrap any decision policy and explore denied users with probability epsilon.

    Parameters
    ----------
    base_policy:
        The wrapped decision policy (any :class:`AISystem`).
    epsilon:
        Probability with which each denial is flipped to an approval.
    seed:
        Seed of the wrapper's private exploration randomness (kept separate
        from the loop's stream so wrapping a policy does not perturb the
        base policy's decisions).
    """

    def __init__(self, base_policy: AISystem, epsilon: float = 0.05, seed: int = 0) -> None:
        self._base_policy = base_policy
        self._epsilon = require_probability(epsilon, "epsilon")
        self._rng = spawn_generator(seed)
        self._explored_last_round: np.ndarray | None = None

    @property
    def base_policy(self) -> AISystem:
        """Return the wrapped policy."""
        return self._base_policy

    @property
    def epsilon(self) -> float:
        """Return the exploration probability."""
        return self._epsilon

    @property
    def explored_last_round(self) -> np.ndarray | None:
        """Return the 0/1 mask of users explored at the last decision round."""
        return (
            None
            if self._explored_last_round is None
            else self._explored_last_round.copy()
        )

    def decide(
        self,
        public_features: Mapping[str, np.ndarray],
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> np.ndarray:
        """Take the base decisions, then flip each denial with probability epsilon."""
        decisions = np.asarray(
            self._base_policy.decide(public_features, observation, k), dtype=float
        ).copy()
        denied = decisions == 0.0
        exploration_draws = self._rng.random(decisions.shape) < self._epsilon
        explored = denied & exploration_draws
        decisions[explored] = 1.0
        self._explored_last_round = explored.astype(float)
        return decisions

    def update(
        self,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> None:
        """Delegate retraining to the wrapped policy."""
        self._base_policy.update(public_features, decisions, actions, observation, k)
