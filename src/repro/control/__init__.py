"""Feedback-control interventions on the closed loop.

The paper closes with the question of *how to impose constraints on the
equality of impact* and, throughout Section VI, with the observation that
the controller's structure (integral action, stability, connectivity of the
induced Markov graph) decides whether the loop is ergodic at all.  This
package provides three controllers in that spirit, each implementing the
:class:`repro.core.ai_system.AISystem` protocol so it drops straight into
:class:`repro.core.loop.ClosedLoop`:

* :class:`ImpactSteeringPolicy` — wraps the retraining scorecard lender and
  adds a score boost proportional to how far a user's historical default
  rate exceeds the population average, so users with poor histories keep
  receiving occasional offers and their long-run average can recover (a
  proportional controller on the equal-impact gap).
* :class:`EpsilonGreedyPolicy` — wraps any decision policy and flips each
  denial to an approval with a small exploration probability; this keeps
  every user's outcome graph strongly connected, which is exactly the
  condition Section VI needs for an invariant measure to exist.
* :class:`IntegralCutoffController` — adjusts a scorecard cut-off by
  integral feedback to track a target approval rate; the textbook integral
  action whose effect on ergodicity the ablation E-A2 probes.
"""

from repro.control.steering import ImpactSteeringPolicy
from repro.control.exploration import EpsilonGreedyPolicy
from repro.control.cutoff_control import IntegralCutoffController

__all__ = [
    "ImpactSteeringPolicy",
    "EpsilonGreedyPolicy",
    "IntegralCutoffController",
]
