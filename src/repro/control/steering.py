"""Equal-impact steering: a proportional controller on the impact gap.

The retraining scorecard punishes users with a poor average default rate;
once denied, such a user's rate is frozen and can never recover, so the
loop's long-run averages need not equalise.  The steering policy adds to
each user's score a boost proportional to how far their historical default
rate exceeds the population average,

    score'_i = score_i + gain * max(0, ADR_i - mean ADR),

so the users the plain scorecard would permanently exclude keep receiving
occasional offers, their histories keep evolving, and the loop is steered
towards equal impact.  The boost uses only the filtered feedback signal —
never the protected attribute.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.ai_system import CreditScoringSystem
from repro.credit.lender import Lender
from repro.scoring.cutoff import CutoffPolicy
from repro.utils.validation import require_non_negative

__all__ = ["ImpactSteeringPolicy"]


class ImpactSteeringPolicy:
    """Retraining scorecard lender with a proportional equal-impact boost.

    Parameters
    ----------
    gain:
        Proportional gain applied to the positive part of the user's
        default-rate deviation from the population mean.  A gain of zero
        reproduces the plain retraining scorecard.
    lender:
        The wrapped retraining lender (defaults to the paper's
        configuration).
    """

    def __init__(self, gain: float = 5.0, lender: Lender | None = None) -> None:
        self._gain = require_non_negative(gain, "gain")
        self._lender = lender or Lender()
        self._cutoff_policy = CutoffPolicy(cutoff=self._lender.cutoff)
        self._last_boost: np.ndarray | None = None

    @property
    def gain(self) -> float:
        """Return the proportional gain."""
        return self._gain

    @property
    def lender(self) -> Lender:
        """Return the wrapped lender."""
        return self._lender

    @property
    def last_boost(self) -> np.ndarray | None:
        """Return the per-user boost applied at the last decision round."""
        return None if self._last_boost is None else self._last_boost.copy()

    def decide(
        self,
        public_features: Mapping[str, np.ndarray],
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> np.ndarray:
        """Score with the current card, add the impact boost, and decide."""
        incomes = np.asarray(public_features["income"], dtype=float)
        rates = np.asarray(observation["user_default_rates"], dtype=float)
        decision = self._lender.decide(incomes, rates)
        if decision.warm_up:
            self._last_boost = np.zeros(incomes.size)
            return decision.decisions.astype(float)
        boost = self._gain * np.clip(rates - float(rates.mean()), 0.0, None)
        self._last_boost = boost
        boosted_scores = decision.scores + boost
        return self._cutoff_policy.decide(boosted_scores).astype(float)

    def update(
        self,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> None:
        """Retrain the wrapped lender exactly like the plain scorecard system."""
        incomes = np.asarray(public_features["income"], dtype=float)
        rates = np.asarray(observation["user_default_rates"], dtype=float)
        self._lender.retrain(
            incomes,
            rates,
            np.asarray(actions, dtype=float),
            offered=np.asarray(decisions, dtype=float),
        )


def plain_system_for_comparison(cutoff: float = 0.4, warm_up_rounds: int = 2) -> CreditScoringSystem:
    """Return the unsteered retraining system with matching parameters.

    Convenience used by the steering ablation so both arms share their
    configuration in one place.
    """
    return CreditScoringSystem(Lender(cutoff=cutoff, warm_up_rounds=warm_up_rounds))
