"""Integral cut-off control: tracking a target approval rate.

A lender that wants to keep its approval rate (or, equivalently, the volume
of lending) on target can close a second loop around the scorecard: measure
the realised approval rate, integrate the tracking error, and move the
cut-off accordingly.  This is exactly the integral action whose effect on
the ergodic properties of ensembles Section VI warns about (following
Fioravanti et al. 2019) — useful both as a realistic lender behaviour and
as the knob the ergodicity ablation turns.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.credit.lender import Lender
from repro.scoring.cutoff import CutoffPolicy
from repro.utils.validation import require_non_negative, require_probability

__all__ = ["IntegralCutoffController"]


class IntegralCutoffController:
    """Retraining scorecard lender whose cut-off tracks a target approval rate.

    Parameters
    ----------
    target_approval_rate:
        Desired share of approved users per round.
    gain:
        Integral gain: the cut-off moves by ``gain * (approval - target)``
        after every post-warm-up round (approving too many raises the bar).
    lender:
        The wrapped retraining lender.
    cutoff_bounds:
        Hard bounds keeping the adapted cut-off in a sane range.
    """

    def __init__(
        self,
        target_approval_rate: float = 0.9,
        gain: float = 1.0,
        lender: Lender | None = None,
        cutoff_bounds: tuple[float, float] = (-10.0, 10.0),
    ) -> None:
        self._target = require_probability(target_approval_rate, "target_approval_rate")
        self._gain = require_non_negative(gain, "gain")
        self._lender = lender or Lender()
        if cutoff_bounds[0] > cutoff_bounds[1]:
            raise ValueError("cutoff_bounds must be ordered (low, high)")
        self._bounds = (float(cutoff_bounds[0]), float(cutoff_bounds[1]))
        self._cutoff = float(self._lender.cutoff)
        self._cutoff_history: list[float] = []

    @property
    def cutoff(self) -> float:
        """Return the current (adapted) cut-off."""
        return self._cutoff

    @property
    def cutoff_history(self) -> list[float]:
        """Return the cut-off used at each post-warm-up decision round."""
        return list(self._cutoff_history)

    @property
    def target_approval_rate(self) -> float:
        """Return the approval-rate target."""
        return self._target

    @property
    def lender(self) -> Lender:
        """Return the wrapped lender."""
        return self._lender

    def decide(
        self,
        public_features: Mapping[str, np.ndarray],
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> np.ndarray:
        """Score with the current card and the adapted cut-off, then adapt it."""
        incomes = np.asarray(public_features["income"], dtype=float)
        rates = np.asarray(observation["user_default_rates"], dtype=float)
        decision = self._lender.decide(incomes, rates)
        if decision.warm_up:
            return decision.decisions.astype(float)
        policy = CutoffPolicy(cutoff=self._cutoff)
        decisions = policy.decide(decision.scores).astype(float)
        self._cutoff_history.append(self._cutoff)
        approval_rate = float(decisions.mean())
        adapted = self._cutoff + self._gain * (approval_rate - self._target)
        self._cutoff = float(np.clip(adapted, self._bounds[0], self._bounds[1]))
        return decisions

    def update(
        self,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> None:
        """Retrain the wrapped lender on the delayed feedback."""
        incomes = np.asarray(public_features["income"], dtype=float)
        rates = np.asarray(observation["user_default_rates"], dtype=float)
        self._lender.retrain(
            incomes,
            rates,
            np.asarray(actions, dtype=float),
            offered=np.asarray(decisions, dtype=float),
        )
