"""Baseline decision policies the paper's introduction motivates.

Each baseline implements the :class:`repro.core.ai_system.AISystem`
protocol, so it can be dropped into the closed loop in place of the
retraining scorecard lender:

* :class:`UniformLimitPolicy` — the introduction's "most equal treatment
  possible": a fixed $50K credit line for everyone who has never defaulted
  (pair it with ``MortgageTerms(fixed_principal=50)``).
* :class:`IncomeMultiplePolicy` — the introduction's alternative: an
  income-proportional credit limit offered to everyone above a minimal
  income (the proportionality itself lives in the mortgage terms).
* :class:`StaticCreditScoringSystem` — the retraining lender frozen after
  its first training round: the open-loop, concept-drift-blind scorecard.
* :class:`GroupThresholdPolicy` — a demographic-parity post-processing
  baseline that chooses group-specific cut-offs to equalise approval rates.
"""

from repro.baselines.uniform_limit import UniformLimitPolicy
from repro.baselines.income_multiple import IncomeMultiplePolicy
from repro.baselines.static_model import StaticCreditScoringSystem
from repro.baselines.parity import GroupThresholdPolicy

__all__ = [
    "UniformLimitPolicy",
    "IncomeMultiplePolicy",
    "StaticCreditScoringSystem",
    "GroupThresholdPolicy",
]
