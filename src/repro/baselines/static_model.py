"""The never-retrained scorecard: the open-loop baseline.

The paper stresses that practical AI systems are retrained over time
("concept drift ... ignored by most analyses").  This baseline quantifies
what the retraining buys: the lender trains its scorecard once, right after
the warm-up years, and then keeps applying the same card forever, ignoring
every later observation.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.ai_system import CreditScoringSystem
from repro.credit.lender import Lender

__all__ = ["StaticCreditScoringSystem"]


class StaticCreditScoringSystem(CreditScoringSystem):
    """A credit-scoring system that stops retraining after the first fit.

    Parameters
    ----------
    lender:
        The wrapped lender (defaults to the paper's configuration).
    training_rounds:
        Number of initial ``update`` calls that actually retrain; later
        calls are ignored.  The default of 1 trains exactly once, on the
        data produced by the warm-up years.
    """

    def __init__(self, lender: Lender | None = None, training_rounds: int = 1) -> None:
        super().__init__(lender=lender)
        if training_rounds < 1:
            raise ValueError("training_rounds must be at least 1")
        self._training_rounds = int(training_rounds)
        self._updates_done = 0

    @property
    def training_rounds(self) -> int:
        """Return how many update calls are allowed to retrain."""
        return self._training_rounds

    @property
    def updates_done(self) -> int:
        """Return how many retraining rounds have actually happened."""
        return self._updates_done

    def update(
        self,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> None:
        """Retrain only during the first ``training_rounds`` update calls."""
        if self._updates_done >= self._training_rounds:
            return None
        super().update(public_features, decisions, actions, observation, k)
        self._updates_done += 1
        return None
