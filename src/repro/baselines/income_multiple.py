"""The income-proportional credit-limit baseline.

The paper's introduction contrasts the uniform $50K limit with a credit
limit set at a multiple of the annual salary: the lower-income subgroup
receives smaller loans (a violation of equal treatment on the raw amounts)
but can repay them, build a history, and eventually enjoy an equal impact.

In the library the proportional loan size lives in the mortgage terms of
the population; the decision rule here simply approves everyone whose
income clears a minimal bar (and whose default history is not catastrophic,
if a cap is configured).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

__all__ = ["IncomeMultiplePolicy"]


class IncomeMultiplePolicy:
    """Approve users above a minimal income, with an optional default-rate cap.

    Parameters
    ----------
    minimum_income:
        Smallest income (in $K) still offered a loan; the default of 0
        approves everyone, reflecting that the loan amount — not the
        approval — is what scales with income.
    max_default_rate:
        Optional cap on the historical average default rate; ``None`` means
        no cap.
    """

    def __init__(
        self, minimum_income: float = 0.0, max_default_rate: float | None = None
    ) -> None:
        if minimum_income < 0:
            raise ValueError("minimum_income must be non-negative")
        if max_default_rate is not None and not 0.0 <= max_default_rate <= 1.0:
            raise ValueError("max_default_rate must lie in [0, 1] when given")
        self._minimum_income = float(minimum_income)
        self._max_default_rate = max_default_rate

    @property
    def minimum_income(self) -> float:
        """Return the minimal income required for approval."""
        return self._minimum_income

    def decide(
        self,
        public_features: Mapping[str, np.ndarray],
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> np.ndarray:
        """Approve users above the income bar (and under the optional cap)."""
        incomes = np.asarray(public_features["income"], dtype=float)
        approved = incomes >= self._minimum_income
        if self._max_default_rate is not None:
            rates = np.asarray(observation["user_default_rates"], dtype=float)
            approved &= rates <= self._max_default_rate
        return approved.astype(float)

    def update(
        self,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> None:
        """The proportional rule has nothing to retrain."""
        return None
