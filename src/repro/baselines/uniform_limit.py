"""The uniform-credit-limit baseline (pure equal treatment).

The paper's introduction describes the policy: "everyone who has not
defaulted on any loan is approved a credit up to $50000.  Anyone else is
declined credit."  It treats everyone identically — and, as the paper
argues, over time the lower-income subgroup defaults more often on the
fixed-size loan, gets locked out, and equal impact fails.

The decision rule only needs the filtered default history; the $50K loan
size itself is configured on the population side via
``MortgageTerms(fixed_principal=50)``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

__all__ = ["UniformLimitPolicy"]


class UniformLimitPolicy:
    """Approve every user whose average default rate does not exceed a tolerance.

    Parameters
    ----------
    max_default_rate:
        Largest historical average default rate still approved.  The paper's
        wording ("has not defaulted on any loan") corresponds to the default
        of 0; a small positive tolerance models a slightly forgiving lender.
    """

    def __init__(self, max_default_rate: float = 0.0) -> None:
        if not 0.0 <= max_default_rate <= 1.0:
            raise ValueError("max_default_rate must lie in [0, 1]")
        self._max_default_rate = float(max_default_rate)

    @property
    def max_default_rate(self) -> float:
        """Return the approval tolerance on the historical default rate."""
        return self._max_default_rate

    def decide(
        self,
        public_features: Mapping[str, np.ndarray],
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> np.ndarray:
        """Approve users whose historical default rate is within tolerance."""
        rates = np.asarray(observation["user_default_rates"], dtype=float)
        return (rates <= self._max_default_rate).astype(float)

    def update(
        self,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> None:
        """The uniform rule has nothing to retrain."""
        return None
