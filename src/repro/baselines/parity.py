"""Demographic-parity post-processing baseline.

Group-fairness interventions of the kind the related-work section surveys
(demographic parity, equal opportunity) operate within a single pass of the
loop: they adjust decision thresholds per group so that approval *rates*
match.  This baseline implements the simplest such post-processor on top of
a retraining scorecard lender, so experiments can contrast "equalise the
treatment rates now" with "equalise the impact in the long run".

Note that, unlike every other policy in the library, this baseline consumes
the protected attribute — that is the point of the comparison.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.credit.lender import Lender

__all__ = ["GroupThresholdPolicy"]


class GroupThresholdPolicy:
    """Scorecard lender with per-group thresholds targeting a common approval rate.

    Parameters
    ----------
    groups:
        Mapping from group key to the array of user indices in that group.
    target_approval_rate:
        Desired approval rate in every group, applied to the score
        distribution of each group separately (each group's threshold is the
        corresponding quantile of its scores).
    lender:
        The wrapped retraining lender.
    """

    def __init__(
        self,
        groups: Mapping[object, np.ndarray],
        target_approval_rate: float = 0.9,
        lender: Lender | None = None,
    ) -> None:
        if not groups:
            raise ValueError("groups must not be empty")
        if not 0.0 < target_approval_rate <= 1.0:
            raise ValueError("target_approval_rate must lie in (0, 1]")
        self._groups = {key: np.asarray(indices, dtype=int) for key, indices in groups.items()}
        self._target = float(target_approval_rate)
        self._lender = lender or Lender()

    @property
    def lender(self) -> Lender:
        """Return the wrapped lender."""
        return self._lender

    @property
    def target_approval_rate(self) -> float:
        """Return the per-group approval-rate target."""
        return self._target

    def decide(
        self,
        public_features: Mapping[str, np.ndarray],
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> np.ndarray:
        """Score everyone, then approve the top share within every group."""
        incomes = np.asarray(public_features["income"], dtype=float)
        rates = np.asarray(observation["user_default_rates"], dtype=float)
        decision = self._lender.decide(incomes, rates)
        if decision.warm_up:
            return decision.decisions.astype(float)
        scores = decision.scores
        approvals = np.zeros_like(scores)
        for indices in self._groups.values():
            if indices.size == 0:
                continue
            group_scores = scores[indices]
            # Approve the top share of the group by score rank.  Rank-based
            # selection (rather than a score threshold) keeps the approval
            # rate on target even when scores are heavily tied, which they
            # are whenever both features are near-binary.
            num_approved = int(round(self._target * indices.size))
            if num_approved == 0:
                continue
            order = np.argsort(group_scores)[::-1]
            approvals[indices[order[:num_approved]]] = 1.0
        return approvals

    def update(
        self,
        public_features: Mapping[str, np.ndarray],
        decisions: np.ndarray,
        actions: np.ndarray,
        observation: Mapping[str, np.ndarray | float],
        k: int,
    ) -> None:
        """Retrain the wrapped lender exactly like the unconstrained system."""
        incomes = np.asarray(public_features["income"], dtype=float)
        rates = np.asarray(observation["user_default_rates"], dtype=float)
        self._lender.retrain(
            incomes,
            rates,
            np.asarray(actions, dtype=float),
            offered=np.asarray(decisions, dtype=float),
        )
