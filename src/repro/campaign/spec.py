"""Declarative campaign specifications and their expansion into jobs.

A campaign is a grid: income scenario × policy arm × population size ×
seed × retrain mode.  The spec is pure data — arm *references* by
registered name plus keyword parameters, never live objects — so it can be
written in TOML/JSON, hashed into cache keys, and pickled to worker
processes.  :func:`expand_campaign` turns the grid into concrete
:class:`CampaignJob` entries, each a ready-to-run
:class:`~repro.experiments.config.CaseStudyConfig` plus the arm references
that decorate it.

The scenario registry maps onto :mod:`repro.data.scenarios` (income-table
drift) and the policy registry onto the paper's lender, the baseline
policies (:mod:`repro.baselines`) and the control-theoretic interventions
(:mod:`repro.control`).  Registered names are the spec's vocabulary;
unknown names fail at validation time with the known vocabulary in the
error, not at job 900 of a sweep.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Sequence, Tuple

from repro.core.ai_system import AISystem, CreditScoringSystem
from repro.core.planner import EXECUTION_MODES
from repro.core.population import CreditPopulation
from repro.baselines import (
    GroupThresholdPolicy,
    IncomeMultiplePolicy,
    StaticCreditScoringSystem,
    UniformLimitPolicy,
)
from repro.control import EpsilonGreedyPolicy, ImpactSteeringPolicy
from repro.credit.lender import Lender
from repro.data.census import IncomeTable, Race
from repro.data.scenarios import recession_scenario, widening_gap_scenario
from repro.experiments.config import CaseStudyConfig

__all__ = [
    "ArmRef",
    "CampaignJob",
    "CampaignSpec",
    "expand_campaign",
    "load_campaign_spec",
    "policy_names",
    "scenario_names",
]

#: Registered scenario names → the keyword parameters they accept.
_SCENARIOS: Dict[str, Tuple[str, ...]] = {
    "baseline": (),
    "recession": ("shock_years", "downshift"),
    "widening-gap": ("disadvantaged", "annual_downshift", "start_year"),
}

#: Registered policy names → the keyword parameters they accept.
_POLICIES: Dict[str, Tuple[str, ...]] = {
    "retraining": (),
    "static": ("training_rounds",),
    "uniform-limit": ("max_default_rate",),
    "income-multiple": ("minimum_income", "max_default_rate"),
    "parity": ("target_approval_rate",),
    "steering": ("gain",),
    "epsilon-greedy": ("epsilon", "exploration_seed"),
}


def scenario_names() -> Tuple[str, ...]:
    """Return the registered scenario names, sorted."""
    return tuple(sorted(_SCENARIOS))


def policy_names() -> Tuple[str, ...]:
    """Return the registered policy-arm names, sorted."""
    return tuple(sorted(_POLICIES))


@dataclass(frozen=True)
class ArmRef:
    """Reference to a registered scenario or policy arm, by name.

    Parameters travel as a sorted tuple of ``(key, value)`` pairs so the
    reference is hashable, picklable, and has one canonical repr — the
    form the cache key digests.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    def param_dict(self) -> Dict[str, object]:
        """Return the parameters as a plain dict."""
        return dict(self.params)

    def label(self) -> str:
        """Return a compact human label (name, plus params when present)."""
        if not self.params:
            return self.name
        inner = ",".join(f"{key}={value!r}" for key, value in self.params)
        return f"{self.name}({inner})"


def _normalize_arm(
    entry: object, registry: Mapping[str, Tuple[str, ...]], kind: str
) -> ArmRef:
    """Canonicalise a spec entry (string or mapping) into an :class:`ArmRef`."""
    if isinstance(entry, ArmRef):
        name, params = entry.name, entry.param_dict()
    elif isinstance(entry, str):
        name, params = entry, {}
    elif isinstance(entry, Mapping):
        if "name" not in entry:
            raise ValueError(
                f'a {kind} table needs a "name" key naming the arm '
                f"(known {kind}s: {', '.join(sorted(registry))})"
            )
        params = {str(key): value for key, value in entry.items() if key != "name"}
        name = str(entry["name"])
    else:
        raise ValueError(
            f"a {kind} entry must be a name or a table, got {entry!r}"
        )
    if name not in registry:
        raise ValueError(
            f"unknown {kind} {name!r}; known {kind}s: {', '.join(sorted(registry))}"
        )
    allowed = registry[name]
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ValueError(
            f"{kind} {name!r} does not accept parameter(s) "
            f"{', '.join(unknown)}; it accepts: {', '.join(allowed) or '(none)'}"
        )
    # Lists from TOML/JSON become tuples so the reference stays hashable.
    canonical = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in params.items()
    }
    return ArmRef(name=name, params=tuple(sorted(canonical.items())))


def build_scenario_table(scenario: ArmRef) -> IncomeTable | None:
    """Materialise a scenario reference into its income table.

    ``None`` means the baseline table — :func:`run_experiment` then falls
    back to :func:`~repro.data.census.default_income_table`, keeping the
    golden reproduction path untouched.
    """
    params = scenario.param_dict()
    if scenario.name == "baseline":
        return None
    if scenario.name == "recession":
        return recession_scenario(
            shock_years=tuple(params.get("shock_years", (2008, 2009))),
            downshift=float(params.get("downshift", 0.35)),
        )
    if scenario.name == "widening-gap":
        disadvantaged = params.get("disadvantaged", Race.BLACK)
        if isinstance(disadvantaged, str):
            try:
                disadvantaged = Race[disadvantaged.upper().replace(" ", "_")]
            except KeyError:
                raise ValueError(
                    f"unknown race {params['disadvantaged']!r}; "
                    f"known: {', '.join(race.name for race in Race)}"
                ) from None
        return widening_gap_scenario(
            disadvantaged=disadvantaged,
            annual_downshift=float(params.get("annual_downshift", 0.03)),
            start_year=int(params.get("start_year", 2010)),
        )
    raise ValueError(f"unknown scenario {scenario.name!r}")  # pragma: no cover


@dataclass(frozen=True)
class _ArmFactory:
    """Picklable policy factory for one registered arm.

    A module-level frozen dataclass (not a closure) so trial pools and
    campaign job workers can pickle it by reference; ``__call__`` matches
    the :data:`~repro.experiments.runner.PolicyFactory` signature.
    """

    arm: ArmRef

    def _lender(self, config: CaseStudyConfig) -> Lender:
        return Lender(
            cutoff=config.cutoff,
            warm_up_rounds=config.warm_up_rounds,
            retrain_mode=config.retrain_mode,
            warm_start=config.warm_start,
        )

    def __call__(
        self, config: CaseStudyConfig, population: CreditPopulation
    ) -> AISystem:
        params = self.arm.param_dict()
        name = self.arm.name
        if name == "retraining":
            return CreditScoringSystem(self._lender(config))
        if name == "static":
            return StaticCreditScoringSystem(
                self._lender(config),
                training_rounds=int(params.get("training_rounds", 1)),
            )
        if name == "uniform-limit":
            return UniformLimitPolicy(
                max_default_rate=float(params.get("max_default_rate", 0.0))
            )
        if name == "income-multiple":
            cap = params.get("max_default_rate")
            return IncomeMultiplePolicy(
                minimum_income=float(params.get("minimum_income", 0.0)),
                max_default_rate=None if cap is None else float(cap),
            )
        if name == "parity":
            return GroupThresholdPolicy(
                population.groups,
                target_approval_rate=float(params.get("target_approval_rate", 0.9)),
                lender=self._lender(config),
            )
        if name == "steering":
            return ImpactSteeringPolicy(
                gain=float(params.get("gain", 5.0)), lender=self._lender(config)
            )
        if name == "epsilon-greedy":
            return EpsilonGreedyPolicy(
                CreditScoringSystem(self._lender(config)),
                epsilon=float(params.get("epsilon", 0.05)),
                seed=int(params.get("exploration_seed", 0)),
            )
        raise ValueError(f"unknown policy arm {name!r}")  # pragma: no cover


def build_policy_factory(policy: ArmRef) -> _ArmFactory:
    """Return the picklable policy factory of one registered arm."""
    return _ArmFactory(arm=policy)


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative grid of closed-loop experiments.

    Grid axes (part of every job's cache identity): ``scenarios`` ×
    ``policies`` × ``population_sizes`` × ``seeds`` × ``retrain_modes``,
    with the shared calendar window, trial count, recording mode and
    warm-start flag.  Run options (``execution``, ``max_workers``,
    ``num_shards``, ``shard_transport``) steer only *how* jobs execute —
    every layout is bit-identical — and are excluded from cache keys.
    """

    name: str = "campaign"
    scenarios: Tuple[ArmRef, ...] = (ArmRef("baseline"),)
    policies: Tuple[ArmRef, ...] = (ArmRef("retraining"),)
    population_sizes: Tuple[int, ...] = (1000,)
    seeds: Tuple[int, ...] = (20240101,)
    num_trials: int = 5
    start_year: int = 2002
    end_year: int = 2020
    history_mode: str = "aggregate"
    retrain_modes: Tuple[str, ...] = ("exact",)
    warm_start: bool = False
    race_mix: Mapping[Race, float] | None = None
    # Run options — pure execution plumbing, never part of a cache key.
    execution: str = "auto"
    max_workers: int | None = None
    num_shards: int | None = None
    shard_transport: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "scenarios",
            tuple(_normalize_arm(arm, _SCENARIOS, "scenario") for arm in self.scenarios),
        )
        object.__setattr__(
            self,
            "policies",
            tuple(_normalize_arm(arm, _POLICIES, "policy") for arm in self.policies),
        )
        object.__setattr__(self, "population_sizes", tuple(self.population_sizes))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "retrain_modes", tuple(self.retrain_modes))
        if not self.scenarios or not self.policies:
            raise ValueError("a campaign needs at least one scenario and one policy")
        if not self.population_sizes or not self.seeds or not self.retrain_modes:
            raise ValueError(
                "population_sizes, seeds and retrain_modes must be non-empty"
            )
        for size in self.population_sizes:
            if int(size) <= 0:
                raise ValueError(f"population sizes must be positive, got {size}")
        if self.num_trials <= 0:
            raise ValueError("num_trials must be positive")
        if self.history_mode not in ("full", "aggregate"):
            raise ValueError(
                f'history_mode must be "full" or "aggregate", got {self.history_mode!r}'
            )
        for mode in self.retrain_modes:
            if mode not in ("exact", "compressed"):
                raise ValueError(
                    f'retrain modes must be "exact" or "compressed", got {mode!r}'
                )
        if self.execution not in EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {EXECUTION_MODES}, got {self.execution!r}"
            )
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError("max_workers must be positive when given")
        if self.num_shards is not None and self.num_shards <= 0:
            raise ValueError("num_shards must be positive when given")
        if self.shard_transport not in (None, "shared", "pickle"):
            raise ValueError(
                'shard_transport must be "shared" or "pickle" when given, '
                f"got {self.shard_transport!r}"
            )

    @property
    def grid_size(self) -> int:
        """Return the number of jobs the grid expands into."""
        return (
            len(self.scenarios)
            * len(self.policies)
            * len(self.population_sizes)
            * len(self.seeds)
            * len(self.retrain_modes)
        )


@dataclass(frozen=True)
class CampaignJob:
    """One cell of an expanded campaign grid.

    ``config`` carries every trajectory-defining knob; the arm references
    carry what the config cannot (which income table, which policy).  The
    job never holds live tables or policies — workers rebuild them from
    the references, keeping the job picklable and hashable.
    """

    index: int
    job_id: str
    scenario: ArmRef
    policy: ArmRef
    config: CaseStudyConfig

    def income_table(self) -> IncomeTable | None:
        """Materialise this job's income scenario (``None`` = baseline)."""
        return build_scenario_table(self.scenario)

    def policy_factory(self) -> _ArmFactory:
        """Return this job's picklable policy factory."""
        return build_policy_factory(self.policy)


def expand_campaign(spec: CampaignSpec) -> Tuple[CampaignJob, ...]:
    """Expand a spec's grid into concrete jobs, in deterministic order.

    The product order (scenario, policy, population size, seed, retrain
    mode) is part of the campaign's observable behaviour: job indices are
    stable across runs, which is what the chaos suite's "kill job K,
    resume" cell relies on.
    """
    jobs = []
    for scenario in spec.scenarios:
        for policy in spec.policies:
            for size in spec.population_sizes:
                for seed in spec.seeds:
                    for retrain_mode in spec.retrain_modes:
                        config = CaseStudyConfig(
                            num_users=int(size),
                            num_trials=spec.num_trials,
                            start_year=spec.start_year,
                            end_year=spec.end_year,
                            **(
                                {"race_mix": dict(spec.race_mix)}
                                if spec.race_mix is not None
                                else {}
                            ),
                            seed=int(seed),
                            history_mode=spec.history_mode,
                            retrain_mode=retrain_mode,
                            warm_start=spec.warm_start,
                        )
                        job_id = "/".join(
                            (
                                scenario.label(),
                                policy.label(),
                                f"u{int(size)}",
                                f"seed{int(seed)}",
                                retrain_mode,
                            )
                        )
                        jobs.append(
                            CampaignJob(
                                index=len(jobs),
                                job_id=job_id,
                                scenario=scenario,
                                policy=policy,
                                config=config,
                            )
                        )
    return tuple(jobs)


def _spec_from_mapping(data: Mapping[str, object], origin: str) -> CampaignSpec:
    """Build a :class:`CampaignSpec` from parsed TOML/JSON data."""
    if not isinstance(data, Mapping):
        raise ValueError(f"{origin}: the spec must be a table/object at top level")
    payload = dict(data)
    run_options = payload.pop("run", {})
    if not isinstance(run_options, Mapping):
        raise ValueError(f'{origin}: the "run" section must be a table/object')
    known = {
        "name",
        "scenarios",
        "policies",
        "population_sizes",
        "seeds",
        "num_trials",
        "start_year",
        "end_year",
        "history_mode",
        "retrain_modes",
        "warm_start",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(
            f"{origin}: unknown spec key(s) {', '.join(unknown)}; "
            f"known keys: {', '.join(sorted(known))} (plus a [run] section)"
        )
    known_run = {"execution", "max_workers", "num_shards", "shard_transport"}
    unknown_run = sorted(set(run_options) - known_run)
    if unknown_run:
        raise ValueError(
            f"{origin}: unknown [run] key(s) {', '.join(unknown_run)}; "
            f"known keys: {', '.join(sorted(known_run))}"
        )
    kwargs: Dict[str, object] = {}
    for key, value in payload.items():
        if key in ("scenarios", "policies", "population_sizes", "seeds", "retrain_modes"):
            if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
                raise ValueError(f"{origin}: {key} must be an array")
            kwargs[key] = tuple(value)
        else:
            kwargs[key] = value
    kwargs.update(run_options)
    try:
        return CampaignSpec(**kwargs)  # type: ignore[arg-type]
    except (TypeError, ValueError) as error:
        raise ValueError(f"{origin}: invalid campaign spec: {error}") from error


def load_campaign_spec(path: str | Path) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file.

    The format mirrors :class:`CampaignSpec` field for field; scenario and
    policy entries are names or tables (``{name = "recession", downshift =
    0.25}``), and execution plumbing lives in a ``[run]`` section.
    """
    spec_path = Path(path)
    suffix = spec_path.suffix.lower()
    if suffix == ".toml":
        with open(spec_path, "rb") as handle:
            data = tomllib.load(handle)
    elif suffix == ".json":
        with open(spec_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        raise ValueError(
            f"campaign specs are TOML or JSON files, got {spec_path.name!r}"
        )
    return _spec_from_mapping(data, origin=spec_path.name)
