"""Campaign orchestration: declarative scenario grids over the closed loop.

The experiments layer runs *one* configuration at a time; the campaign
layer runs the cross product the paper's discussion section gestures at —
"as many scenarios as you can imagine" — without recomputing anything
twice:

* :class:`~repro.campaign.spec.CampaignSpec` declares a grid of income
  scenario × policy arm × population size × seed × retrain mode, loadable
  from TOML/JSON, and expands into concrete
  :class:`~repro.campaign.spec.CampaignJob` configurations.
* :class:`~repro.campaign.cache.ResultCache` is a content-addressed store
  of completed job results: the key hashes exactly the trajectory-defining
  fields (:func:`~repro.experiments.runner.trajectory_fingerprint_fields`
  plus the arm identity), never the execution layout, so an entry written
  under any layout hits under every other, and re-running a campaign is a
  pure cache read.
* :func:`~repro.campaign.runner.run_campaign` executes the cache misses
  through the planner with a shared core budget
  (:func:`~repro.core.planner.plan_campaign_jobs`), supervised retries,
  and crash-safe resume: each completed job lands in the cache atomically,
  so an interrupted sweep restarts where it died.
"""

from repro.campaign.cache import CampaignJobSeries, ResultCache, job_key
from repro.campaign.runner import (
    CampaignPlan,
    CampaignResult,
    JobOutcome,
    plan_campaign,
    run_campaign,
)
from repro.campaign.spec import (
    ArmRef,
    CampaignJob,
    CampaignSpec,
    expand_campaign,
    load_campaign_spec,
    scenario_names,
    policy_names,
)

__all__ = [
    "ArmRef",
    "CampaignJob",
    "CampaignJobSeries",
    "CampaignPlan",
    "CampaignResult",
    "CampaignSpec",
    "JobOutcome",
    "ResultCache",
    "expand_campaign",
    "job_key",
    "load_campaign_spec",
    "plan_campaign",
    "policy_names",
    "run_campaign",
    "scenario_names",
]
