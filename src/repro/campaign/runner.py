"""Planner-routed execution of campaign grids with cache-aware resume.

:func:`plan_campaign` expands a spec, content-addresses every job, probes
the cache, and splits the host's cores across the pending jobs via
:func:`~repro.core.planner.plan_campaign_jobs`; :func:`run_campaign`
executes the plan.  Cache hits are answered from disk without running
anything; misses run as whole jobs — the outermost, synchronization-free
axis of parallelism — on a supervised process pool, each job resolving its
*own* intra-job layout through :func:`~repro.core.planner.plan_execution`
against its granted core slice rather than the whole host.

Every completed job publishes its result to the cache from inside the
worker, atomically, before the sweep moves on — so a campaign killed at
job K resumes by simply re-running: jobs 0..K-1 are hits, the rest
recompute.  Worker death, hangs and raises retry under the
:class:`~repro.core.supervision.SupervisorPolicy` budget and then degrade
to an in-process run with a :class:`RuntimeWarning`, mirroring the trial
pool's supervision contract.
"""

from __future__ import annotations

import pickle
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from repro.campaign.cache import CampaignJobSeries, ResultCache, job_key
from repro.campaign.spec import CampaignJob, CampaignSpec, expand_campaign
from repro.core.planner import CampaignBudget, plan_campaign_jobs, plan_execution
from repro.core.supervision import SupervisorPolicy, WorkerPoolFailure, kill_executor
from repro.experiments.runner import run_experiment
from repro.testing.faults import fire as _fire_fault

__all__ = [
    "CampaignPlan",
    "CampaignResult",
    "JobOutcome",
    "plan_campaign",
    "run_campaign",
]


@dataclass(frozen=True)
class JobOutcome:
    """One job's result and where it came from (cache or execution)."""

    job: CampaignJob
    key: str
    cached: bool
    series: CampaignJobSeries


@dataclass(frozen=True)
class CampaignPlan:
    """A campaign's jobs, their content addresses, and the core budget."""

    spec: CampaignSpec
    jobs: Tuple[CampaignJob, ...]
    keys: Tuple[str, ...]
    cached: Tuple[bool, ...]
    budget: CampaignBudget

    @property
    def num_cached(self) -> int:
        """Return how many jobs the cache already answers."""
        return sum(self.cached)

    @property
    def num_pending(self) -> int:
        """Return how many jobs must execute."""
        return len(self.jobs) - self.num_cached

    def describe(self) -> str:
        """Return a multi-line human summary for the CLI."""
        lines = [
            f"campaign {self.spec.name!r}: {len(self.jobs)} job(s) "
            f"({len(self.spec.scenarios)} scenario(s) x "
            f"{len(self.spec.policies)} policy arm(s) x "
            f"{len(self.spec.population_sizes)} population size(s) x "
            f"{len(self.spec.seeds)} seed(s) x "
            f"{len(self.spec.retrain_modes)} retrain mode(s))",
            f"cache: {self.num_cached} hit(s), {self.num_pending} to run",
            f"budget: {self.budget.describe()}",
            f"execution: {self.spec.execution!r} per job",
        ]
        for job, cached in zip(self.jobs, self.cached):
            marker = "cached" if cached else "run"
            lines.append(f"  [{marker:>6}] {job.job_id}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one campaign sweep."""

    spec: CampaignSpec
    outcomes: Tuple[JobOutcome, ...]
    budget: CampaignBudget

    @property
    def hits(self) -> int:
        """Return how many jobs were answered from the cache."""
        return sum(outcome.cached for outcome in self.outcomes)

    @property
    def misses(self) -> int:
        """Return how many jobs were executed."""
        return len(self.outcomes) - self.hits

    @property
    def hit_rate(self) -> float:
        """Return the cache hit rate of the sweep (1.0 for an empty grid)."""
        if not self.outcomes:
            return 1.0
        return self.hits / len(self.outcomes)

    def series_for(self, job_id: str) -> CampaignJobSeries:
        """Return one job's series by its human-readable id."""
        for outcome in self.outcomes:
            if outcome.job.job_id == job_id:
                return outcome.series
        known = ", ".join(outcome.job.job_id for outcome in self.outcomes)
        raise KeyError(f"no job {job_id!r} in this campaign; jobs: {known}")

    def summary(self) -> str:
        """Return a multi-line human summary for the CLI."""
        lines = [
            f"campaign {self.spec.name!r}: {len(self.outcomes)} job(s), "
            f"{self.hits} cache hit(s), {self.misses} executed "
            f"(hit rate {self.hit_rate:.0%})",
        ]
        for outcome in self.outcomes:
            marker = "cached" if outcome.cached else "ran"
            lines.append(f"  [{marker:>6}] {outcome.job.job_id}")
        return "\n".join(lines)


def plan_campaign(
    spec: CampaignSpec,
    cache_dir: str | Path,
    *,
    cpu_count: int | None = None,
) -> CampaignPlan:
    """Expand a spec, probe the cache, and budget the pending jobs.

    The cache probe here is a cheap existence check (a torn entry still
    counts as cached in the *summary*); :func:`run_campaign` re-probes
    with a full integrity read, so a torn file can only ever cost a
    recompute, never a wrong result.
    """
    jobs = expand_campaign(spec)
    cache = ResultCache(cache_dir)
    keys = tuple(job_key(job) for job in jobs)
    cached = tuple(key in cache for key in keys)
    budget = plan_campaign_jobs(
        sum(1 for hit in cached if not hit),
        cpu_count=cpu_count,
        max_workers=spec.max_workers,
    )
    return CampaignPlan(spec=spec, jobs=jobs, keys=keys, cached=cached, budget=budget)


def _execute_job(
    job: CampaignJob,
    spec: CampaignSpec,
    cores_per_job: int,
    supervisor: SupervisorPolicy | None,
) -> CampaignJobSeries:
    """Run one job under its granted core slice and stack its series.

    The job's layout is resolved by :func:`plan_execution` against
    ``cores_per_job`` — not the host's core count — which is what keeps J
    concurrent jobs from greedily sizing J full-width pools.  The resolved
    plan is handed to :func:`run_experiment` as concrete legacy switches,
    so the experiment layer never re-plans on its own host view.
    """
    plan = plan_execution(
        spec.execution,
        trials=job.config.num_trials,
        users=job.config.num_users,
        steps=job.config.num_steps,
        history_mode=job.config.history_mode,
        retrain_mode=job.config.retrain_mode,
        cpu_count=cores_per_job,
        num_shards=spec.num_shards,
    )
    result = run_experiment(
        job.config,
        policy_factory=job.policy_factory(),
        income_table=job.income_table(),
        parallel=plan.parallel,
        max_workers=plan.max_workers,
        trial_batch=plan.trial_batch,
        num_shards=plan.num_shards,
        shard_parallel=plan.shard_parallel,
        shard_transport=spec.shard_transport,
        supervisor=supervisor,
    )
    return CampaignJobSeries.from_experiment(result)


def _run_campaign_job(
    payload: Tuple[CampaignJob, CampaignSpec, str, str, int, SupervisorPolicy | None]
) -> CampaignJobSeries:
    """Executor entry point: run one campaign job and publish its result.

    The worker stores the cache entry itself (atomically) before
    returning, so a sweep killed after this job completes keeps it across
    the resume — the parent process never holds unpublished results.
    """
    job, spec, cache_dir, key, cores_per_job, supervisor = payload
    # Chaos-suite hook: lets a test deterministically kill/hang/fail the
    # sweep at a chosen job to exercise campaign-level resume.
    _fire_fault("campaign_job", trial=job.index)
    series = _execute_job(job, spec, cores_per_job, supervisor)
    ResultCache(cache_dir).store(key, series)
    return series


def _is_picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
        return True
    except Exception:
        return False


def _run_jobs_supervised(
    pending: List[CampaignJob],
    keys: Dict[int, str],
    spec: CampaignSpec,
    cache_dir: str,
    budget: CampaignBudget,
    supervisor: SupervisorPolicy | None,
) -> Dict[int, CampaignJobSeries]:
    """Run pending jobs on a supervised pool; ``None``-free result map.

    Mirrors the trial pool's supervision contract: a worker death or hang
    tears the pool down, keeps every published result, and re-runs only
    the lost jobs after a backoff; a raise inside one job retries just
    that job; a job past ``supervisor.max_retries`` degrades to an
    in-process run with a :class:`RuntimeWarning` (surfacing its own
    deterministic error, if that is what keeps killing workers).
    """
    policy = supervisor or SupervisorPolicy()

    def payload_for(job: CampaignJob) -> tuple:
        return (job, spec, cache_dir, keys[job.index], budget.cores_per_job, supervisor)

    results: Dict[int, CampaignJobSeries] = {}
    attempts: Dict[int, int] = {job.index: 0 for job in pending}
    by_index = {job.index: job for job in pending}
    waiting = [job.index for job in pending]
    executor: ProcessPoolExecutor | None = None
    pool_failures = 0
    try:
        while waiting:
            for index in [i for i in waiting if attempts[i] > policy.max_retries]:
                warnings.warn(
                    f"campaign job {by_index[index].job_id!r} exhausted its "
                    f"retry budget ({policy.max_retries} retries); running it "
                    "in-process",
                    RuntimeWarning,
                    stacklevel=3,
                )
                series = _execute_job(
                    by_index[index], spec, budget.cores_per_job, supervisor
                )
                ResultCache(cache_dir).store(keys[index], series)
                results[index] = series
            waiting = [i for i in waiting if i not in results]
            if not waiting:
                break
            failure: WorkerPoolFailure | None = None
            try:
                if executor is None:
                    executor = ProcessPoolExecutor(
                        max_workers=min(budget.job_workers, len(waiting))
                    )
                future_map = {
                    executor.submit(
                        _run_campaign_job, payload_for(by_index[index])
                    ): index
                    for index in waiting
                }
            except (pickle.PicklingError, BrokenProcessPool) as error:
                failure = WorkerPoolFailure("submitting jobs failed", error)
                future_map = {}
            outstanding = set(future_map)
            while outstanding and failure is None:
                done, _ = wait(
                    outstanding, timeout=policy.timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    failure = WorkerPoolFailure(
                        "no job completed within the supervision timeout", None
                    )
                    break
                for future in done:
                    index = future_map[future]
                    outstanding.discard(future)
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool as error:
                        failure = WorkerPoolFailure("a job worker process died", error)
                        break
                    except Exception:
                        # The job itself raised: retry just this one.
                        attempts[index] += 1
            waiting = [i for i in waiting if i not in results]
            if failure is not None and waiting:
                pool_failures += 1
                for index in waiting:
                    attempts[index] += 1
                kill_executor(executor)
                executor = None
                cause = failure.cause if failure.cause is not None else failure
                warnings.warn(
                    f"campaign job pool failure ({failure.reason}: {cause!r}); "
                    f"rebuilding the pool and re-running {len(waiting)} lost "
                    f"job(s) (pool failure {pool_failures})",
                    RuntimeWarning,
                    stacklevel=3,
                )
                policy.sleep_before_retry(pool_failures)
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
            executor = None
    finally:
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
    return results


def run_campaign(
    spec: CampaignSpec,
    cache_dir: str | Path,
    *,
    supervisor: SupervisorPolicy | None = None,
    cpu_count: int | None = None,
) -> CampaignResult:
    """Run a campaign: serve cache hits, execute misses, publish results.

    Parameters
    ----------
    spec:
        The campaign grid and its run options.
    cache_dir:
        Directory of the content-addressed result cache.  Reusing it
        across runs is the whole point: a completed sweep re-run from the
        same directory is a pure cache read, and an interrupted sweep
        resumes from the jobs already published.
    supervisor:
        Retry/backoff policy of the job pool (``None`` applies the
        defaults), also forwarded into each job's intra-job pools.
    cpu_count:
        Host core count override for the budget (tests; ``None`` detects).

    The per-job results are bit-identical to a fresh
    :func:`~repro.experiments.runner.run_experiment` of the same
    configuration and seed, whether they were computed here, computed by
    a previous run under a *different* execution layout, or computed by a
    sweep that was killed halfway through.
    """
    plan = plan_campaign(spec, cache_dir, cpu_count=cpu_count)
    cache = ResultCache(cache_dir)
    outcomes: Dict[int, JobOutcome] = {}
    pending: List[CampaignJob] = []
    keys: Dict[int, str] = {}
    for job, key in zip(plan.jobs, plan.keys):
        keys[job.index] = key
        series = cache.load(key)
        if series is not None:
            outcomes[job.index] = JobOutcome(job=job, key=key, cached=True, series=series)
        else:
            pending.append(job)
    budget = plan_campaign_jobs(
        len(pending), cpu_count=cpu_count, max_workers=spec.max_workers
    )
    if pending:
        computed: Dict[int, CampaignJobSeries] = {}
        pooled = (
            budget.job_workers > 1
            and len(pending) > 1
            and _is_picklable(
                (pending[0], spec, str(cache.directory), keys[pending[0].index],
                 budget.cores_per_job, supervisor)
            )
        )
        if pooled:
            computed = _run_jobs_supervised(
                pending, keys, spec, str(cache.directory), budget, supervisor
            )
        else:
            for job in pending:
                # Same chaos hook as the pooled worker, so the serial path
                # can be killed (and resumed) at a chosen job too.
                _fire_fault("campaign_job", trial=job.index)
                series = _execute_job(job, spec, budget.cores_per_job, supervisor)
                cache.store(keys[job.index], series)
                computed[job.index] = series
        for job in pending:
            outcomes[job.index] = JobOutcome(
                job=job,
                key=keys[job.index],
                cached=False,
                series=computed[job.index],
            )
    ordered = tuple(outcomes[job.index] for job in plan.jobs)
    return CampaignResult(spec=spec, outcomes=ordered, budget=budget)
