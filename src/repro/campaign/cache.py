"""Content-addressed cache of completed campaign job results.

The cache key is a full sha256 digest over exactly the fields that steer a
job's trajectory — the arm references plus
:func:`~repro.experiments.runner.trajectory_fingerprint_fields` and the
trial count — joined with the same ``\\x1f``-separated ``repr`` discipline
as :func:`~repro.core.checkpoint.config_fingerprint`.  Execution layout
(``execution``, worker caps, shard counts, transports) never enters the
digest: every layout is bit-identical by construction, so an entry written
by a serial run hits under pooled or sharded execution and vice versa.

Entries are crash-consistent files written through the checkpoint envelope
(temp file + fsync + atomic rename + payload digest), holding the compact
across-trial group series — the quantities every figure consumes — never
per-user matrices.  A torn or foreign file degrades to a recompute with a
:class:`RuntimeWarning`; a wrong hit is structurally impossible because
the payload carries its own key.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple

import numpy as np

from repro.core.checkpoint import CheckpointError, read_checkpoint, write_checkpoint
from repro.campaign.spec import CampaignJob
from repro.data.census import Race
from repro.experiments.runner import ExperimentResult, trajectory_fingerprint_fields

__all__ = ["CACHE_VERSION", "CampaignJobSeries", "ResultCache", "job_key"]

#: Bump to invalidate every existing cache entry on a format change.
CACHE_VERSION = 1


def job_key(job: CampaignJob) -> str:
    """Return the content address of one campaign job's result.

    The digest covers the arm identities (name + canonical parameters),
    the trial count, and the trajectory-defining config fields in the
    frozen :func:`trajectory_fingerprint_fields` order.  Nothing about
    *how* the job executes is included — layout invariance is structural,
    not filtered after the fact.
    """
    parts: Tuple[object, ...] = (
        "repro-campaign",
        CACHE_VERSION,
        job.scenario.name,
        job.scenario.params,
        job.policy.name,
        job.policy.params,
        job.config.num_trials,
        *trajectory_fingerprint_fields(job.config),
    )
    joined = "\x1f".join(repr(part) for part in parts)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CampaignJobSeries:
    """Compact across-trial series of one completed campaign job.

    Attributes
    ----------
    years:
        Calendar years of the steps.
    group_default_rates:
        Per race, the stacked ``(trials, steps)`` matrix of ``ADR_s(k)``
        series — the rows are the individual trials, in trial order.
    approval_rates:
        The stacked ``(trials, steps)`` per-step approval-rate series.
    """

    years: Tuple[int, ...]
    group_default_rates: Dict[Race, np.ndarray]
    approval_rates: np.ndarray

    @property
    def num_trials(self) -> int:
        """Return how many trials the series stack."""
        return int(self.approval_rates.shape[0])

    def group_mean_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial mean of ``ADR_s(k)``.

        ``np.mean`` over the stacked rows is the same reduction (bit for
        bit) as :meth:`ExperimentResult.group_mean_series` applied to the
        retained trials, so cached and fresh results are interchangeable.
        """
        return {
            race: np.mean(series, axis=0)
            for race, series in self.group_default_rates.items()
        }

    def group_std_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial standard deviation."""
        return {
            race: np.std(series, axis=0)
            for race, series in self.group_default_rates.items()
        }

    def mean_approval_series(self) -> np.ndarray:
        """Return the across-trial mean approval-rate series."""
        return np.mean(self.approval_rates, axis=0)

    @classmethod
    def from_experiment(cls, result: ExperimentResult) -> "CampaignJobSeries":
        """Stack a :class:`ExperimentResult`'s retained trials into series.

        Requires ``keep_trials=True`` (the campaign runner always keeps
        them — the per-trial group series are tiny).
        """
        if not result.trials:
            raise ValueError(
                "CampaignJobSeries needs retained trials; run the experiment "
                "with keep_trials=True"
            )
        group_rates = {
            race: np.stack(
                [trial.group_default_rates[race] for trial in result.trials]
            )
            for race in Race
        }
        approvals = np.stack(
            [trial.approval_rate_series() for trial in result.trials]
        )
        return cls(
            years=tuple(result.years),
            group_default_rates=group_rates,
            approval_rates=approvals,
        )


class ResultCache:
    """Directory of content-addressed campaign job results.

    One file per key, written crash-consistently; concurrent writers of
    the *same* key are harmless (the payload is deterministic, the rename
    atomic) — which is what lets campaign job workers publish their own
    results and a killed sweep keep everything already finished.
    """

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        """Return the cache directory."""
        return self._directory

    def path_for(self, key: str) -> Path:
        """Return the entry file of one key."""
        return self._directory / f"{key}.result"

    def __contains__(self, key: str) -> bool:
        """Cheap existence probe (no integrity check — use :meth:`load`)."""
        return self.path_for(key).exists()

    def store(self, key: str, series: CampaignJobSeries) -> Path:
        """Persist one job's series under its key, atomically."""
        path = self.path_for(key)
        write_checkpoint(
            path,
            {
                "kind": "campaign_result",
                "version": CACHE_VERSION,
                "key": key,
                "years": tuple(series.years),
                "group_default_rates": {
                    race.name: np.asarray(rates)
                    for race, rates in series.group_default_rates.items()
                },
                "approval_rates": np.asarray(series.approval_rates),
            },
        )
        return path

    def load(self, key: str) -> CampaignJobSeries | None:
        """Return the cached series of one key, or ``None`` to recompute.

        Every failure mode — missing file, torn envelope, foreign payload,
        version skew — degrades to a recompute (with a
        :class:`RuntimeWarning` when a file existed but could not be
        trusted).  A wrong hit is never returned: the payload's embedded
        key must match the requested one.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            payload = read_checkpoint(path)
        except CheckpointError as error:
            warnings.warn(
                f"recomputing campaign job: cache entry {path.name} is "
                f"unreadable ({error})",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != "campaign_result"
            or payload.get("version") != CACHE_VERSION
            or payload.get("key") != key
        ):
            warnings.warn(
                f"recomputing campaign job: cache entry {path.name} does not "
                "carry the expected campaign payload (foreign file, or a "
                "cache-format version bump)",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return CampaignJobSeries(
            years=tuple(payload["years"]),
            group_default_rates={
                Race[name]: np.asarray(rates)
                for name, rates in payload["group_default_rates"].items()
            },
            approval_rates=np.asarray(payload["approval_rates"]),
        )

    def total_bytes(self) -> int:
        """Return the total size of every entry file, in bytes."""
        return sum(
            entry.stat().st_size for entry in self._directory.glob("*.result")
        )

    def __len__(self) -> int:
        """Return the number of entry files."""
        return sum(1 for _ in self._directory.glob("*.result"))
