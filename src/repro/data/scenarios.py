"""Income-table scenarios: concept drift the retraining loop must survive.

One of the paper's arguments for the closed-loop view is that practical AI
systems are retrained because the world drifts underneath them.  The
scenarios here perturb the embedded income table so experiments can compare
the retraining lender against the never-retrained one when the drift is
abrupt (a recession year) or gradual (a widening income gap between
groups).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.data.census import (
    INCOME_BRACKETS,
    BracketDistribution,
    IncomeTable,
    Race,
    default_income_table,
)
from repro.utils.validation import require_in_range, require_positive

__all__ = ["recession_scenario", "widening_gap_scenario", "shift_distribution"]


def shift_distribution(
    distribution: BracketDistribution, downshift: float
) -> BracketDistribution:
    """Move a fraction of every bracket's mass one bracket down.

    ``downshift`` is the fraction of households in each bracket that fall to
    the next-lower bracket (the lowest bracket keeps its mass).  The result
    is a valid distribution with a strictly lower mean whenever
    ``downshift > 0`` and the original distribution has mass above the
    lowest bracket.
    """
    require_in_range(downshift, "downshift", 0.0, 1.0)
    shares = np.asarray(distribution.shares, dtype=float).copy()
    moved = shares[1:] * downshift
    shares[1:] -= moved
    shares[:-1] += moved
    shares = shares / shares.sum()
    return BracketDistribution(
        year=distribution.year,
        race=distribution.race,
        shares=tuple(shares),
        households=distribution.households,
    )


def _rebuild(
    base: IncomeTable,
    transform,
) -> IncomeTable:
    distributions: Dict[Tuple[int, Race], BracketDistribution] = {}
    for year in base.years:
        for race in base.races:
            distributions[(year, race)] = transform(base.distribution(year, race))
    return IncomeTable(distributions)


def recession_scenario(
    shock_years: Tuple[int, ...] = (2008, 2009),
    downshift: float = 0.35,
    base: IncomeTable | None = None,
) -> IncomeTable:
    """A recession: incomes drop sharply in the shock years, for every race.

    Defaults to a 2008-2009 shock in which 35% of each bracket's households
    fall one bracket, mimicking the financial-crisis dent in the real CPS
    series.
    """
    require_in_range(downshift, "downshift", 0.0, 1.0)
    table = base or default_income_table()

    def transform(distribution: BracketDistribution) -> BracketDistribution:
        if distribution.year in shock_years:
            return shift_distribution(distribution, downshift)
        return distribution

    return _rebuild(table, transform)


def widening_gap_scenario(
    disadvantaged: Race = Race.BLACK,
    annual_downshift: float = 0.03,
    start_year: int = 2010,
    base: IncomeTable | None = None,
) -> IncomeTable:
    """Gradual drift: one group's income distribution slips year after year.

    From ``start_year`` onwards the disadvantaged group's distribution is
    pushed down by ``annual_downshift`` per elapsed year (compounding), so
    the cross-group income gap widens steadily — the kind of slow drift that
    makes a never-retrained scorecard progressively worse calibrated.
    """
    require_in_range(annual_downshift, "annual_downshift", 0.0, 1.0)
    table = base or default_income_table()

    def transform(distribution: BracketDistribution) -> BracketDistribution:
        if distribution.race is not disadvantaged or distribution.year < start_year:
            return distribution
        elapsed = distribution.year - start_year + 1
        cumulative = 1.0 - (1.0 - annual_downshift) ** elapsed
        return shift_distribution(distribution, cumulative)

    return _rebuild(table, transform)
