"""Synthetic stand-in for CPS Table A-2: household income by race and year.

The paper samples each user's annual income from the empirical income-bracket
distribution of their race group in the corresponding year (2002-2020).  We
cannot embed the Census micro-data, so this module *generates* a bracket
table with the qualitative features the paper relies on:

* the nine CPS brackets (under $15K up to over $200K);
* "BLACK ALONE" households concentrated in the lower brackets (most below
  $75K), "WHITE ALONE" in the middle, and "ASIAN ALONE" with a heavy upper
  tail (close to 20% above $200K by 2020);
* slow income growth from 2002 to 2020 for every group;
* household counts whose 2002 ratio reproduces the paper's race mix
  ``[0.1235, 0.8406, 0.0359]``.

The table is produced deterministically (no randomness) by discretising a
per-race log-normal income model onto the brackets, so tests and experiments
always see the same distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.utils.validation import require_probability_vector

__all__ = [
    "Race",
    "INCOME_BRACKETS",
    "BracketDistribution",
    "IncomeTable",
    "default_income_table",
    "paper_race_mix",
]


class Race(str, Enum):
    """The three race groups of the paper's case study."""

    BLACK = "BLACK ALONE"
    WHITE = "WHITE ALONE"
    ASIAN = "ASIAN ALONE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The nine CPS income brackets, as (low, high) bounds in thousands of
#: dollars.  The final bracket is open-ended; its ``high`` bound is the cap
#: used when sampling incomes uniformly within a bracket.
INCOME_BRACKETS: Tuple[Tuple[float, float], ...] = (
    (0.0, 15.0),
    (15.0, 25.0),
    (25.0, 35.0),
    (35.0, 50.0),
    (50.0, 75.0),
    (75.0, 100.0),
    (100.0, 150.0),
    (150.0, 200.0),
    (200.0, 350.0),
)

#: Human-readable labels matching the x axis of Figure 2 in the paper.
BRACKET_LABELS: Tuple[str, ...] = (
    "under 15",
    "15-25",
    "25-35",
    "35-50",
    "50-75",
    "75-100",
    "100-150",
    "150-200",
    "over 200",
)

_FIRST_YEAR = 2002
_LAST_YEAR = 2020

# Log-normal income model per race: (median income in $K in 2002,
# annual median growth rate, sigma of log income).  The parameters are
# chosen so the derived 2020 bracket shares match the qualitative reading of
# the paper's Figure 2: Black households mostly below $75K, Asian households
# with ~20% above $200K, White households in between.
_INCOME_MODEL: Mapping[Race, Tuple[float, float, float]] = {
    Race.BLACK: (34.0, 0.010, 0.78),
    Race.WHITE: (55.0, 0.011, 0.80),
    Race.ASIAN: (78.0, 0.016, 0.85),
}

# Household counts (thousands) in 2002 per race, chosen so their ratio equals
# the paper's sampling distribution [0.1235, 0.8406, 0.0359], and the annual
# growth rates of the counts.
_HOUSEHOLD_MODEL: Mapping[Race, Tuple[float, float]] = {
    Race.BLACK: (13_778.0, 0.013),
    Race.WHITE: (93_771.0, 0.006),
    Race.ASIAN: (4_005.0, 0.030),
}


@dataclass(frozen=True)
class BracketDistribution:
    """Income-bracket shares for one race group in one year.

    Attributes
    ----------
    year:
        Calendar year the distribution describes.
    race:
        Race group the distribution describes.
    shares:
        Probability of each of the nine :data:`INCOME_BRACKETS`.
    households:
        Number of households (in thousands) in the group that year.
    """

    year: int
    race: Race
    shares: Tuple[float, ...]
    households: float

    def as_array(self) -> np.ndarray:
        """Return the bracket shares as a numpy probability vector."""
        return np.asarray(self.shares, dtype=float)

    def median_bracket(self) -> int:
        """Return the index of the bracket containing the median household."""
        cumulative = np.cumsum(self.as_array())
        return int(np.searchsorted(cumulative, 0.5))

    def share_above(self, threshold: float) -> float:
        """Return the share of households whose bracket lies above ``threshold``.

        ``threshold`` is in thousands of dollars and must coincide with a
        bracket boundary (e.g. ``200.0`` for "over $200K").
        """
        share = 0.0
        for (low, _high), probability in zip(INCOME_BRACKETS, self.shares):
            if low >= threshold:
                share += probability
        return share


class IncomeTable:
    """Bracket-level household income distributions by year and race.

    This is the synthetic counterpart of CPS Table A-2.  It exposes, for
    every ``(year, race)`` pair in its range, the probability of each income
    bracket and the household count, which is everything the paper's
    simulation consumes.
    """

    def __init__(
        self,
        distributions: Mapping[Tuple[int, Race], BracketDistribution],
    ) -> None:
        if not distributions:
            raise ValueError("distributions must not be empty")
        self._distributions: Dict[Tuple[int, Race], BracketDistribution] = dict(
            distributions
        )
        self._years = tuple(sorted({year for year, _ in self._distributions}))
        self._races = tuple(
            sorted({race for _, race in self._distributions}, key=lambda r: r.value)
        )
        for year in self._years:
            for race in self._races:
                if (year, race) not in self._distributions:
                    raise ValueError(
                        f"table is missing the ({year}, {race.value}) distribution"
                    )

    @property
    def years(self) -> Tuple[int, ...]:
        """Return the calendar years covered by the table, ascending."""
        return self._years

    @property
    def races(self) -> Tuple[Race, ...]:
        """Return the race groups covered by the table."""
        return self._races

    def distribution(self, year: int, race: Race) -> BracketDistribution:
        """Return the bracket distribution of ``race`` in ``year``.

        Years outside the covered range are clamped to the nearest covered
        year, mirroring how the paper keeps using the last available census
        year when a simulation runs past the data.
        """
        clamped = min(max(year, self._years[0]), self._years[-1])
        return self._distributions[(clamped, race)]

    def bracket_shares(self, year: int, race: Race) -> np.ndarray:
        """Return the probability vector over :data:`INCOME_BRACKETS`."""
        return self.distribution(year, race).as_array()

    def households(self, year: int, race: Race) -> float:
        """Return the household count (thousands) for ``race`` in ``year``."""
        return self.distribution(year, race).households

    def race_mix(self, year: int) -> np.ndarray:
        """Return the share of households per race in ``year``.

        The order of entries follows :attr:`races`.  In 2002 the default
        table reproduces the paper's sampling distribution
        ``[0.1235, 0.8406, 0.0359]`` (Black, White, Asian).
        """
        counts = np.array(
            [self.households(year, race) for race in self._races], dtype=float
        )
        return counts / counts.sum()


def _discretise_lognormal(median: float, sigma: float) -> np.ndarray:
    """Discretise a log-normal income law onto :data:`INCOME_BRACKETS`."""
    mu = math.log(median)
    shares = []
    for index, (low, high) in enumerate(INCOME_BRACKETS):
        lower_cdf = _lognormal_cdf(low, mu, sigma)
        if index == len(INCOME_BRACKETS) - 1:
            upper_cdf = 1.0
        else:
            upper_cdf = _lognormal_cdf(high, mu, sigma)
        shares.append(max(upper_cdf - lower_cdf, 0.0))
    array = np.asarray(shares, dtype=float)
    return array / array.sum()


def _lognormal_cdf(value: float, mu: float, sigma: float) -> float:
    """Return the log-normal CDF at ``value`` (zero for non-positive inputs)."""
    if value <= 0:
        return 0.0
    z = (math.log(value) - mu) / (sigma * math.sqrt(2.0))
    return 0.5 * (1.0 + math.erf(z))


def default_income_table(
    first_year: int = _FIRST_YEAR, last_year: int = _LAST_YEAR
) -> IncomeTable:
    """Build the embedded synthetic income table.

    Parameters
    ----------
    first_year, last_year:
        Calendar range to cover (defaults to the paper's 2002-2020).

    Returns
    -------
    IncomeTable
        Deterministic table with one :class:`BracketDistribution` per
        ``(year, race)`` pair.
    """
    if last_year < first_year:
        raise ValueError("last_year must not precede first_year")
    distributions: Dict[Tuple[int, Race], BracketDistribution] = {}
    for year in range(first_year, last_year + 1):
        elapsed = year - _FIRST_YEAR
        for race in Race:
            median_2002, growth, sigma = _INCOME_MODEL[race]
            median = median_2002 * (1.0 + growth) ** elapsed
            shares = _discretise_lognormal(median, sigma)
            households_2002, household_growth = _HOUSEHOLD_MODEL[race]
            households = households_2002 * (1.0 + household_growth) ** elapsed
            distributions[(year, race)] = BracketDistribution(
                year=year,
                race=race,
                shares=tuple(require_probability_vector(shares, "shares")),
                households=households,
            )
    return IncomeTable(distributions)


def paper_race_mix() -> Dict[Race, float]:
    """Return the paper's 2002 race sampling distribution.

    The paper generates each user's race from the categorical distribution
    ``[0.1235, 0.8406, 0.0359]`` over (Black, White, Asian); this helper
    exposes those constants by name.
    """
    return {Race.BLACK: 0.1235, Race.WHITE: 0.8406, Race.ASIAN: 0.0359}
