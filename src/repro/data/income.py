"""Sampling household incomes from an :class:`~repro.data.census.IncomeTable`.

The paper's simulation redraws each user's income every year from the
bracket distribution of their race group in that year.  The sampler here
does exactly that: pick a bracket according to its share, then draw the
income uniformly within the bracket (the open-ended top bracket uses the cap
recorded in :data:`~repro.data.census.INCOME_BRACKETS`).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.data.census import INCOME_BRACKETS, IncomeTable, Race
from repro.utils.rng import spawn_generator

__all__ = ["IncomeSampler"]


class IncomeSampler:
    """Draws household incomes (in thousands of dollars) by year and race."""

    def __init__(self, table: IncomeTable) -> None:
        self._table = table
        self._lows = np.array([low for low, _ in INCOME_BRACKETS], dtype=float)
        self._highs = np.array([high for _, high in INCOME_BRACKETS], dtype=float)

    @property
    def table(self) -> IncomeTable:
        """Return the underlying income table."""
        return self._table

    def sample(
        self,
        year: int,
        race: Race,
        size: int,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample ``size`` incomes for ``race`` in ``year``.

        Returns an array of incomes in thousands of dollars, each drawn by
        selecting a bracket with the table's probabilities and then sampling
        uniformly inside the bracket.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        generator = spawn_generator(rng)
        shares = self._table.bracket_shares(year, race)
        brackets = generator.choice(len(INCOME_BRACKETS), size=size, p=shares)
        uniforms = generator.random(size)
        lows = self._lows[brackets]
        highs = self._highs[brackets]
        return lows + uniforms * (highs - lows)

    def sample_population(
        self,
        year: int,
        races: Sequence[Race],
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample one income per user, given each user's race.

        ``races`` is the per-user race assignment of a population; the result
        is an array of the same length with that user's income for ``year``.
        Callers that draw repeatedly for a fixed population should compute
        the index arrays once (e.g. via
        :meth:`repro.data.synthetic.SyntheticPopulation.indices_by_race`)
        and use :meth:`sample_population_indexed` instead.
        """
        races_array = np.asarray(races, dtype=object)
        race_indices = {
            race: np.flatnonzero(races_array == race) for race in self._table.races
        }
        return self.sample_population_indexed(
            year, race_indices, races_array.size, rng
        )

    def sample_population_indexed(
        self,
        year: int,
        race_indices: Mapping[Race, np.ndarray],
        num_users: int,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample one income per user from precomputed per-race index arrays.

        ``race_indices`` maps each race to the (sorted) user indices of that
        group — the partition is fixed for a population's lifetime, so
        computing it once and passing it here avoids rebuilding object-dtype
        race arrays and boolean masks on every step.  The draws consume the
        generator exactly as :meth:`sample_population` does (race groups in
        table order), so both paths produce bit-identical incomes.
        """
        generator = spawn_generator(rng)
        incomes = np.empty(num_users, dtype=float)
        for race in self._table.races:
            indices = race_indices.get(race)
            if indices is not None and indices.size:
                incomes[indices] = self.sample(year, race, int(indices.size), generator)
        return incomes

    def expected_income(self, year: int, race: Race) -> float:
        """Return the expected income (bracket-midpoint approximation)."""
        shares = self._table.bracket_shares(year, race)
        midpoints = (self._lows + self._highs) / 2.0
        return float(np.dot(shares, midpoints))
