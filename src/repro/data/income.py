"""Sampling household incomes from an :class:`~repro.data.census.IncomeTable`.

The paper's simulation redraws each user's income every year from the
bracket distribution of their race group in that year.  The sampler here
does exactly that: pick a bracket according to its share, then draw the
income uniformly within the bracket (the open-ended top bracket uses the cap
recorded in :data:`~repro.data.census.INCOME_BRACKETS`).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.data.census import INCOME_BRACKETS, IncomeTable, Race
from repro.utils.rng import spawn_generator

__all__ = ["IncomeSampler"]

#: Probability-sum tolerance of ``numpy.random.Generator.choice``; the cached
#: bracket validation applies the same check once per (year, race) instead of
#: on every draw.
_PROBABILITY_ATOL = float(np.sqrt(np.finfo(np.float64).eps))


class IncomeSampler:
    """Draws household incomes (in thousands of dollars) by year and race.

    The bracket shares of a ``(year, race)`` pair are fixed for the table's
    lifetime, yet the closed loop redraws incomes for the same pairs on
    every step of every shard (504 lookups per trial in the engine
    profile).  The sampler therefore caches, per pair, the validated share
    vector and its normalised cumulative distribution, and maps uniforms to
    brackets with one ``searchsorted`` — exactly the arithmetic
    ``numpy.random.Generator.choice`` performs internally, so the draws (and
    the generator state afterwards) are bit-identical to the retired
    per-call ``generator.choice(..., p=shares)``, minus its per-call
    validation and cumsum overhead.  Pinned by the engine goldens and a
    direct regression test.
    """

    def __init__(self, table: IncomeTable) -> None:
        self._table = table
        self._lows = np.array([low for low, _ in INCOME_BRACKETS], dtype=float)
        self._highs = np.array([high for _, high in INCOME_BRACKETS], dtype=float)
        self._widths = self._highs - self._lows
        self._cdf_cache: Dict[Tuple[int, Race], np.ndarray] = {}

    @property
    def table(self) -> IncomeTable:
        """Return the underlying income table."""
        return self._table

    def bracket_cdf(self, year: int, race: Race) -> np.ndarray:
        """Return the cached, validated bracket CDF of ``(year, race)``.

        The array is the normalised cumulative sum of the table's bracket
        shares — the exact CDF ``Generator.choice`` builds internally — and
        is validated once (length, non-negativity, finiteness, sum within
        ``choice``'s tolerance of one) when first cached.  Callers must not
        mutate the returned array.
        """
        key = (int(year), race)
        cached = self._cdf_cache.get(key)
        if cached is None:
            shares = np.asarray(
                self._table.bracket_shares(year, race), dtype=float
            )
            if shares.shape != (len(INCOME_BRACKETS),):
                raise ValueError(
                    "bracket shares must have one entry per income bracket"
                )
            if not np.all(np.isfinite(shares)) or np.any(shares < 0):
                raise ValueError("bracket shares must be finite and non-negative")
            total = float(shares.sum())
            if abs(total - 1.0) > _PROBABILITY_ATOL:
                raise ValueError("bracket shares must sum to 1")
            cached = shares.cumsum()
            cached /= cached[-1]
            self._cdf_cache[key] = cached
        return cached

    def brackets_from_uniforms(
        self, year: int, race: Race, uniforms: np.ndarray
    ) -> np.ndarray:
        """Map uniform draws to bracket indices via the cached CDF.

        This is the deterministic half of a bracket draw: feeding it the
        generator's ``random(size)`` output reproduces
        ``generator.choice(len(INCOME_BRACKETS), size=size, p=shares)`` bit
        for bit.  ``searchsorted(cdf, u, side="right")`` — what ``choice``
        computes — equals the count of CDF entries ``<= u`` (ties go
        right on both routes), so large blocks take nine branchless
        comparison passes instead of per-element binary searches with
        data-dependent branches (~2.7x on the trial-batched engine's
        pooled per-race blocks); small blocks keep ``searchsorted``, whose
        fixed cost is lower.  Both routes return identical indices for
        every input, so the cutover is purely a speed choice.
        """
        cdf = self.bracket_cdf(year, race)
        if uniforms.size < 4096:
            return cdf.searchsorted(uniforms, side="right").astype(np.int64)
        indices = np.zeros(uniforms.shape, dtype=np.int64)
        for boundary in cdf:
            indices += uniforms >= boundary
        return indices

    def incomes_from_uniforms(
        self,
        year: int,
        race: Race,
        bracket_uniforms: np.ndarray,
        width_uniforms: np.ndarray,
    ) -> np.ndarray:
        """Return incomes from pre-drawn bracket and in-bracket uniforms.

        Equivalent, bit for bit, to :meth:`sample` fed a generator whose
        next ``2 * size`` doubles are ``bracket_uniforms`` followed by
        ``width_uniforms`` — the decomposition the trial-batched engine
        relies on to draw a whole shard-step block in one generator call.
        """
        brackets = self.brackets_from_uniforms(year, race, bracket_uniforms)
        # lows[b] + u * widths[b] with widths precomputed: bit-identical to
        # the retired lows[b] + u * (highs[b] - lows[b]) — the subtraction
        # commutes with the indexing.
        return self._lows[brackets] + width_uniforms * self._widths[brackets]

    def sample(
        self,
        year: int,
        race: Race,
        size: int,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample ``size`` incomes for ``race`` in ``year``.

        Returns an array of incomes in thousands of dollars, each drawn by
        selecting a bracket with the table's probabilities and then sampling
        uniformly inside the bracket.  The draws consume exactly ``2 *
        size`` doubles from the generator (bracket uniforms, then in-bracket
        uniforms), matching the retired ``generator.choice`` call's stream
        consumption.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        generator = spawn_generator(rng)
        bracket_uniforms = generator.random(size)
        width_uniforms = generator.random(size)
        return self.incomes_from_uniforms(
            year, race, bracket_uniforms, width_uniforms
        )

    def sample_population(
        self,
        year: int,
        races: Sequence[Race],
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample one income per user, given each user's race.

        ``races`` is the per-user race assignment of a population; the result
        is an array of the same length with that user's income for ``year``.
        Callers that draw repeatedly for a fixed population should compute
        the index arrays once (e.g. via
        :meth:`repro.data.synthetic.SyntheticPopulation.indices_by_race`)
        and use :meth:`sample_population_indexed` instead.
        """
        races_array = np.asarray(races, dtype=object)
        race_indices = {
            race: np.flatnonzero(races_array == race) for race in self._table.races
        }
        return self.sample_population_indexed(
            year, race_indices, races_array.size, rng
        )

    def sample_population_indexed(
        self,
        year: int,
        race_indices: Mapping[Race, np.ndarray],
        num_users: int,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample one income per user from precomputed per-race index arrays.

        ``race_indices`` maps each race to the (sorted) user indices of that
        group — the partition is fixed for a population's lifetime, so
        computing it once and passing it here avoids rebuilding object-dtype
        race arrays and boolean masks on every step.  The draws consume the
        generator exactly as :meth:`sample_population` does (race groups in
        table order), so both paths produce bit-identical incomes.
        """
        generator = spawn_generator(rng)
        incomes = np.empty(num_users, dtype=float)
        for race in self._table.races:
            indices = race_indices.get(race)
            if indices is not None and indices.size:
                incomes[indices] = self.sample(year, race, int(indices.size), generator)
        return incomes

    def expected_income(self, year: int, race: Race) -> float:
        """Return the expected income (bracket-midpoint approximation)."""
        shares = self._table.bracket_shares(year, race)
        midpoints = (self._lows + self._highs) / 2.0
        return float(np.dot(shares, midpoints))
