"""Sampling household incomes from an :class:`~repro.data.census.IncomeTable`.

The paper's simulation redraws each user's income every year from the
bracket distribution of their race group in that year.  The sampler here
does exactly that: pick a bracket according to its share, then draw the
income uniformly within the bracket (the open-ended top bracket uses the cap
recorded in :data:`~repro.data.census.INCOME_BRACKETS`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.census import INCOME_BRACKETS, IncomeTable, Race
from repro.utils.rng import spawn_generator

__all__ = ["IncomeSampler"]


class IncomeSampler:
    """Draws household incomes (in thousands of dollars) by year and race."""

    def __init__(self, table: IncomeTable) -> None:
        self._table = table
        self._lows = np.array([low for low, _ in INCOME_BRACKETS], dtype=float)
        self._highs = np.array([high for _, high in INCOME_BRACKETS], dtype=float)

    @property
    def table(self) -> IncomeTable:
        """Return the underlying income table."""
        return self._table

    def sample(
        self,
        year: int,
        race: Race,
        size: int,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample ``size`` incomes for ``race`` in ``year``.

        Returns an array of incomes in thousands of dollars, each drawn by
        selecting a bracket with the table's probabilities and then sampling
        uniformly inside the bracket.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        generator = spawn_generator(rng)
        shares = self._table.bracket_shares(year, race)
        brackets = generator.choice(len(INCOME_BRACKETS), size=size, p=shares)
        uniforms = generator.random(size)
        lows = self._lows[brackets]
        highs = self._highs[brackets]
        return lows + uniforms * (highs - lows)

    def sample_population(
        self,
        year: int,
        races: Sequence[Race],
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample one income per user, given each user's race.

        ``races`` is the per-user race assignment of a population; the result
        is an array of the same length with that user's income for ``year``.
        """
        generator = spawn_generator(rng)
        races_array = np.asarray(races, dtype=object)
        incomes = np.empty(races_array.size, dtype=float)
        for race in self._table.races:
            mask = races_array == race
            count = int(mask.sum())
            if count:
                incomes[mask] = self.sample(year, race, count, generator)
        return incomes

    def expected_income(self, year: int, race: Race) -> float:
        """Return the expected income (bracket-midpoint approximation)."""
        shares = self._table.bracket_shares(year, race)
        midpoints = (self._lows + self._highs) / 2.0
        return float(np.dot(shares, midpoints))
