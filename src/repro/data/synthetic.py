"""Synthesis of user populations with a prescribed race mix.

The paper generates ``N = 1000`` users whose races are sampled from the 2002
household-count ratio ``[0.1235, 0.8406, 0.0359]``; every trial uses a fresh
batch.  :func:`generate_population` reproduces that step and
:class:`SyntheticPopulation` packages the result together with convenient
per-race index lookups (the paper's ``N_s`` subsets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.data.census import IncomeTable, Race, default_income_table, paper_race_mix
from repro.utils.rng import spawn_generator
from repro.utils.validation import require_probability_vector

__all__ = ["PopulationSpec", "SyntheticPopulation", "generate_population"]


@dataclass(frozen=True)
class PopulationSpec:
    """Specification of a synthetic user population.

    Attributes
    ----------
    size:
        Number of users (the paper's ``N``; default 1000).
    race_mix:
        Sampling probability of each race.  Defaults to the paper's 2002
        household ratio.
    """

    size: int = 1000
    race_mix: Mapping[Race, float] = field(default_factory=paper_race_mix)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be positive")
        require_probability_vector(list(self.race_mix.values()), "race_mix")


@dataclass(frozen=True)
class SyntheticPopulation:
    """A generated population: one race label per user.

    Attributes
    ----------
    races:
        Tuple of :class:`~repro.data.census.Race`, one entry per user.
    """

    races: Tuple[Race, ...]

    @property
    def size(self) -> int:
        """Return the number of users."""
        return len(self.races)

    def indices_by_race(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the array of user indices in that group.

        These are the paper's subsets ``N_s``: the user indices whose race is
        ``s``.  Races with no members map to an empty index array.
        """
        races_array = np.asarray(self.races, dtype=object)
        return {
            race: np.flatnonzero(races_array == race) for race in Race
        }

    def group_sizes(self) -> Dict[Race, int]:
        """Return the number of users in each race group."""
        return {race: int(indices.size) for race, indices in self.indices_by_race().items()}

    def races_array(self) -> np.ndarray:
        """Return the race labels as a numpy object array."""
        return np.asarray(self.races, dtype=object)


def generate_population(
    spec: PopulationSpec,
    rng: int | np.random.Generator | None = None,
) -> SyntheticPopulation:
    """Generate a population according to ``spec``.

    Each user's race is drawn independently from ``spec.race_mix``; the
    result is deterministic given the generator/seed.
    """
    generator = spawn_generator(rng)
    races = list(spec.race_mix.keys())
    probabilities = np.asarray(list(spec.race_mix.values()), dtype=float)
    probabilities = probabilities / probabilities.sum()
    draws = generator.choice(len(races), size=spec.size, p=probabilities)
    return SyntheticPopulation(races=tuple(races[index] for index in draws))


def default_population_inputs() -> Tuple[PopulationSpec, IncomeTable]:
    """Return the paper's population spec and the default income table."""
    return PopulationSpec(), default_income_table()
