"""Income-data substrate.

The paper drives its credit-scoring case study with Table A-2 of the US
Census Bureau's Current Population Survey (households by total money income,
race, and year).  That table is not redistributable here, so this package
provides a **synthetic, embedded equivalent**: per-year, per-race household
income *bracket* distributions for 2002-2020 with the qualitative structure
the paper describes (see ``DESIGN.md`` for the substitution rationale), plus
samplers that draw household incomes from those brackets exactly the way the
paper's simulation does.

Public API
----------
:class:`Race`
    The three race groups used by the paper.
:data:`INCOME_BRACKETS`
    The nine CPS income brackets, in thousands of dollars.
:class:`IncomeTable`
    Bracket shares and household counts by year and race.
:func:`default_income_table`
    The embedded synthetic table covering 2002-2020.
:class:`IncomeSampler`
    Draws household incomes from an :class:`IncomeTable`.
:class:`PopulationSpec` / :func:`generate_population`
    Synthesis of a user population with a given race mix.
"""

from repro.data.census import (
    INCOME_BRACKETS,
    BracketDistribution,
    IncomeTable,
    Race,
    default_income_table,
    paper_race_mix,
)
from repro.data.income import IncomeSampler
from repro.data.synthetic import PopulationSpec, SyntheticPopulation, generate_population
from repro.data.scenarios import (
    recession_scenario,
    shift_distribution,
    widening_gap_scenario,
)

__all__ = [
    "INCOME_BRACKETS",
    "BracketDistribution",
    "IncomeTable",
    "Race",
    "default_income_table",
    "paper_race_mix",
    "IncomeSampler",
    "PopulationSpec",
    "SyntheticPopulation",
    "generate_population",
    "recession_scenario",
    "shift_distribution",
    "widening_gap_scenario",
]
