"""Deterministic fault injection for the fault-tolerance chaos suite.

The execution layer (serial loop, shard worker pool, trial worker pool,
checkpoint writer) calls :func:`fire` at well-known *sites*.  When no plan
is installed the hook is a single module-global check — production runs pay
nothing.  A test installs a plan of :class:`FaultSpec` entries, each naming
a site plus optional ``(trial, shard, step)`` coordinates, and the matching
call then *deterministically* injects one of four failure kinds:

``raise``
    Raise :class:`FaultInjected` (an ordinary worker exception).
``kill``
    ``os._exit`` the current process — from a pool worker this is
    indistinguishable from an OOM kill or SIGKILL and breaks the pool.
``hang``
    Sleep for ``delay`` seconds, simulating a hung worker so supervision
    timeouts can be exercised.
``torn_write``
    Truncate the file named by the firing site (the checkpoint writer
    passes the freshly renamed path), simulating a torn write / partial
    flush that the checkpoint reader must detect and skip.

Plans travel to pool workers through the ``REPRO_FAULTS`` environment
variable (a JSON document; worker processes inherit the parent's
environment), so a single test can arrange for e.g. *shard worker 1 to die
at step 3 of the run* without cooperating code in the worker.

``once`` semantics (the default) arm a fault for exactly one firing *across
processes*: before executing, the harness claims a marker file in the
plan's ``state_dir`` with an atomic exclusive create — so the retried or
resumed worker that replays the same (site, trial, shard, step) coordinates
passes through cleanly, which is precisely the recovery the chaos suite
needs to observe.  Plans installed in-process without a ``state_dir`` fall
back to a per-process claim set (sufficient for single-process tests).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "FAULTS_ENV",
    "KILL_EXIT_CODE",
    "FaultInjected",
    "FaultSpec",
    "clear_plan",
    "fire",
    "install_plan",
    "plan_environment",
]

#: Environment variable carrying a JSON fault plan into worker processes.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit status used by ``kill`` faults (distinctive, so a test harness can
#: tell an injected kill from an organic crash).
KILL_EXIT_CODE = 86

_KINDS = ("raise", "kill", "hang", "torn_write")


class FaultInjected(RuntimeError):
    """The exception raised by a ``raise``-kind injected fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where it fires, what it does.

    ``trial``/``shard``/``step`` are matched against the coordinates the
    firing site supplies; ``None`` is a wildcard.  A site that does not
    supply a coordinate (e.g. the serial loop knows no trial index) only
    matches specs leaving that coordinate ``None``.
    """

    site: str
    kind: str
    trial: int | None = None
    shard: int | None = None
    step: int | None = None
    delay: float = 3600.0
    once: bool = True

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def matches(
        self,
        site: str,
        trial: int | None,
        shard: int | None,
        step: int | None,
    ) -> bool:
        if site != self.site:
            return False
        for want, have in ((self.trial, trial), (self.shard, shard), (self.step, step)):
            if want is not None and have != want:
                return False
        return True

    def identity(self) -> str:
        """Return a stable id naming this spec across processes."""
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def _parse_plan(document: Mapping[str, object]) -> Tuple[List[FaultSpec], str | None]:
    specs = [
        entry if isinstance(entry, FaultSpec) else FaultSpec(**entry)
        for entry in document.get("faults", ())
    ]
    state_dir = document.get("state_dir")
    return specs, (str(state_dir) if state_dir else None)


def plan_environment(
    faults: Iterable[FaultSpec | Mapping[str, object]],
    state_dir: str | os.PathLike | None = None,
) -> Dict[str, str]:
    """Return the ``{REPRO_FAULTS: json}`` mapping encoding a plan.

    Tests set this on ``os.environ`` (or pass it to a subprocess) so pool
    workers — which inherit the environment — arm the same plan.  Give a
    ``state_dir`` whenever a killed-and-retried worker must see the fault
    exactly once.
    """
    entries = [
        asdict(spec) if isinstance(spec, FaultSpec) else dict(spec)
        for spec in faults
    ]
    document: Dict[str, object] = {"faults": entries}
    if state_dir is not None:
        document["state_dir"] = str(state_dir)
    return {FAULTS_ENV: json.dumps(document, sort_keys=True)}


# ----------------------------------------------------------------------
# Plan installation.  Two channels: an explicit in-process plan (wins when
# set) and the environment variable (picked up lazily, cached per value so
# repeated fire() calls don't re-parse JSON).
# ----------------------------------------------------------------------

_LOCAL_PLAN: Tuple[List[FaultSpec], str | None] | None = None
_ENV_CACHE: Tuple[str, Tuple[List[FaultSpec], str | None]] | None = None
_PROCESS_CLAIMS: set[str] = set()


def install_plan(
    faults: Iterable[FaultSpec | Mapping[str, object]],
    state_dir: str | os.PathLike | None = None,
) -> None:
    """Arm a fault plan in this process (overrides the environment)."""
    global _LOCAL_PLAN
    specs = [
        spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
        for spec in faults
    ]
    _LOCAL_PLAN = (specs, str(state_dir) if state_dir is not None else None)


def clear_plan() -> None:
    """Disarm the in-process plan and forget per-process once-claims."""
    global _LOCAL_PLAN, _ENV_CACHE
    _LOCAL_PLAN = None
    _ENV_CACHE = None
    _PROCESS_CLAIMS.clear()


def _active_plan() -> Tuple[List[FaultSpec], str | None] | None:
    global _ENV_CACHE
    if _LOCAL_PLAN is not None:
        return _LOCAL_PLAN
    raw = os.environ.get(FAULTS_ENV)
    if not raw:
        return None
    if _ENV_CACHE is not None and _ENV_CACHE[0] == raw:
        return _ENV_CACHE[1]
    try:
        parsed = _parse_plan(json.loads(raw))
    except (ValueError, TypeError) as error:
        raise ValueError(f"malformed {FAULTS_ENV} fault plan: {error}") from error
    _ENV_CACHE = (raw, parsed)
    return parsed


def _claim(spec: FaultSpec, state_dir: str | None) -> bool:
    """Atomically claim a once-fault; return whether this firing owns it."""
    if state_dir is None:
        key = spec.identity()
        if key in _PROCESS_CLAIMS:
            return False
        _PROCESS_CLAIMS.add(key)
        return True
    os.makedirs(state_dir, exist_ok=True)
    marker = os.path.join(state_dir, f"fired-{spec.identity()}")
    try:
        # O_CREAT|O_EXCL: exactly one process wins, even when the winner is
        # about to os._exit without any cleanup.
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _execute(spec: FaultSpec, path: str | None) -> None:
    if spec.kind == "raise":
        raise FaultInjected(
            f"injected fault at site {spec.site!r} "
            f"(trial={spec.trial}, shard={spec.shard}, step={spec.step})"
        )
    if spec.kind == "kill":
        os._exit(KILL_EXIT_CODE)
    if spec.kind == "hang":
        time.sleep(spec.delay)
        return
    # torn_write: chop the just-written file so its integrity check fails.
    if path is None:
        raise ValueError("a torn_write fault fired at a site without a path")
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(1, size // 2))


def fire(
    site: str,
    *,
    trial: int | None = None,
    shard: int | None = None,
    step: int | None = None,
    path: str | None = None,
) -> None:
    """Fire any armed fault matching ``site`` and the given coordinates.

    The known sites are ``"loop_step"`` (serial loop, per step),
    ``"shard_worker_begin"``/``"shard_worker_respond"`` (inside a shard
    worker process, per shard and step), ``"trial_worker"`` (inside a
    trial-pool worker, per trial), ``"campaign_job"`` (before a campaign
    job runs — pooled worker or in-process; ``trial`` carries the job
    index), and ``"checkpoint_write"`` (after a checkpoint file lands on
    disk; supplies ``path`` for torn writes).
    """
    plan = _active_plan()
    if plan is None:
        return
    specs, state_dir = plan
    for spec in specs:
        if not spec.matches(site, trial, shard, step):
            continue
        if spec.once and not _claim(spec, state_dir):
            continue
        _execute(spec, path)
