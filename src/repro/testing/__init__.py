"""Test-only utilities: deterministic fault injection for the chaos suite.

Nothing in this package is imported by the production execution paths
except the nano-cheap :func:`repro.testing.faults.fire` hook, which is a
single dictionary lookup when no fault plan is installed.
"""

from repro.testing.faults import (
    FaultInjected,
    FaultSpec,
    clear_plan,
    fire,
    install_plan,
    plan_environment,
)

__all__ = [
    "FaultInjected",
    "FaultSpec",
    "clear_plan",
    "fire",
    "install_plan",
    "plan_environment",
]
