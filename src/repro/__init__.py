"""repro — closed-loop view of the regulation of AI (ICDE 2024 reproduction).

The library reproduces Zhou, Ghosh, Shorten and Mareček's *"Closed-Loop View
of the Regulation of AI: Equal Impact across Repeated Interactions"*: a
framework in which an AI system and its user population form a closed loop,
equal treatment is a property of one pass through the loop, and equal impact
is a property of the loop's long-run (ergodic) behaviour.

Package layout
--------------
:mod:`repro.core`
    The closed-loop framework and the executable Definitions 1-4.
:mod:`repro.markov`
    Markov systems / iterated function systems, ergodicity diagnostics,
    invariant measures, incremental ISS, coupling.
:mod:`repro.scoring`
    Scorecards, logistic regression, cut-offs, WOE, calibration.
:mod:`repro.credit`
    Borrowers, mortgages, the Gaussian repayment model, default rates, the
    retraining lender.
:mod:`repro.data`
    The synthetic census-like income table, income samplers, population
    synthesis.
:mod:`repro.baselines`
    The uniform-limit, income-multiple, static-scorecard and
    demographic-parity baselines.
:mod:`repro.experiments`
    The harness that regenerates every table and figure of the paper.

Quick start
-----------
>>> from repro.experiments import CaseStudyConfig, fig3_race_adr
>>> result = fig3_race_adr(CaseStudyConfig(num_users=200, num_trials=2))
>>> isinstance(result.final_gap, float)
True
"""

from repro.core import (
    ClosedLoop,
    CreditPopulation,
    CreditScoringSystem,
    DefaultRateFilter,
    SimulationHistory,
    equal_impact_assessment,
    equal_treatment_assessment,
)
from repro.experiments import CaseStudyConfig, run_experiment, run_trial

__version__ = "1.0.0"

__all__ = [
    "ClosedLoop",
    "CreditPopulation",
    "CreditScoringSystem",
    "DefaultRateFilter",
    "SimulationHistory",
    "equal_treatment_assessment",
    "equal_impact_assessment",
    "CaseStudyConfig",
    "run_trial",
    "run_experiment",
    "__version__",
]
