"""Credit-market substrate for the paper's case study.

This package implements the environment side of the credit-scoring loop:

* :class:`MortgageTerms` — product parameters (income multiple 3.5x, annual
  rate 2.16%, basic living cost $10K);
* :func:`affordability_state` / :class:`BorrowerState` — the paper's private
  state ``x_i(k)`` of equation (10): the fraction of income left after
  living costs and mortgage interest;
* :class:`GaussianRepaymentModel` — the Gaussian conditional-independence
  repayment model of equation (11);
* :class:`DefaultRateTracker` — the average default rates ``ADR_i(k)`` and
  ``ADR_s(k)`` of equation (12);
* :class:`Lender` — the retraining lender: fits a logistic model each year
  on (income code, previous ADR), converts it into a scorecard, and decides
  via the 0.4 cut-off.
"""

from repro.credit.mortgage import MortgageTerms
from repro.credit.borrower import BorrowerState, affordability_state
from repro.credit.repayment import GaussianRepaymentModel
from repro.credit.default_rates import DefaultRateTracker
from repro.credit.lender import Lender, LenderDecision

__all__ = [
    "MortgageTerms",
    "BorrowerState",
    "affordability_state",
    "GaussianRepaymentModel",
    "DefaultRateTracker",
    "Lender",
    "LenderDecision",
]
