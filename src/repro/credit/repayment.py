"""The Gaussian conditional-independence repayment model of equation (11).

Given the affordability state ``x_i(k)`` and the credit decision
``pi(k, i)``:

* if no mortgage is offered, or the state is non-positive (income cannot
  cover living cost plus interest), the repayment action is 0;
* otherwise the repayment is Bernoulli with success probability
  ``Phi(sensitivity * x_i(k))`` where ``Phi`` is the standard normal CDF and
  the paper uses sensitivity 5.

The model follows the Gaussian conditional-independence (Vasicek-style)
framework cited by the paper: conditionally on the systematic factor
(here summarised by the affordability state) repayments are independent
across users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.special import ndtr

from repro.utils.rng import spawn_generator
from repro.utils.validation import require_positive

__all__ = ["GaussianRepaymentModel"]


@dataclass(frozen=True)
class GaussianRepaymentModel:
    """Bernoulli repayment with probit link on the affordability state.

    Attributes
    ----------
    sensitivity:
        Slope applied to the affordability state inside the normal CDF
        (paper: 5).
    """

    sensitivity: float = 5.0

    def __post_init__(self) -> None:
        require_positive(self.sensitivity, "sensitivity")

    def repayment_probability(
        self, affordability: Sequence[float] | np.ndarray | float
    ) -> np.ndarray:
        """Return ``P(repay)`` for each affordability state.

        States at or below zero repay with probability zero, per the first
        branch of equation (11).

        The probit link is evaluated through :func:`scipy.special.ndtr` —
        the exact C kernel ``scipy.stats.norm.cdf`` dispatches to, minus the
        ``rv_continuous`` argument-checking machinery that dominates the
        call at per-shard sizes.  The replacement is bit-identical (pinned
        by a regression test and the engine goldens) and preserves shape:
        any input dimensionality is supported, so the trial-batched engine
        can evaluate a whole ``(trials, users)`` block in one call.
        """
        states = np.atleast_1d(np.asarray(affordability, dtype=float))
        probabilities = ndtr(self.sensitivity * states)
        probabilities = np.where(states <= 0.0, 0.0, probabilities)
        return probabilities

    def sample_repayments(
        self,
        affordability: Sequence[float] | np.ndarray,
        decisions: Sequence[int] | np.ndarray,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample the repayment actions ``y_i(k)`` of equation (11).

        Parameters
        ----------
        affordability:
            Per-user affordability states ``x_i(k)``.
        decisions:
            Per-user credit decisions ``pi(k, i)`` (1 = mortgage offered).
        rng:
            Seed or generator.

        Returns
        -------
        numpy.ndarray
            0/1 repayment actions; a user with no mortgage, or with a
            non-positive state, never repays.
        """
        generator = spawn_generator(rng)
        states = np.atleast_1d(np.asarray(affordability, dtype=float))
        offered = np.atleast_1d(np.asarray(decisions, dtype=float))
        if states.shape != offered.shape:
            raise ValueError("affordability and decisions must align")
        probabilities = self.repayment_probability(states)
        draws = generator.random(states.shape)
        repayments = (draws < probabilities).astype(int)
        repayments[offered == 0] = 0
        return repayments

    def expected_default_rate(
        self, affordability: Sequence[float] | np.ndarray
    ) -> float:
        """Return the expected default rate of an offered portfolio.

        Defaults are "offered but not repaid", so the expectation is
        ``1 - mean(P(repay))`` over the supplied states.
        """
        probabilities = self.repayment_probability(affordability)
        if probabilities.size == 0:
            raise ValueError("affordability must be non-empty")
        return float(1.0 - probabilities.mean())
