"""Average default rates: the filter of the credit-scoring loop.

Equation (12) of the paper defines, for each user ``i`` and each race group
``s``, the *average default rate* at time ``k``:

    ADR_i(k) = P(y_i = 0 | mortgage offered)  estimated from history
             = 1 - (number of repayments up to k) / (number of offers up to k),

    ADR_s(k) = mean of ADR_i(k) over the users of race s.

The tracker below accumulates offers and repayments step by step, exposes
both the per-user and the per-group series, and therefore plays the role of
the "filter" box of Figure 1 — the aggregated, historical statistic the AI
system is retrained on.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.data.census import Race

__all__ = ["DefaultRateTracker"]


class DefaultRateTracker:
    """Accumulates offers and repayments and reports average default rates.

    Parameters
    ----------
    num_users:
        Number of users tracked.
    prior_rate:
        Default rate reported for a user who has never been offered credit;
        the paper's initialisation (everyone approved in the first two
        years) makes this mostly irrelevant, but a defined value keeps the
        filter total and the retraining features well-defined.
    """

    def __init__(self, num_users: int, prior_rate: float = 0.0) -> None:
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        if not 0.0 <= prior_rate <= 1.0:
            raise ValueError("prior_rate must lie in [0, 1]")
        self._num_users = num_users
        self._prior_rate = float(prior_rate)
        self._offers = np.zeros(num_users, dtype=float)
        self._repayments = np.zeros(num_users, dtype=float)
        self._steps_recorded = 0

    @property
    def num_users(self) -> int:
        """Return the number of tracked users."""
        return self._num_users

    @property
    def steps_recorded(self) -> int:
        """Return how many time steps have been recorded."""
        return self._steps_recorded

    @property
    def prior_rate(self) -> float:
        """Return the rate reported for never-offered users."""
        return self._prior_rate

    @property
    def offers(self) -> np.ndarray:
        """Return the cumulative number of offers per user."""
        return self._offers.copy()

    @property
    def repayments(self) -> np.ndarray:
        """Return the cumulative number of repayments per user."""
        return self._repayments.copy()

    def record(
        self,
        decisions: Sequence[int] | np.ndarray,
        repayments: Sequence[int] | np.ndarray,
    ) -> None:
        """Record one time step of decisions and repayment actions.

        ``decisions`` and ``repayments`` are 0/1 arrays with one entry per
        user; a repayment by a user who was not offered credit is rejected as
        inconsistent.
        """
        offered = np.asarray(decisions, dtype=float).ravel()
        repaid = np.asarray(repayments, dtype=float).ravel()
        if offered.shape != (self._num_users,) or repaid.shape != (self._num_users,):
            raise ValueError("decisions and repayments must have one entry per user")
        if np.any(~np.isin(offered, (0.0, 1.0))) or np.any(~np.isin(repaid, (0.0, 1.0))):
            raise ValueError("decisions and repayments must be 0/1")
        if np.any((repaid == 1.0) & (offered == 0.0)):
            raise ValueError("a user cannot repay a mortgage that was not offered")
        self._offers += offered
        self._repayments += repaid
        self._steps_recorded += 1

    def export_state(self) -> Dict[str, object]:
        """Return a picklable snapshot of the tracker's cumulative state.

        The snapshot contains everything needed to reconstruct the tracker
        with :meth:`from_state` — the hook a sharded runner uses to ship
        per-shard filter state between workers.
        """
        return {
            "num_users": self._num_users,
            "prior_rate": self._prior_rate,
            "offers": self._offers.copy(),
            "repayments": self._repayments.copy(),
            "steps_recorded": self._steps_recorded,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "DefaultRateTracker":
        """Rebuild a tracker from an :meth:`export_state` snapshot."""
        tracker = cls(int(state["num_users"]), prior_rate=float(state["prior_rate"]))
        offers = np.asarray(state["offers"], dtype=float).ravel()
        repayments = np.asarray(state["repayments"], dtype=float).ravel()
        if offers.shape != (tracker._num_users,) or repayments.shape != (
            tracker._num_users,
        ):
            raise ValueError("state arrays must have one entry per user")
        tracker._offers = offers.copy()
        tracker._repayments = repayments.copy()
        tracker._steps_recorded = int(state["steps_recorded"])
        return tracker

    def merge(self, other: "DefaultRateTracker") -> "DefaultRateTracker":
        """Merge two trackers that observed disjoint user shards.

        The shards must have recorded the same number of steps with the
        same prior rate; ``other``'s users are appended after ``self``'s.
        Offers and repayments are small integer counts, so the merged
        tracker's rates are exactly those of an unsharded tracker over the
        concatenated population.  This is the mergeability the ROADMAP's
        sharded-population runner requires of the loop filter.
        """
        if not isinstance(other, DefaultRateTracker):
            raise TypeError("can only merge with another DefaultRateTracker")
        if self._steps_recorded != other._steps_recorded:
            raise ValueError(
                "cannot merge trackers with different step counts "
                f"({self._steps_recorded} != {other._steps_recorded})"
            )
        if self._prior_rate != other._prior_rate:
            raise ValueError("cannot merge trackers with different prior rates")
        merged = DefaultRateTracker(
            self._num_users + other._num_users, prior_rate=self._prior_rate
        )
        merged._offers = np.concatenate([self._offers, other._offers])
        merged._repayments = np.concatenate([self._repayments, other._repayments])
        merged._steps_recorded = self._steps_recorded
        return merged

    def user_rates(self) -> np.ndarray:
        """Return ``ADR_i(k)`` for every user at the current step."""
        rates = np.full(self._num_users, self._prior_rate, dtype=float)
        offered = self._offers > 0
        rates[offered] = 1.0 - self._repayments[offered] / self._offers[offered]
        return rates

    def group_rates(self, groups: Mapping[Race, np.ndarray]) -> Dict[Race, float]:
        """Return ``ADR_s(k)`` for each group of user indices.

        ``groups`` maps each race to the array of user indices in that group
        (the paper's ``N_s``); groups with no members report ``nan``.
        """
        user_rates = self.user_rates()
        rates: Dict[Race, float] = {}
        for race, indices in groups.items():
            if indices.size == 0:
                rates[race] = float("nan")
            else:
                rates[race] = float(user_rates[indices].mean())
        return rates

    def portfolio_rate(self) -> float:
        """Return the pooled default rate of all offers made so far."""
        total_offers = float(self._offers.sum())
        if total_offers == 0:
            return self._prior_rate
        return float(1.0 - self._repayments.sum() / total_offers)
