"""Borrower private state: the affordability measure of equation (10).

The paper defines the private state of user ``i`` at time ``k`` as

    x_i(k) = (z_i(k) - living_cost - income_multiple * rate * z_i(k)) / z_i(k),

the fraction of income left after paying the basic living cost and the
annual mortgage interest.  The state is confidential to the user (the lender
only observes the income code and the repayment history) and drives the
repayment probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.credit.mortgage import MortgageTerms
from repro.data.census import Race

__all__ = ["affordability_state", "BorrowerState"]


def affordability_state(
    incomes: Sequence[float] | np.ndarray | float,
    terms: MortgageTerms,
) -> np.ndarray:
    """Return the state ``x_i(k)`` of equation (10) for each income.

    Incomes are in thousands of dollars.  Non-positive incomes produce a
    state of ``-inf`` replaced by a large negative number (the user cannot
    cover any obligation), keeping downstream arithmetic finite.
    """
    array = np.atleast_1d(np.asarray(incomes, dtype=float))
    states = np.empty_like(array)
    positive = array > 0
    z = array[positive]
    obligations = np.asarray(terms.annual_obligation(z), dtype=float)
    states[positive] = (z - obligations) / z
    states[~positive] = -1e6
    return states


@dataclass(frozen=True)
class BorrowerState:
    """Snapshot of one borrower at one time step.

    Attributes
    ----------
    user_index:
        Index of the user in the population.
    race:
        The user's (protected) race attribute — visible to the analysis but
        never to the lender's model.
    income:
        Annual income in thousands of dollars.
    affordability:
        The private state ``x_i(k)`` of equation (10).
    """

    user_index: int
    race: Race
    income: float
    affordability: float

    @classmethod
    def from_income(
        cls, user_index: int, race: Race, income: float, terms: MortgageTerms
    ) -> "BorrowerState":
        """Build the snapshot from an income and the mortgage terms."""
        return cls(
            user_index=user_index,
            race=race,
            income=float(income),
            affordability=float(affordability_state(income, terms)[0]),
        )

    @property
    def can_cover_obligation(self) -> bool:
        """Return whether income covers living cost plus mortgage interest."""
        return self.affordability > 0
