"""Mortgage product terms used by the case study.

The paper's simulation offers every approved user a mortgage worth 3.5 times
their annual income, charges 2.16% annual interest, and assumes a basic
living cost of $10K per year.  All monetary amounts in the library are in
thousands of dollars.

The introduction's "equal treatment" counter-example — a uniform credit
limit of $50K for everyone — is covered by the optional ``fixed_principal``:
when set, the mortgage size no longer scales with income.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["MortgageTerms"]


@dataclass(frozen=True)
class MortgageTerms:
    """Terms of the mortgage product offered to approved users.

    Attributes
    ----------
    income_multiple:
        Size of the mortgage as a multiple of annual income (paper: 3.5).
    annual_rate:
        Annual interest rate as a fraction (paper: 0.0216, i.e. 2.16%).
    living_cost:
        Basic annual living cost in thousands of dollars (paper: 10).
    fixed_principal:
        When set, every approved user receives a mortgage of this fixed size
        (in $K) instead of the income multiple — the introduction's uniform
        $50K credit limit.
    """

    income_multiple: float = 3.5
    annual_rate: float = 0.0216
    living_cost: float = 10.0
    fixed_principal: float | None = None

    def __post_init__(self) -> None:
        require_positive(self.income_multiple, "income_multiple")
        require_non_negative(self.annual_rate, "annual_rate")
        require_non_negative(self.living_cost, "living_cost")
        if self.fixed_principal is not None:
            require_positive(self.fixed_principal, "fixed_principal")

    def principal(
        self, income: float | Sequence[float] | np.ndarray
    ) -> np.ndarray | float:
        """Return the mortgage principal offered on ``income`` ($K).

        Accepts scalars or arrays; with ``fixed_principal`` set the result is
        constant regardless of income.
        """
        incomes = np.asarray(income, dtype=float)
        if np.any(incomes < 0):
            raise ValueError("income must be non-negative")
        if self.fixed_principal is not None:
            principals = np.full_like(incomes, self.fixed_principal, dtype=float)
        else:
            principals = self.income_multiple * incomes
        return principals if incomes.ndim else float(principals)

    def annual_interest(
        self, income: float | Sequence[float] | np.ndarray
    ) -> np.ndarray | float:
        """Return the annual interest due on the mortgage offered at ``income``."""
        return np.asarray(self.principal(income), dtype=float) * self.annual_rate if np.ndim(income) else float(self.principal(income)) * self.annual_rate

    def annual_obligation(
        self, income: float | Sequence[float] | np.ndarray
    ) -> np.ndarray | float:
        """Return living cost plus annual mortgage interest for ``income``."""
        interest = self.annual_interest(income)
        if np.ndim(income):
            return self.living_cost + np.asarray(interest, dtype=float)
        return self.living_cost + float(interest)
