"""The retraining lender: the paper's AI system for the credit case study.

Each year the lender

1. assembles the design matrix (income code, previous average default rate)
   for every user,
2. refits a logistic regression whose label is last year's repayment action,
3. converts the fitted model into a scorecard (the yearly "Table I"), and
4. approves every user whose score exceeds the fixed cut-off (0.4).

During the warm-up years (the paper's 2002-2003) no scorecard exists and
everyone is approved, which initialises the average default rates the later
scorecards are trained on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.scoring.cutoff import CutoffPolicy
from repro.scoring.features import FeatureBuilder, clipped_default_rates
from repro.scoring.logistic import LogisticRegression
from repro.scoring.scorecard import Scorecard
from repro.scoring.suffstats import CompressedDesign

__all__ = ["LenderDecision", "Lender"]

_RETRAIN_MODES = ("exact", "compressed")


@dataclass(frozen=True)
class LenderDecision:
    """Outcome of one lender decision round.

    Attributes
    ----------
    decisions:
        0/1 approval per user.
    scores:
        Score per user (``nan`` during warm-up rounds with no scorecard).
    scorecard:
        The scorecard used this round, or ``None`` during warm-up.
    warm_up:
        Whether this round applied the approve-everyone warm-up rule.
    """

    decisions: np.ndarray
    scores: np.ndarray
    scorecard: Scorecard | None
    warm_up: bool

    @property
    def approval_rate(self) -> float:
        """Return the fraction of users approved this round."""
        return float(np.mean(self.decisions))


class Lender:
    """Scorecard lender retrained every round on the filtered loop signal.

    Parameters
    ----------
    cutoff:
        Decision cut-off on the scorecard score (paper: 0.4).
    warm_up_rounds:
        Number of initial rounds during which everyone is approved
        (paper: 2, the years 2002 and 2003).
    feature_builder:
        Builder of the (income code, previous ADR) design matrix.
    l2_penalty:
        Ridge penalty of the yearly logistic refit.
    retrain_mode:
        ``"exact"`` (default) refits on the row-level training set;
        ``"compressed"`` first deduplicates it into a
        :class:`~repro.scoring.suffstats.CompressedDesign` count table and
        routes the refit through the weighted IRLS path, so each Newton
        iteration costs O(unique rows) instead of O(users).  Both modes
        optimise the same objective; the compressed coefficients agree with
        the exact ones to solver tolerance (the equivalence suite pins
        identical decision vectors at paper scale).
    warm_start:
        Seed each refit's Newton iteration at the previous year's
        parameters instead of zero.  Opt-in: it changes the iteration path
        (not the optimum), so it stays off the default reproduction path.
    """

    def __init__(
        self,
        cutoff: float = 0.4,
        warm_up_rounds: int = 2,
        feature_builder: FeatureBuilder | None = None,
        l2_penalty: float = 1e-3,
        retrain_mode: str = "exact",
        warm_start: bool = False,
    ) -> None:
        if warm_up_rounds < 0:
            raise ValueError("warm_up_rounds must be non-negative")
        if retrain_mode not in _RETRAIN_MODES:
            raise ValueError(
                f'retrain_mode must be one of {_RETRAIN_MODES}, got {retrain_mode!r}'
            )
        self._cutoff_policy = CutoffPolicy(cutoff=cutoff)
        self._warm_up_rounds = warm_up_rounds
        self._feature_builder = feature_builder or FeatureBuilder()
        self._l2_penalty = l2_penalty
        self._retrain_mode = retrain_mode
        self._warm_start = bool(warm_start)
        self._rounds_seen = 0
        self._scorecard: Scorecard | None = None
        self._model: LogisticRegression | None = None

    @property
    def cutoff(self) -> float:
        """Return the decision cut-off."""
        return self._cutoff_policy.cutoff

    @property
    def retrain_mode(self) -> str:
        """Return the refit strategy (``"exact"`` or ``"compressed"``)."""
        return self._retrain_mode

    @property
    def warm_start(self) -> bool:
        """Return whether refits warm-start at the previous parameters."""
        return self._warm_start

    @property
    def feature_builder(self) -> FeatureBuilder:
        """Return the builder of the (income code, previous ADR) matrix."""
        return self._feature_builder

    @property
    def scorecard(self) -> Scorecard | None:
        """Return the most recently trained scorecard (``None`` before training)."""
        return self._scorecard

    @property
    def rounds_seen(self) -> int:
        """Return the number of decision rounds performed."""
        return self._rounds_seen

    @property
    def in_warm_up(self) -> bool:
        """Return whether the next decision round is still a warm-up round."""
        return self._rounds_seen < self._warm_up_rounds

    def retrain(
        self,
        incomes: Sequence[float] | np.ndarray,
        previous_default_rates: Sequence[float] | np.ndarray,
        repayments: Sequence[int] | np.ndarray,
        offered: Sequence[int] | np.ndarray | None = None,
    ) -> Scorecard:
        """Refit the logistic model and refresh the scorecard.

        Parameters
        ----------
        incomes:
            Last year's incomes (the features the new card will be trained
            on use the *income code*, not the raw income).
        previous_default_rates:
            The users' average default rates entering last year.
        repayments:
            Last year's observed repayment actions (the training label).
        offered:
            Optional 0/1 mask restricting the training set to users who were
            actually offered a mortgage (only they produce an observable
            label).  When omitted every user is used, which matches the
            paper's warm-up where everyone is approved.  A mask selecting
            fewer than 2 users keeps the previous scorecard (there is no
            informative label to refit on), or raises :class:`ValueError`
            when no scorecard exists yet.

        Returns
        -------
        Scorecard
            The freshly trained scorecard (also stored on the lender).
        """
        if self._retrain_mode == "compressed":
            return self._retrain_compressed(
                incomes, previous_default_rates, repayments, offered
            )
        features = self._feature_builder.design_matrix(incomes, previous_default_rates)
        labels = np.asarray(repayments, dtype=float).ravel()
        if offered is not None:
            mask = np.asarray(offered, dtype=float).ravel() == 1.0
            if mask.shape[0] != features.shape[0]:
                raise ValueError("offered mask must have one entry per user")
            if mask.sum() < 2:
                return self._degenerate_offered_mask()
            features = features[mask]
            labels = labels[mask]
        model = LogisticRegression(l2_penalty=self._l2_penalty)
        model.fit(features, labels, initial_parameters=self._warm_start_parameters())
        return self._install_model(model)

    def _retrain_compressed(
        self,
        incomes: Sequence[float] | np.ndarray,
        previous_default_rates: Sequence[float] | np.ndarray,
        repayments: Sequence[int] | np.ndarray,
        offered: Sequence[int] | np.ndarray | None,
    ) -> Scorecard:
        """The O(unique rows) refit: compress first, never build (n, 2).

        Semantically this is the exact path with
        :class:`~repro.scoring.suffstats.CompressedDesign` in between —
        same feature definitions (income code, rates clipped to [0, 1]
        after the same tolerance check), same ``offered`` handling — but it
        skips materialising the row-level design matrix, so the whole step
        is a few O(users) passes plus one sort of packed 64-bit keys.
        """
        # The boolean comparison IS the income code (income_code merely
        # casts it to float); CompressedDesign takes the bool column
        # without a cast or a redundant binary check.
        codes = (
            np.asarray(incomes, dtype=float).ravel()
            >= self._feature_builder.income_threshold
        )
        rates = np.asarray(previous_default_rates, dtype=float).ravel()
        if codes.shape != rates.shape:
            raise ValueError("incomes and previous_default_rates must align")
        labels = np.asarray(repayments, dtype=float).ravel()
        if offered is not None:
            mask_array = np.asarray(offered, dtype=float).ravel()
            if mask_array.shape[0] != codes.shape[0]:
                raise ValueError("offered mask must have one entry per user")
        table = CompressedDesign.from_arrays(
            codes, clipped_default_rates(rates), labels, offered=offered
        )
        if offered is not None and table.num_rows < 2:
            return self._degenerate_offered_mask()
        return self._fit_from_table(table)

    def _degenerate_offered_mask(self) -> Scorecard:
        """Handle an offered mask selecting fewer than 2 users.

        Almost nobody was offered credit this round, so there is no
        informative label to learn from: keep the previous card rather than
        refitting on labels that are zero by construction for every denied
        user.  With no previous card either, refitting on the *unmasked*
        population (the old silent fall-through) would train on labels the
        lender never observed — refuse explicitly instead.
        """
        if self._scorecard is not None:
            return self._scorecard
        raise ValueError(
            "the offered mask selects fewer than 2 users and no "
            "previous scorecard exists to fall back on; train at "
            "least once on an informative round (or omit `offered` "
            "to reproduce the approve-everyone warm-up)"
        )

    def retrain_from_suffstats(self, table: CompressedDesign) -> Scorecard:
        """Refit from a pre-aggregated count table (sharded retraining).

        The sharded closed-loop runner builds one
        :class:`~repro.scoring.suffstats.CompressedDesign` per worker shard
        and merges them by exact integer addition; this entry point runs the
        tiny O(unique rows) central fit on the merged table.  The degenerate
        cases mirror :meth:`retrain`'s `offered` handling: a table with
        fewer than 2 represented rows keeps the previous card, or raises
        when none exists.
        """
        if table.num_rows < 2:
            if self._scorecard is not None:
                return self._scorecard
            raise ValueError(
                "the count table represents fewer than 2 offered users and "
                "no previous scorecard exists to fall back on"
            )
        return self._fit_from_table(table)

    def _warm_start_parameters(self) -> np.ndarray | None:
        """Return the previous fit's ``[intercept, *coefficients]``, or None."""
        if not self._warm_start or self._model is None:
            return None
        fit = self._model.fit_result
        return np.concatenate([[fit.intercept], fit.coefficients])

    def _fit_from_table(self, table: CompressedDesign) -> Scorecard:
        """Run the weighted O(unique rows) refit on a count table."""
        model = LogisticRegression(l2_penalty=self._l2_penalty)
        model.fit(
            table.design_matrix(),
            table.labels,
            sample_weights=table.counts,
            initial_parameters=self._warm_start_parameters(),
        )
        return self._install_model(model)

    def _install_model(self, model: LogisticRegression) -> Scorecard:
        """Store a freshly fitted model and rebuild the scorecard from it."""
        self._model = model
        self._scorecard = Scorecard.from_logistic(
            model,
            feature_names=list(self._feature_builder.feature_names),
            descriptions={
                "income_code": "income code 1{income >= $15K}",
                "average_default_rate": "x average default rate",
            },
        )
        return self._scorecard

    def export_state(self) -> Dict[str, object]:
        """Return a picklable snapshot of the lender's learning state.

        The state is the round counter plus the fitted model; the scorecard
        is *derived* (rebuilt deterministically from the model's
        coefficients on import), and the constructor knobs (cutoff, warm-up
        length, penalty, modes) are deliberately excluded — a restored
        lender must be constructed with the same configuration, which the
        checkpoint layer guards with its config fingerprint.
        """
        return {"rounds_seen": self._rounds_seen, "model": self._model}

    def import_state(self, state: Mapping[str, object]) -> None:
        """Restore the learning state captured by :meth:`export_state`."""
        self._rounds_seen = int(state["rounds_seen"])
        model = state.get("model")
        if model is None:
            self._model = None
            self._scorecard = None
        else:
            self._install_model(model)

    def decide(
        self,
        incomes: Sequence[float] | np.ndarray,
        previous_default_rates: Sequence[float] | np.ndarray,
    ) -> LenderDecision:
        """Produce this round's credit decisions.

        During warm-up rounds everyone is approved and scores are ``nan``;
        afterwards the stored scorecard scores the (income code, previous
        ADR) features and the cut-off policy converts scores to decisions.
        A lender past warm-up with no trained scorecard raises
        :class:`RuntimeError` — callers must retrain first.
        """
        incomes_array = np.asarray(incomes, dtype=float).ravel()
        rates_array = np.asarray(previous_default_rates, dtype=float).ravel()
        if incomes_array.shape != rates_array.shape:
            raise ValueError("incomes and previous_default_rates must align")
        if self.in_warm_up:
            decision = LenderDecision(
                decisions=np.ones(incomes_array.size, dtype=int),
                scores=np.full(incomes_array.size, np.nan),
                scorecard=None,
                warm_up=True,
            )
        else:
            if self._scorecard is None:
                raise RuntimeError("the lender must be retrained before deciding")
            features = self._feature_builder.design_matrix(incomes_array, rates_array)
            scores = self._scorecard.score_matrix(features)
            decision = LenderDecision(
                decisions=self._cutoff_policy.decide(scores),
                scores=scores,
                scorecard=self._scorecard,
                warm_up=False,
            )
        self._rounds_seen += 1
        return decision
