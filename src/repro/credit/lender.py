"""The retraining lender: the paper's AI system for the credit case study.

Each year the lender

1. assembles the design matrix (income code, previous average default rate)
   for every user,
2. refits a logistic regression whose label is last year's repayment action,
3. converts the fitted model into a scorecard (the yearly "Table I"), and
4. approves every user whose score exceeds the fixed cut-off (0.4).

During the warm-up years (the paper's 2002-2003) no scorecard exists and
everyone is approved, which initialises the average default rates the later
scorecards are trained on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.scoring.cutoff import CutoffPolicy
from repro.scoring.features import FeatureBuilder
from repro.scoring.logistic import LogisticRegression
from repro.scoring.scorecard import Scorecard

__all__ = ["LenderDecision", "Lender"]


@dataclass(frozen=True)
class LenderDecision:
    """Outcome of one lender decision round.

    Attributes
    ----------
    decisions:
        0/1 approval per user.
    scores:
        Score per user (``nan`` during warm-up rounds with no scorecard).
    scorecard:
        The scorecard used this round, or ``None`` during warm-up.
    warm_up:
        Whether this round applied the approve-everyone warm-up rule.
    """

    decisions: np.ndarray
    scores: np.ndarray
    scorecard: Scorecard | None
    warm_up: bool

    @property
    def approval_rate(self) -> float:
        """Return the fraction of users approved this round."""
        return float(np.mean(self.decisions))


class Lender:
    """Scorecard lender retrained every round on the filtered loop signal.

    Parameters
    ----------
    cutoff:
        Decision cut-off on the scorecard score (paper: 0.4).
    warm_up_rounds:
        Number of initial rounds during which everyone is approved
        (paper: 2, the years 2002 and 2003).
    feature_builder:
        Builder of the (income code, previous ADR) design matrix.
    l2_penalty:
        Ridge penalty of the yearly logistic refit.
    """

    def __init__(
        self,
        cutoff: float = 0.4,
        warm_up_rounds: int = 2,
        feature_builder: FeatureBuilder | None = None,
        l2_penalty: float = 1e-3,
    ) -> None:
        if warm_up_rounds < 0:
            raise ValueError("warm_up_rounds must be non-negative")
        self._cutoff_policy = CutoffPolicy(cutoff=cutoff)
        self._warm_up_rounds = warm_up_rounds
        self._feature_builder = feature_builder or FeatureBuilder()
        self._l2_penalty = l2_penalty
        self._rounds_seen = 0
        self._scorecard: Scorecard | None = None
        self._model: LogisticRegression | None = None

    @property
    def cutoff(self) -> float:
        """Return the decision cut-off."""
        return self._cutoff_policy.cutoff

    @property
    def scorecard(self) -> Scorecard | None:
        """Return the most recently trained scorecard (``None`` before training)."""
        return self._scorecard

    @property
    def rounds_seen(self) -> int:
        """Return the number of decision rounds performed."""
        return self._rounds_seen

    @property
    def in_warm_up(self) -> bool:
        """Return whether the next decision round is still a warm-up round."""
        return self._rounds_seen < self._warm_up_rounds

    def retrain(
        self,
        incomes: Sequence[float] | np.ndarray,
        previous_default_rates: Sequence[float] | np.ndarray,
        repayments: Sequence[int] | np.ndarray,
        offered: Sequence[int] | np.ndarray | None = None,
    ) -> Scorecard:
        """Refit the logistic model and refresh the scorecard.

        Parameters
        ----------
        incomes:
            Last year's incomes (the features the new card will be trained
            on use the *income code*, not the raw income).
        previous_default_rates:
            The users' average default rates entering last year.
        repayments:
            Last year's observed repayment actions (the training label).
        offered:
            Optional 0/1 mask restricting the training set to users who were
            actually offered a mortgage (only they produce an observable
            label).  When omitted every user is used, which matches the
            paper's warm-up where everyone is approved.

        Returns
        -------
        Scorecard
            The freshly trained scorecard (also stored on the lender).
        """
        features = self._feature_builder.design_matrix(incomes, previous_default_rates)
        labels = np.asarray(repayments, dtype=float).ravel()
        if offered is not None:
            mask = np.asarray(offered, dtype=float).ravel() == 1.0
            if mask.shape[0] != features.shape[0]:
                raise ValueError("offered mask must have one entry per user")
            if mask.sum() >= 2:
                features = features[mask]
                labels = labels[mask]
            elif self._scorecard is not None:
                # Almost nobody was offered credit this round, so there is no
                # informative label to learn from; keep the previous card
                # rather than refitting on labels that are zero by
                # construction for every denied user.
                return self._scorecard
        model = LogisticRegression(l2_penalty=self._l2_penalty)
        model.fit(features, labels)
        self._model = model
        self._scorecard = Scorecard.from_logistic(
            model,
            feature_names=list(self._feature_builder.feature_names),
            descriptions={
                "income_code": "income code 1{income >= $15K}",
                "average_default_rate": "x average default rate",
            },
        )
        return self._scorecard

    def decide(
        self,
        incomes: Sequence[float] | np.ndarray,
        previous_default_rates: Sequence[float] | np.ndarray,
    ) -> LenderDecision:
        """Produce this round's credit decisions.

        During warm-up rounds everyone is approved and scores are ``nan``;
        afterwards the stored scorecard scores the (income code, previous
        ADR) features and the cut-off policy converts scores to decisions.
        A lender past warm-up with no trained scorecard raises
        :class:`RuntimeError` — callers must retrain first.
        """
        incomes_array = np.asarray(incomes, dtype=float).ravel()
        rates_array = np.asarray(previous_default_rates, dtype=float).ravel()
        if incomes_array.shape != rates_array.shape:
            raise ValueError("incomes and previous_default_rates must align")
        if self.in_warm_up:
            decision = LenderDecision(
                decisions=np.ones(incomes_array.size, dtype=int),
                scores=np.full(incomes_array.size, np.nan),
                scorecard=None,
                warm_up=True,
            )
        else:
            if self._scorecard is None:
                raise RuntimeError("the lender must be retrained before deciding")
            features = self._feature_builder.design_matrix(incomes_array, rates_array)
            scores = self._scorecard.score_matrix(features)
            decision = LenderDecision(
                decisions=self._cutoff_policy.decide(scores),
                scores=scores,
                scorecard=self._scorecard,
                warm_up=False,
            )
        self._rounds_seen += 1
        return decision
