"""Experiment E-F4: user-wise average default rates (Figure 4).

The paper's Figure 4 overlays all ``5 x 1000`` user-wise series
``ADR_i(k)`` (coloured by race) and observes that they dwindle towards a
similar level.  The reproduction collects the same stack of series and
summarises its dispersion over time: the cross-user spread and standard
deviation at the start and at the end of the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.experiments.config import CaseStudyConfig
from repro.experiments.reporting import format_series_table
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = ["Fig4Result", "fig4_user_adr"]


@dataclass(frozen=True)
class Fig4Result:
    """Reproduction of Figure 4.

    Attributes
    ----------
    years:
        Calendar years of the series.
    user_series:
        All user-wise ADR series stacked as ``(trials * users, steps)``.
    user_races:
        The race label of each stacked series.
    dispersion_series:
        Cross-user standard deviation of ``ADR_i(k)`` at each year.
    initial_spread, final_spread:
        Cross-user max-min spread at the first post-warm-up year and at the
        final year.
    """

    years: Tuple[int, ...]
    user_series: np.ndarray
    user_races: np.ndarray
    dispersion_series: np.ndarray
    initial_spread: float
    final_spread: float

    @property
    def num_series(self) -> int:
        """Return the number of user series (trials times users)."""
        return int(self.user_series.shape[0])

    def summary(self) -> str:
        """Return the per-year dispersion as a plain-text table."""
        table = format_series_table(
            list(self.years),
            {
                "cross-user std of ADR_i(k)": self.dispersion_series,
                "mean ADR_i(k)": self.user_series.mean(axis=0),
            },
            index_name="year",
        )
        return (
            f"{self.num_series} user-wise series\n{table}\n\n"
            f"cross-user spread: initial {self.initial_spread:.4f} "
            f"-> final {self.final_spread:.4f}"
        )


def fig4_user_adr(
    config: CaseStudyConfig | None = None,
    result: ExperimentResult | None = None,
) -> Fig4Result:
    """Reproduce Figure 4 (optionally reusing an existing experiment run)."""
    experiment = result or run_experiment(config or CaseStudyConfig())
    stacked = experiment.stacked_user_series()
    races = experiment.stacked_user_races()
    warm_up = experiment.config.warm_up_rounds
    initial_index = min(warm_up, stacked.shape[1] - 1)
    return Fig4Result(
        years=experiment.years,
        user_series=stacked,
        user_races=races,
        dispersion_series=stacked.std(axis=0),
        initial_spread=float(stacked[:, initial_index].max() - stacked[:, initial_index].min()),
        final_spread=float(stacked[:, -1].max() - stacked[:, -1].min()),
    )
