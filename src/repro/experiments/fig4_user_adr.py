"""Experiment E-F4: user-wise average default rates (Figure 4).

The paper's Figure 4 overlays all ``5 x 1000`` user-wise series
``ADR_i(k)`` (coloured by race) and observes that they dwindle towards a
similar level.  The reproduction collects the same stack of series and
summarises its dispersion over time: the cross-user spread and standard
deviation at the start and at the end of the simulation.

The driver runs end-to-end in both history modes.  In
``history_mode="full"`` the raw ``(trials * users, steps)`` stack is
available as before.  In ``history_mode="aggregate"`` the stack is never
materialised — the summary statistics are instead assembled from the
streaming per-step moments (sum, sum of squares, min, max of
``ADR_i(k)``), which keeps a million-user figure inside ``O(users)``
memory.  The group-level series (``group_mean_series``) and the cross-user
spreads are bit-identical between the modes; the pooled standard deviation
uses the one-pass moment formula in aggregate mode and therefore agrees
with the full-history two-pass ``np.std`` to floating-point reassociation
error (the equivalence suite pins both statements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.data.census import Race
from repro.experiments.config import CaseStudyConfig
from repro.experiments.reporting import format_series_table
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = ["Fig4Result", "fig4_user_adr"]


@dataclass(frozen=True)
class Fig4Result:
    """Reproduction of Figure 4.

    Attributes
    ----------
    years:
        Calendar years of the series.
    user_series:
        All user-wise ADR series stacked as ``(trials * users, steps)``,
        or ``None`` when the experiment ran in aggregate mode.
    user_races:
        The race label of each stacked series (``None`` in aggregate mode).
    num_series:
        Number of user series behind the summary (trials times users).
    group_mean_series:
        Per race, the across-trial mean of ``ADR_s(k)`` — the group-level
        view of the same stack, bit-identical between history modes.
    mean_series:
        Mean of ``ADR_i(k)`` over all users and trials, per year.
    dispersion_series:
        Cross-user standard deviation of ``ADR_i(k)`` at each year.
    initial_spread, final_spread:
        Cross-user max-min spread at the first post-warm-up year and at the
        final year (bit-identical between history modes).
    """

    years: Tuple[int, ...]
    user_series: np.ndarray | None
    user_races: np.ndarray | None
    num_series: int
    group_mean_series: Dict[Race, np.ndarray]
    mean_series: np.ndarray
    dispersion_series: np.ndarray
    initial_spread: float
    final_spread: float

    def summary(self) -> str:
        """Return the per-year dispersion as a plain-text table."""
        table = format_series_table(
            list(self.years),
            {
                "cross-user std of ADR_i(k)": self.dispersion_series,
                "mean ADR_i(k)": self.mean_series,
            },
            index_name="year",
        )
        return (
            f"{self.num_series} user-wise series\n{table}\n\n"
            f"cross-user spread: initial {self.initial_spread:.4f} "
            f"-> final {self.final_spread:.4f}"
        )


def _full_history_result(experiment: ExperimentResult, initial_index: int) -> Fig4Result:
    """Assemble the figure from the materialised user-series stack."""
    stacked = experiment.stacked_user_series()
    races = experiment.stacked_user_races()
    return Fig4Result(
        years=experiment.years,
        user_series=stacked,
        user_races=races,
        num_series=int(stacked.shape[0]),
        group_mean_series=experiment.group_mean_series(),
        mean_series=stacked.mean(axis=0),
        dispersion_series=stacked.std(axis=0),
        initial_spread=float(stacked[:, initial_index].max() - stacked[:, initial_index].min()),
        final_spread=float(stacked[:, -1].max() - stacked[:, -1].min()),
    )


def _aggregate_result(experiment: ExperimentResult, initial_index: int) -> Fig4Result:
    """Assemble the figure from streaming per-step moments (no user stack).

    The pooled maxima/minima — and hence the spreads — are exact (max over
    the stack equals the max of per-trial maxima); the pooled standard
    deviation uses the one-pass ``E[x^2] - E[x]^2`` formula.
    """
    num_steps = len(experiment.years)
    total_sum = np.zeros(num_steps)
    total_sumsq = np.zeros(num_steps)
    pooled_min = np.full(num_steps, np.inf)
    pooled_max = np.full(num_steps, -np.inf)
    num_series = 0
    for trial in experiment.trials:
        aggregator = trial.history.aggregator
        total_sum += aggregator.rate_sum_series()
        total_sumsq += aggregator.rate_sumsq_series()
        pooled_min = np.minimum(pooled_min, aggregator.rate_min_series())
        pooled_max = np.maximum(pooled_max, aggregator.rate_max_series())
        num_series += aggregator.num_users
    mean_series = total_sum / num_series
    variance = np.maximum(total_sumsq / num_series - np.square(mean_series), 0.0)
    return Fig4Result(
        years=experiment.years,
        user_series=None,
        user_races=None,
        num_series=num_series,
        group_mean_series=experiment.group_mean_series(),
        mean_series=mean_series,
        dispersion_series=np.sqrt(variance),
        initial_spread=float(pooled_max[initial_index] - pooled_min[initial_index]),
        final_spread=float(pooled_max[-1] - pooled_min[-1]),
    )


def fig4_user_adr(
    config: CaseStudyConfig | None = None,
    result: ExperimentResult | None = None,
) -> Fig4Result:
    """Reproduce Figure 4 (optionally reusing an existing experiment run)."""
    experiment = result or run_experiment(config or CaseStudyConfig())
    if not experiment.trials:
        raise ValueError(
            "fig4_user_adr needs the per-trial results (user stacks or "
            "streaming moments); rerun with keep_trials=True"
        )
    warm_up = experiment.config.warm_up_rounds
    initial_index = min(warm_up, len(experiment.years) - 1)
    if experiment.history_mode == "aggregate":
        return _aggregate_result(experiment, initial_index)
    return _full_history_result(experiment, initial_index)
