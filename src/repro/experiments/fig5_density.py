"""Experiment E-F5: the density of user-wise default rates (Figure 5).

The paper's Figure 5 erases the race labels and shows, per year, the
density of ``ADR_i(k)`` across all users and trials (darker shades meaning
higher density).  The reproduction histograms the same stack of values on a
fixed binning of [0, 1] per year and reports where the mass concentrates
over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.experiments.config import CaseStudyConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = ["Fig5Result", "fig5_density"]


@dataclass(frozen=True)
class Fig5Result:
    """Reproduction of Figure 5.

    Attributes
    ----------
    years:
        Calendar years of the series.
    bin_edges:
        Edges of the ADR bins (shared across years).
    density:
        ``(steps, bins)`` matrix; row ``k`` is the normalised histogram of
        ``ADR_i(k)`` over all users and trials.
    modal_bin_centers:
        Per year, the centre of the bin with the highest density.
    mass_below_010:
        Per year, the share of users with ``ADR_i(k) <= 0.10``.
    """

    years: Tuple[int, ...]
    bin_edges: np.ndarray
    density: np.ndarray
    modal_bin_centers: np.ndarray
    mass_below_010: np.ndarray

    def summary(self) -> str:
        """Return the per-year modal bin and low-ADR mass as a table."""
        rows = [
            [year, float(self.modal_bin_centers[index]), float(self.mass_below_010[index])]
            for index, year in enumerate(self.years)
        ]
        return format_table(
            ["year", "modal ADR bin centre", "share of users with ADR <= 0.10"], rows
        )


def fig5_density(
    config: CaseStudyConfig | None = None,
    result: ExperimentResult | None = None,
    num_bins: int = 20,
) -> Fig5Result:
    """Reproduce Figure 5 (optionally reusing an existing experiment run).

    The density is a genuinely per-user quantity, so this figure requires
    ``history_mode="full"``; an aggregate-mode experiment raises
    :class:`~repro.core.history.FullHistoryRequiredError` (via
    ``stacked_user_series``).
    """
    if num_bins < 2:
        raise ValueError("num_bins must be at least 2")
    experiment = result or run_experiment(config or CaseStudyConfig())
    stacked = experiment.stacked_user_series()  # (series, steps)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    num_steps = stacked.shape[1]
    density = np.empty((num_steps, num_bins), dtype=float)
    modal = np.empty(num_steps, dtype=float)
    low_mass = np.empty(num_steps, dtype=float)
    for step in range(num_steps):
        values = stacked[:, step]
        histogram, _ = np.histogram(values, bins=edges)
        total = max(histogram.sum(), 1)
        density[step] = histogram / total
        modal[step] = float(centers[int(np.argmax(histogram))])
        low_mass[step] = float(np.mean(values <= 0.10))
    return Fig5Result(
        years=experiment.years,
        bin_edges=edges,
        density=density,
        modal_bin_centers=modal,
        mass_below_010=low_mass,
    )
