"""Experiment E-F5: the density of user-wise default rates (Figure 5).

The paper's Figure 5 erases the race labels and shows, per year, the
density of ``ADR_i(k)`` across all users and trials (darker shades meaning
higher density).  The reproduction histograms the same stack of values on a
fixed binning of [0, 1] per year and reports where the mass concentrates
over time.

The driver runs end-to-end in both history modes.  In
``history_mode="full"`` the histogram is computed from the materialised
``(trials * users, steps)`` stack as before.  In
``history_mode="aggregate"`` the same integer counts arrive from the
per-step histograms the :class:`~repro.core.streaming.StreamingAggregator`
accumulates online (fixed [0, 1] binning, one ``np.histogram`` with the
identical edge array per step), pooled across trials by exact integer
addition — so the density matrix, the modal bins and the low-ADR mass are
**bit-identical** between the modes while the aggregate path never
materialises a per-user matrix.  The only constraint is that the binning is
fixed at recording time: an aggregate-mode result can only be rendered at
the aggregator's ``rate_bins`` (the shared default,
:data:`~repro.core.streaming.DEFAULT_RATE_BINS`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.streaming import DEFAULT_RATE_BINS
from repro.experiments.config import CaseStudyConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = ["Fig5Result", "fig5_density"]


@dataclass(frozen=True)
class Fig5Result:
    """Reproduction of Figure 5.

    Attributes
    ----------
    years:
        Calendar years of the series.
    bin_edges:
        Edges of the ADR bins (shared across years).
    density:
        ``(steps, bins)`` matrix; row ``k`` is the normalised histogram of
        ``ADR_i(k)`` over all users and trials.
    modal_bin_centers:
        Per year, the centre of the bin with the highest density.
    mass_below_010:
        Per year, the share of users with ``ADR_i(k) <= 0.10``.
    """

    years: Tuple[int, ...]
    bin_edges: np.ndarray
    density: np.ndarray
    modal_bin_centers: np.ndarray
    mass_below_010: np.ndarray

    def summary(self) -> str:
        """Return the per-year modal bin and low-ADR mass as a table."""
        rows = [
            [year, float(self.modal_bin_centers[index]), float(self.mass_below_010[index])]
            for index, year in enumerate(self.years)
        ]
        return format_table(
            ["year", "modal ADR bin centre", "share of users with ADR <= 0.10"], rows
        )


def _from_streaming_histograms(
    experiment: ExperimentResult, num_bins: int
) -> Fig5Result:
    """Assemble the figure from the aggregators' per-step histograms.

    Integer counts pool exactly across trials, so the density rows equal
    the full-history histograms of the concatenated stack bit for bit.
    """
    first = experiment.trials[0].history.aggregator
    if first.rate_bins != num_bins:
        raise ValueError(
            f"this aggregate-mode experiment recorded {first.rate_bins}-bin "
            f"rate histograms; fig5_density(num_bins={num_bins}) would need "
            'per-user rows — rerun with history_mode="full" or the recorded '
            "binning"
        )
    edges = first.rate_histogram_edges()
    centers = (edges[:-1] + edges[1:]) / 2.0
    num_steps = len(experiment.years)
    counts = np.zeros((num_steps, num_bins), dtype=np.int64)
    low_counts = np.zeros(num_steps, dtype=np.int64)
    num_series = 0
    for trial in experiment.trials:
        aggregator = trial.history.aggregator
        counts += aggregator.rate_histogram_series()
        low_counts += aggregator.rate_low_count_series()
        num_series += aggregator.num_users
    totals = np.maximum(counts.sum(axis=1), 1)
    density = counts / totals[:, None]
    modal = centers[np.argmax(counts, axis=1)].astype(float)
    low_mass = low_counts / num_series
    return Fig5Result(
        years=experiment.years,
        bin_edges=edges,
        density=density,
        modal_bin_centers=modal,
        mass_below_010=low_mass,
    )


def fig5_density(
    config: CaseStudyConfig | None = None,
    result: ExperimentResult | None = None,
    num_bins: int = DEFAULT_RATE_BINS,
) -> Fig5Result:
    """Reproduce Figure 5 (optionally reusing an existing experiment run).

    Runs in both history modes: ``"full"`` histograms the materialised
    user-series stack, ``"aggregate"`` pools the streaming per-step
    histograms (bit-identical, provided ``num_bins`` matches the recorded
    binning — the shared default does).
    """
    if num_bins < 2:
        raise ValueError("num_bins must be at least 2")
    experiment = result or run_experiment(config or CaseStudyConfig())
    if experiment.history_mode == "aggregate":
        if not experiment.trials:
            raise ValueError(
                "fig5_density needs per-trial histograms; rerun with "
                "keep_trials=True"
            )
        return _from_streaming_histograms(experiment, num_bins)
    stacked = experiment.stacked_user_series()  # (series, steps)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    num_steps = stacked.shape[1]
    density = np.empty((num_steps, num_bins), dtype=float)
    modal = np.empty(num_steps, dtype=float)
    low_mass = np.empty(num_steps, dtype=float)
    for step in range(num_steps):
        values = stacked[:, step]
        histogram, _ = np.histogram(values, bins=edges)
        total = max(histogram.sum(), 1)
        density[step] = histogram / total
        modal[step] = float(centers[int(np.argmax(histogram))])
        low_mass[step] = float(np.mean(values <= 0.10))
    return Fig5Result(
        years=experiment.years,
        bin_edges=edges,
        density=density,
        modal_bin_centers=modal,
        mass_below_010=low_mass,
    )
