"""Experiment E-T1: the scorecard of Table I.

Two artefacts are produced: the paper's hand-written card (history points
−8.17, income points +5.77) together with its worked example (income $50K,
average default rate 0.1, score 4.953), and a card actually trained on the
warm-up years of the closed loop — the same data the paper's first yearly
scorecard is fitted on — so the sign pattern of the learned points can be
compared with the hand-written one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.credit.lender import Lender
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_trial
from repro.scoring.scorecard import Scorecard, paper_table1_scorecard

__all__ = ["Table1Result", "table1_scorecard_result"]


@dataclass(frozen=True)
class Table1Result:
    """Reproduction of Table I.

    Attributes
    ----------
    paper_scorecard:
        The card with the paper's published points.
    worked_example_score:
        Score of the paper's worked example (income $50K, ADR 0.1); the
        paper reports 4.953.
    trained_scorecard:
        A card trained on the warm-up years of the simulated closed loop
        (``None`` when training was skipped).
    trained_history_points, trained_income_points:
        The trained card's points for the default-rate and income-code
        factors (``nan`` when training was skipped).
    """

    paper_scorecard: Scorecard
    worked_example_score: float
    trained_scorecard: Scorecard | None
    trained_history_points: float
    trained_income_points: float

    def summary(self) -> str:
        """Return a plain-text rendering of both cards."""
        lines = ["Table I (paper points)", self.paper_scorecard.table(), ""]
        lines.append(
            f"worked example (income $50K, ADR 0.1): score = {self.worked_example_score:.3f}"
        )
        if self.trained_scorecard is not None:
            lines.extend(
                ["", "Scorecard trained in the closed loop", self.trained_scorecard.table()]
            )
        return "\n".join(lines)


def table1_scorecard_result(
    config: CaseStudyConfig | None = None, train: bool = True
) -> Table1Result:
    """Reproduce Table I.

    Parameters
    ----------
    config:
        Case-study configuration used for the trained card (defaults to a
        scaled-down single-trial configuration so the call stays cheap).
    train:
        Whether to also train a card on the simulated warm-up data.
    """
    paper_card = paper_table1_scorecard()
    example_score = paper_card.score({"average_default_rate": 0.1, "income": 50.0})
    trained_card: Scorecard | None = None
    history_points = float("nan")
    income_points = float("nan")
    if train:
        run_config = config or CaseStudyConfig(num_users=400, num_trials=1)
        trial = run_trial(run_config, trial_index=0)
        # Pool the loop's accumulated training data: for every year after the
        # first, the features are that year's income and the average default
        # rate carried in from the previous year, and the label is that
        # year's repayment action.  Following the paper's equation (11)
        # literally, a user who is not offered a mortgage contributes
        # ``y_i(k) = 0``; no offered-only restriction is applied here, which
        # keeps the fitted points stable across seeds.
        incomes_list = []
        rates_list = []
        labels_list = []
        for step in range(1, trial.history.num_steps):
            record = trial.history.records[step]
            incomes_list.append(np.asarray(record.public_features["income"], dtype=float))
            rates_list.append(trial.require_user_default_rates()[step - 1])
            labels_list.append(np.asarray(record.actions, dtype=float))
        lender = Lender(cutoff=run_config.cutoff, warm_up_rounds=0)
        trained_card = lender.retrain(
            np.concatenate(incomes_list),
            np.concatenate(rates_list),
            np.concatenate(labels_list),
        )
        points = {factor.name: factor.points for factor in trained_card.factors}
        history_points = float(points["average_default_rate"])
        income_points = float(points["income_code"])
    return Table1Result(
        paper_scorecard=paper_card,
        worked_example_score=float(example_score),
        trained_scorecard=trained_card,
        trained_history_points=history_points,
        trained_income_points=income_points,
    )
