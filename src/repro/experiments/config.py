"""Configuration of the paper's credit-scoring case study.

One frozen dataclass gathers every parameter of Section VII: the population
size and race mix, the simulated calendar window, the mortgage terms, the
repayment-model sensitivity, the scorecard cut-off, and the number of
trials.  The defaults reproduce the paper exactly; benchmarks and tests use
scaled-down copies via :meth:`CaseStudyConfig.scaled`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Tuple

from repro.core.planner import validate_execution_settings
from repro.data.census import Race, paper_race_mix
from repro.utils.validation import require_positive

__all__ = [
    "CaseStudyConfig",
    "validate_checkpoint_settings",
    "validate_execution_settings",
]


def validate_checkpoint_settings(
    checkpoint_dir: str | None,
    checkpoint_every: int,
    resume: bool,
    trial_batch: bool = False,
) -> None:
    """Reject unusable checkpoint knob combinations with actionable errors.

    Called from :class:`CaseStudyConfig` construction *and* from the
    runner's override merge, so a bad combination fails at configuration
    time — not at step 900 of a 1000-step trial.
    """
    if checkpoint_every < 0:
        raise ValueError(
            f"checkpoint_every must be non-negative, got {checkpoint_every}"
        )
    if checkpoint_every > 0 and checkpoint_dir is None:
        raise ValueError(
            "checkpoint_every > 0 needs somewhere to write snapshots: "
            "set checkpoint_dir (CLI: --checkpoint-dir)"
        )
    if resume and checkpoint_dir is None:
        raise ValueError(
            "resume=True needs somewhere to look for checkpoints: "
            "set checkpoint_dir (CLI: --checkpoint-dir)"
        )
    if trial_batch and (checkpoint_every > 0 or resume):
        raise ValueError(
            "checkpointing is not supported with trial_batch (the batched "
            "engine advances all trials in lockstep with no per-trial "
            "boundary to snapshot); disable trial_batch, or drop the "
            "checkpoint_every/resume knobs"
        )


@dataclass(frozen=True)
class CaseStudyConfig:
    """Parameters of the credit-scoring closed-loop simulation.

    Attributes
    ----------
    num_users:
        Number of simulated households per trial (paper: 1000).
    num_trials:
        Number of independent trials, each with a fresh population
        (paper: 5).
    start_year, end_year:
        Simulated calendar window; one time step per year (paper:
        2002-2020).
    race_mix:
        Sampling distribution of the protected attribute (paper: the 2002
        household ratio).
    income_multiple, annual_rate, living_cost:
        Mortgage terms (paper: 3.5x, 2.16%, $10K).
    repayment_sensitivity:
        Slope of the probit repayment model (paper: 5).
    cutoff:
        Scorecard cut-off score (paper: 0.4).
    warm_up_rounds:
        Initial years with approve-everyone decisions (paper: 2).
    income_threshold:
        Income-code threshold in $K (paper: $15K).
    seed:
        Master seed; trial ``t`` derives its own stream from it.
    history_mode:
        Trajectory recording mode: ``"full"`` (default) retains every
        ``(steps, users)`` column so per-user figures and matrices are
        available; ``"aggregate"`` streams each step through a
        :class:`~repro.core.streaming.StreamingAggregator` and keeps only
        group-level series, bounding memory at ``O(users)`` running state
        for million-user trials.  Group-level results (``ADR_s(k)``,
        approval and action-average series) are bit-identical between the
        two modes; per-user accessors raise
        :class:`~repro.core.history.FullHistoryRequiredError` in aggregate
        mode.
    parallel:
        Run the experiment's trials concurrently.  Each trial draws from its
        own :func:`~repro.utils.rng.derive_seed` stream, so the results are
        bit-identical to the serial path regardless of scheduling.
    max_workers:
        Worker cap for the parallel runner (``None`` lets
        :mod:`concurrent.futures` pick from the CPU count).
    num_shards:
        Number of worker shards the users of *one trial* are grouped onto
        when ``shard_parallel`` is set.  The random schedule depends only
        on the population's canonical shard partition
        (:class:`~repro.core.sharding.ShardPlan`), never on this worker
        count, so every value — serial or pooled — yields bit-identical
        trajectories.
    shard_parallel:
        Execute each trial's worker shards on a process pool (intra-trial
        parallelism, for when the per-trial loop is the bottleneck).  Falls
        back to the bit-identical serial path when the trial cannot be
        sharded (non-default filter, unpicklable population, nested pools).
    retrain_mode:
        Yearly refit strategy of the scorecard lender: ``"exact"``
        (default) runs the row-level IRLS on every user, reproducing the
        paper bit for bit; ``"compressed"`` deduplicates the degenerate
        ``(income code, previous rate, label)`` training set into a
        :class:`~repro.scoring.suffstats.CompressedDesign` count table so
        each IRLS iteration costs O(unique rows) instead of O(users) — in
        the pooled sharded path the tables are built per worker shard and
        merged by exact integer addition, removing the refit's O(users)
        central scan.  Compressed coefficients agree with exact to solver
        tolerance; the equivalence suite pins identical decision vectors at
        paper scale.
    warm_start:
        Seed each yearly refit's Newton iteration at the previous year's
        parameters.  Opt-in (changes the iteration path, not the optimum),
        so it stays off the bit-exact reproduction path.
    trial_batch:
        Run all of an experiment's trials in lockstep through the
        trial-batched tensor engine
        (:class:`~repro.experiments.batch.BatchedTrialRunner`): the
        per-trial populations are stacked into ``(trials, users)`` columns
        and every deterministic per-step phase is fused across the trial
        axis, while each trial keeps its own derived random streams, AI
        system and refits — so every trial is bit-identical to its serial
        :func:`~repro.experiments.runner.run_trial` twin.  Batching
        amortises the fixed per-step dispatch cost without processes,
        which is the winning strategy on few cores with many trials;
        it takes precedence over ``parallel`` (and ignores
        ``shard_parallel``) when enabled.
    checkpoint_dir:
        Directory holding per-trial snapshots and completed-trial results.
        Required (and only consulted) when ``checkpoint_every`` or
        ``resume`` is set.
    checkpoint_every:
        Snapshot each trial's full loop state every this many steps,
        written crash-consistently (see :mod:`repro.core.checkpoint`).
        ``0`` (default) disables step checkpointing.  Because the random
        streams are stateless per ``(trial, shard, step)``, a trial
        resumed from a snapshot is bit-identical to the uninterrupted
        run.  Incompatible with ``trial_batch``.
    resume:
        Pick up an interrupted experiment from ``checkpoint_dir``:
        trials with a completed result on disk are skipped outright, and a
        trial with a step snapshot continues from its latest intact one.
        Snapshots carry a configuration fingerprint; resuming with a
        different configuration fails with an actionable error instead of
        silently mixing runs.
    execution:
        One knob in front of the three execution layouts, resolved by the
        planner (:func:`~repro.core.planner.plan_execution`):
        ``"serial"``, ``"batch"`` (→ ``trial_batch``), ``"pool"``
        (→ ``parallel``), ``"shard"`` (→ ``num_shards`` +
        ``shard_parallel``), or ``"auto"``, which inspects
        (``cpu_count``, trials, users, steps, checkpoint knobs) and may
        *compose* layouts (pooled trials × sharded users).  Every layout
        is bit-identical, so this is purely a performance choice — and it
        is excluded from checkpoint fingerprints, so a run checkpointed
        under one plan resumes under another (e.g. ``"auto"`` on a host
        with a different core count).  Mutually exclusive with the legacy
        ``parallel``/``trial_batch``/``shard_parallel`` switches;
        ``None`` (default) keeps the legacy knobs in charge.
    """

    num_users: int = 1000
    num_trials: int = 5
    start_year: int = 2002
    end_year: int = 2020
    race_mix: Mapping[Race, float] = field(default_factory=paper_race_mix)
    income_multiple: float = 3.5
    annual_rate: float = 0.0216
    living_cost: float = 10.0
    repayment_sensitivity: float = 5.0
    cutoff: float = 0.4
    warm_up_rounds: int = 2
    income_threshold: float = 15.0
    seed: int = 20240101
    history_mode: str = "full"
    parallel: bool = False
    max_workers: int | None = None
    num_shards: int = 1
    shard_parallel: bool = False
    retrain_mode: str = "exact"
    warm_start: bool = False
    trial_batch: bool = False
    checkpoint_dir: str | None = None
    checkpoint_every: int = 0
    resume: bool = False
    execution: str | None = None

    def __post_init__(self) -> None:
        if self.history_mode not in ("full", "aggregate"):
            raise ValueError(
                f'history_mode must be "full" or "aggregate", got {self.history_mode!r}'
            )
        if self.retrain_mode not in ("exact", "compressed"):
            raise ValueError(
                f'retrain_mode must be "exact" or "compressed", got {self.retrain_mode!r}'
            )
        require_positive(self.num_users, "num_users")
        require_positive(self.num_trials, "num_trials")
        if self.end_year < self.start_year:
            raise ValueError("end_year must not precede start_year")
        if self.warm_up_rounds < 0:
            raise ValueError("warm_up_rounds must be non-negative")
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError("max_workers must be positive when given")
        require_positive(self.num_shards, "num_shards")
        validate_checkpoint_settings(
            self.checkpoint_dir,
            self.checkpoint_every,
            self.resume,
            trial_batch=self.trial_batch,
        )
        validate_execution_settings(
            self.execution,
            parallel=self.parallel,
            trial_batch=self.trial_batch,
            shard_parallel=self.shard_parallel,
            checkpoint_every=self.checkpoint_every,
            resume=self.resume,
        )

    @property
    def num_steps(self) -> int:
        """Return the number of simulated time steps (one per year)."""
        return self.end_year - self.start_year + 1

    @property
    def years(self) -> Tuple[int, ...]:
        """Return the simulated calendar years."""
        return tuple(range(self.start_year, self.end_year + 1))

    def scaled(
        self, num_users: int | None = None, num_trials: int | None = None
    ) -> "CaseStudyConfig":
        """Return a copy with a smaller population and/or fewer trials.

        Convenient for tests and quick benchmarks that keep every other
        parameter at the paper's values.
        """
        return replace(
            self,
            num_users=num_users if num_users is not None else self.num_users,
            num_trials=num_trials if num_trials is not None else self.num_trials,
        )
