"""Experiment E-F3: race-wise average default rates (Figure 3).

The paper's Figure 3 plots, for each race, the across-trial mean of the
race-wise average default rate ``ADR_s(k)`` with a one-standard-deviation
band, over the years 2002-2020, and observes that the three curves dwindle
towards a similar level.  The reproduction produces the same three series
(mean and standard deviation per race per year) and reports the initial and
final cross-race gaps.

Figure 3 is a pure group-level figure, so it runs end-to-end in either
history mode: every quantity here derives from the per-trial race-wise
series ``ADR_s(k)``, which ``history_mode="aggregate"`` maintains online
(bit-identical to the full-history derivation) without materialising any
``(steps, users)`` matrix — the route to million-user reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.data.census import Race
from repro.experiments.config import CaseStudyConfig
from repro.experiments.reporting import format_series_table
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = ["Fig3Result", "fig3_race_adr"]


@dataclass(frozen=True)
class Fig3Result:
    """Reproduction of Figure 3.

    Attributes
    ----------
    years:
        Calendar years of the series.
    mean_series:
        Per race, the across-trial mean of ``ADR_s(k)``.
    std_series:
        Per race, the across-trial standard deviation of ``ADR_s(k)``.
    initial_gap:
        Cross-race spread of the mean series at the first post-warm-up year.
    final_gap:
        Cross-race spread of the mean series at the final year.
    """

    years: Tuple[int, ...]
    mean_series: Dict[Race, np.ndarray]
    std_series: Dict[Race, np.ndarray]
    initial_gap: float
    final_gap: float

    @property
    def gap_shrinks(self) -> bool:
        """Return whether the cross-race gap shrinks over the simulation."""
        return self.final_gap <= self.initial_gap

    def summary(self) -> str:
        """Return the race-wise mean series as a plain-text table."""
        table = format_series_table(
            list(self.years),
            {race.value: self.mean_series[race] for race in self.mean_series},
            index_name="year",
        )
        return (
            f"{table}\n\n"
            f"cross-race ADR gap: initial {self.initial_gap:.4f} "
            f"-> final {self.final_gap:.4f}"
        )


def fig3_race_adr(
    config: CaseStudyConfig | None = None,
    result: ExperimentResult | None = None,
) -> Fig3Result:
    """Reproduce Figure 3.

    Either a configuration (the experiment is run here) or an existing
    :class:`~repro.experiments.runner.ExperimentResult` may be supplied; the
    latter lets several figure modules share one simulation.
    """
    experiment = result or run_experiment(config or CaseStudyConfig())
    mean_series = experiment.group_mean_series()
    std_series = experiment.group_std_series()
    warm_up = experiment.config.warm_up_rounds
    initial_index = min(warm_up, len(experiment.years) - 1)
    initial_values = [series[initial_index] for series in mean_series.values()]
    final_values = [series[-1] for series in mean_series.values()]
    return Fig3Result(
        years=experiment.years,
        mean_series=mean_series,
        std_series=std_series,
        initial_gap=float(np.max(initial_values) - np.min(initial_values)),
        final_gap=float(np.max(final_values) - np.min(final_values)),
    )
