"""Multi-trial runner of the credit-scoring closed loop.

A *trial* (the paper's term) generates a fresh batch of users and runs the
closed loop over the whole calendar window; the experiment repeats the trial
several times and aggregates the race-wise average-default-rate series into
mean and standard-deviation bands — exactly the quantities plotted in the
paper's Figures 3-5.

Trials are embarrassingly parallel: trial ``t`` seeds its own generator via
``derive_seed(config.seed, "trial", t)``, so no random state is shared and
running trials concurrently (``parallel=True`` on the config or the
``run_experiment`` call) yields bit-identical results to the serial loop.

Each trial records in one of two history modes (``config.history_mode`` or
the ``history_mode`` override): ``"full"`` retains the ``(steps, users)``
columns, ``"aggregate"`` streams the trajectory through a
:class:`~repro.core.streaming.StreamingAggregator` and keeps only the
group-level series the paper's figures need, bounding memory for
million-user trials.  Group-level results are bit-identical between modes;
per-user accessors (``user_default_rates``, ``stacked_user_series``) raise
:class:`~repro.core.history.FullHistoryRequiredError` in aggregate mode.
The runner uses a process pool (the trial body is pure numpy-crunching
Python, which threads cannot overlap under the GIL) and falls back to the
plain serial loop when the inputs cannot be pickled (e.g. a lambda policy
factory) or the pool breaks at run time — threads would add concurrency
hazards without adding speed, so serial is the only fallback.

A third execution layout targets the single-core sweep: ``trial_batch``
(config knob or ``run_experiment`` override) runs every trial in lockstep
through the trial-batched tensor engine
(:mod:`repro.experiments.batch`), which stacks the per-trial populations
into ``(trials, users)`` columns and fuses the deterministic per-step
math across the trial axis while each trial keeps its own derived random
streams and refits.  Every batched trial is bit-identical to its serial
:func:`run_trial` twin; batching takes precedence over ``parallel`` when
both are enabled (it amortises dispatch without processes, the winning
strategy on few cores with many trials).
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.ai_system import AISystem, CreditScoringSystem
from repro.core.checkpoint import (
    CheckpointError,
    CheckpointSpec,
    config_fingerprint,
    load_latest_checkpoint,
    prune_checkpoints,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.filters import DefaultRateFilter
from repro.core.history import FullHistoryRequiredError, SimulationHistory
from repro.core.loop import ClosedLoop
from repro.core.metrics import group_approval_series, group_average_series
from repro.core.planner import plan_execution
from repro.core.streaming import AggregateHistory
from repro.core.population import CreditPopulation
from repro.core.supervision import SupervisorPolicy, WorkerPoolFailure, kill_executor
from repro.credit.lender import Lender
from repro.credit.mortgage import MortgageTerms
from repro.credit.repayment import GaussianRepaymentModel
from repro.data.census import IncomeTable, Race, default_income_table
from repro.data.synthetic import PopulationSpec, generate_population
from repro.experiments.batch import run_trials_batched
from repro.experiments.config import CaseStudyConfig, validate_checkpoint_settings
from repro.testing.faults import fire as _fire_fault
from repro.utils.rng import derive_seed

__all__ = [
    "TrialResult",
    "ExperimentResult",
    "GroupSeriesMoments",
    "run_trial",
    "run_experiment",
    "trajectory_fingerprint_fields",
]


#: Signature of a policy factory: builds a fresh AI system for each trial.
PolicyFactory = Callable[[CaseStudyConfig, CreditPopulation], AISystem]


def default_policy_factory(
    config: CaseStudyConfig, population: CreditPopulation
) -> AISystem:
    """Build the paper's retraining scorecard lender for one trial."""
    return CreditScoringSystem(
        Lender(
            cutoff=config.cutoff,
            warm_up_rounds=config.warm_up_rounds,
            retrain_mode=config.retrain_mode,
            warm_start=config.warm_start,
        )
    )


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial of the case study.

    Attributes
    ----------
    history:
        The trial's trajectory store: a
        :class:`~repro.core.history.SimulationHistory` in full mode, an
        :class:`~repro.core.streaming.AggregateHistory` in aggregate mode.
    user_default_rates:
        ``ADR_i(k)`` as a ``(steps, users)`` matrix, or ``None`` in
        aggregate mode (per-user rows are never materialised there).
    group_default_rates:
        ``ADR_s(k)`` per race as ``(steps,)`` vectors — available, and
        bit-identical, in both modes.
    races:
        The per-user race labels of the trial's population.
    years:
        Calendar years of the steps.
    """

    history: SimulationHistory | AggregateHistory
    user_default_rates: np.ndarray | None
    group_default_rates: Dict[Race, np.ndarray]
    races: np.ndarray
    years: Tuple[int, ...]

    @property
    def history_mode(self) -> str:
        """Return the recording mode this trial ran with."""
        return "aggregate" if isinstance(self.history, AggregateHistory) else "full"

    def group_indices(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the user indices of this trial's population."""
        races_array = np.asarray(self.races, dtype=object)
        return {race: np.flatnonzero(races_array == race) for race in Race}

    def approval_rate_series(self) -> np.ndarray:
        """Return the per-step approval rates (identical in both modes)."""
        return np.asarray(self.history.approval_rates())

    def group_action_averages(self) -> Dict[Race, np.ndarray]:
        """Return the per-race Cesàro action-average series.

        Aggregate mode reads the streaming series; full mode derives the
        same arrays (bit for bit) from the per-user history.
        """
        if isinstance(self.history, AggregateHistory):
            return dict(self.history.group_action_average_series())
        return group_average_series(
            self.history.running_action_averages(), self.group_indices()
        )

    def group_approval_series(self) -> Dict[Race, np.ndarray]:
        """Return the per-race per-step approval-rate series (both modes)."""
        if isinstance(self.history, AggregateHistory):
            return dict(self.history.group_approval_series())
        return group_approval_series(
            self.history.decisions_matrix(), self.group_indices()
        )

    def require_user_default_rates(self) -> np.ndarray:
        """Return the per-user ADR matrix, or raise in aggregate mode."""
        if self.user_default_rates is None:
            raise FullHistoryRequiredError(
                "per-user default-rate series are not retained in "
                'history_mode="aggregate"; rerun with history_mode="full"'
            )
        return self.user_default_rates

    @property
    def final_group_rates(self) -> Dict[Race, float]:
        """Return the last-step race-wise default rates."""
        return {race: float(series[-1]) for race, series in self.group_default_rates.items()}

    @property
    def final_group_gap(self) -> float:
        """Return the spread of the last-step race-wise default rates."""
        finite = [value for value in self.final_group_rates.values() if np.isfinite(value)]
        if len(finite) < 2:
            return 0.0
        return float(max(finite) - min(finite))


class GroupSeriesMoments:
    """Online across-trial moments of the per-race ``ADR_s(k)`` series.

    One Welford accumulator per race and step: trials stream through
    :meth:`update` one at a time, so the across-trial mean and standard
    deviation are available without retaining any per-trial series — the
    route to experiments with thousands of trials
    (``run_experiment(..., keep_trials=False)``).

    The single-pass mean/std agree with the batch ``np.mean``/``np.std``
    over the stacked series to floating-point reassociation error (Welford
    is the numerically stable formulation); the default ``keep_trials=True``
    path still computes the batch statistics, so golden-hash suites are
    unaffected.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean: Dict[Race, np.ndarray] = {}
        self._m2: Dict[Race, np.ndarray] = {}

    @property
    def num_trials(self) -> int:
        """Return how many trials have been folded in."""
        return self._count

    def update(self, group_rates: Dict[Race, np.ndarray]) -> None:
        """Fold one trial's per-race series into the running moments."""
        self._count += 1
        for race, series in group_rates.items():
            values = np.asarray(series, dtype=float)
            if race not in self._mean:
                self._mean[race] = np.zeros_like(values)
                self._m2[race] = np.zeros_like(values)
            delta = values - self._mean[race]
            self._mean[race] += delta / self._count
            self._m2[race] += delta * (values - self._mean[race])

    def mean_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial mean series."""
        if self._count == 0:
            raise ValueError("no trials have been accumulated")
        return {race: mean.copy() for race, mean in self._mean.items()}

    def std_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial (population) std series."""
        if self._count == 0:
            raise ValueError("no trials have been accumulated")
        return {
            race: np.sqrt(m2 / self._count) for race, m2 in self._m2.items()
        }


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregate of several trials.

    Attributes
    ----------
    config:
        The configuration the trials were run with.
    trials:
        The individual trial results, in trial order.  Empty when the
        experiment ran with ``keep_trials=False``; the across-trial group
        statistics then come from ``group_moments``.
    group_moments:
        Online across-trial moments of the per-race series, accumulated as
        the trials completed (always populated by :func:`run_experiment`).
    """

    config: CaseStudyConfig
    trials: Tuple[TrialResult, ...]
    group_moments: GroupSeriesMoments | None = None
    #: The recording mode the trials actually ran with (set by
    #: run_experiment so a ``history_mode`` override survives
    #: ``keep_trials=False``, where no trial is left to ask).
    resolved_history_mode: str | None = None

    @property
    def years(self) -> Tuple[int, ...]:
        """Return the calendar years of the simulation."""
        return self.config.years

    @property
    def history_mode(self) -> str:
        """Return the recording mode the trials ran with."""
        if self.trials:
            return self.trials[0].history_mode
        if self.resolved_history_mode is not None:
            return self.resolved_history_mode
        return self.config.history_mode

    def group_mean_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial mean of ``ADR_s(k)``.

        With retained trials this is the batch ``np.mean`` over the
        stacked per-trial series (bit-stable for the golden suites); a
        trial-free result answers from the online moments instead.
        """
        if not self.trials:
            return self._require_moments().mean_series()
        return {
            race: np.mean(
                [trial.group_default_rates[race] for trial in self.trials], axis=0
            )
            for race in Race
        }

    def group_std_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial standard deviation of ``ADR_s(k)``."""
        if not self.trials:
            return self._require_moments().std_series()
        return {
            race: np.std(
                [trial.group_default_rates[race] for trial in self.trials], axis=0
            )
            for race in Race
        }

    def _require_moments(self) -> GroupSeriesMoments:
        if self.group_moments is None or self.group_moments.num_trials == 0:
            raise ValueError(
                "this ExperimentResult retains neither per-trial series nor "
                "accumulated group moments"
            )
        return self.group_moments

    def stacked_user_series(self) -> np.ndarray:
        """Return all user-wise ADR series stacked as ``(trials * users, steps)``.

        This is the collection of ``5 x 1000`` curves shown in the paper's
        Figure 4.  Requires full-history trials; aggregate-mode runs raise
        :class:`~repro.core.history.FullHistoryRequiredError`.
        """
        return np.vstack(
            [trial.require_user_default_rates().T for trial in self.trials]
        )

    def stacked_user_races(self) -> np.ndarray:
        """Return the race label of every stacked user series."""
        return np.concatenate([trial.races for trial in self.trials])


def _trial_stem(trial_index: int) -> str:
    """Return the checkpoint-file stem of one trial."""
    return f"trial-{trial_index:04d}"


def trajectory_fingerprint_fields(
    config: CaseStudyConfig, history_mode: str | None = None
) -> Tuple[object, ...]:
    """Return the config fields that steer a trial's trajectory, in order.

    The single source of truth for "what defines the result": population
    shape and race mix, the calendar window, mortgage and model knobs, the
    master seed, and the recording mode.  Execution layout (shards, pools,
    batching, transports, worker caps, checkpoint plumbing) is deliberately
    excluded — every layout is bit-identical by construction — so both the
    per-trial checkpoint fingerprints and the campaign result cache
    (:mod:`repro.campaign.cache`) key on exactly these fields, and an entry
    written under one layout is valid under every other.

    The field order is frozen: reordering or renaming would silently
    invalidate every persisted trial result and campaign cache entry.
    """
    mode = config.history_mode if history_mode is None else history_mode
    race_mix = tuple(
        sorted((race.name, float(share)) for race, share in config.race_mix.items())
    )
    return (
        mode,
        config.num_users,
        config.start_year,
        config.end_year,
        race_mix,
        config.income_multiple,
        config.annual_rate,
        config.living_cost,
        config.repayment_sensitivity,
        config.cutoff,
        config.warm_up_rounds,
        config.income_threshold,
        config.seed,
        config.retrain_mode,
        config.warm_start,
    )


def _trial_fingerprint(
    config: CaseStudyConfig, trial_index: int, history_mode: str
) -> str:
    """Fingerprint the parameters that define one trial's trajectory.

    The trial index joins :func:`trajectory_fingerprint_fields` so each
    trial's checkpoints are distinct; the digest is byte-identical to what
    earlier releases wrote, so existing checkpoint directories remain
    resumable.
    """
    return config_fingerprint(
        "trial", trial_index, *trajectory_fingerprint_fields(config, history_mode)
    )


def _shard_hint(num_shards: int | None, config: CaseStudyConfig) -> int | None:
    """Resolve the planner's shard-count hint from override and config.

    An explicit override wins; otherwise a non-default ``config.num_shards``
    is the hint (the CLI lands ``--shards`` there), and the default ``1``
    means "unset" — the planner then sizes the shard pool from the core
    count instead of being pinned to a single worker.
    """
    if num_shards is not None:
        return num_shards
    return config.num_shards if config.num_shards != 1 else None


def run_trial(
    config: CaseStudyConfig,
    trial_index: int = 0,
    policy_factory: PolicyFactory | None = None,
    terms: MortgageTerms | None = None,
    income_table: IncomeTable | None = None,
    history_mode: str | None = None,
    num_shards: int | None = None,
    shard_parallel: bool | None = None,
    shard_transport: str | None = None,
    retrain_mode: str | None = None,
    warm_start: bool | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
    resume: bool | None = None,
    supervisor: SupervisorPolicy | None = None,
    execution: str | None = None,
) -> TrialResult:
    """Run one trial of the case study.

    Parameters
    ----------
    config:
        The case-study configuration.
    trial_index:
        Index of the trial; it seeds the trial's independent random stream.
    policy_factory:
        Builder of the AI system (defaults to the paper's retraining
        scorecard lender).
    terms:
        Mortgage terms override (defaults to the configuration's terms).
    income_table:
        Income-table override (defaults to the embedded synthetic table).
    history_mode:
        Recording-mode override (``None`` defers to
        ``config.history_mode``).  ``"aggregate"`` bounds memory by
        streaming group-level series instead of materialising the
        ``(steps, users)`` history; the group series are bit-identical to
        the full-history path.
    num_shards, shard_parallel:
        Intra-trial sharded-execution overrides (``None`` defers to the
        config).  The trajectory is bit-identical for every worker count,
        serial or pooled: the random schedule depends only on the
        population's canonical shard partition and the trial seed.
    shard_transport:
        Transport of the pooled shard path's per-step payloads —
        ``"shared"`` (zero-copy shared-memory arena) or ``"pickle"``;
        ``None`` defers to the loop's default (``"shared"``).  Pure
        plumbing, bit-identical either way.
    retrain_mode, warm_start:
        Sufficient-statistics retraining overrides (``None`` defers to the
        config); see :class:`~repro.experiments.config.CaseStudyConfig`.
        ``"exact"`` reproduces the paper bit for bit; ``"compressed"``
        refits in O(unique rows) with coefficients equal to solver
        tolerance and — at paper scale — identical decision vectors.
    checkpoint_dir, checkpoint_every, resume:
        Fault-tolerance overrides (``None`` defers to the config).  With
        ``checkpoint_every > 0`` the trial's loop state is snapshotted
        crash-consistently into ``checkpoint_dir`` every that many steps;
        with ``resume`` the trial restores from its latest intact snapshot
        (fingerprint-checked against this configuration) and continues —
        bit-identically, because the random streams are stateless per
        ``(trial, shard, step)``.
    supervisor:
        :class:`~repro.core.supervision.SupervisorPolicy` for the pooled
        shard path (``None`` applies the defaults): worker death, hangs
        and raises are retried from the last checkpoint boundary with
        exponential backoff, then degrade to the bit-identical serial
        path.
    execution:
        Planner knob override (``None`` defers to ``config.execution``):
        resolves this single trial's layout via
        :func:`~repro.core.planner.plan_execution` with ``trials=1``
        (``"auto"`` picks sharded execution for large populations on
        multi-core hosts, serial otherwise; ``"pool"`` has nothing to
        pool over one trial and resolves to serial).  Mutually exclusive
        with the ``shard_parallel`` override; ``num_shards`` is accepted
        as a worker-count hint.  ``"batch"`` batches trials *across* an
        experiment and is rejected here — use :func:`run_experiment`.
        Every plan is bit-identical, and the plan is excluded from the
        checkpoint fingerprint, so resuming under a different plan (or
        ``cpu_count``) replays the same trajectory.
    """
    mode = config.history_mode if history_mode is None else history_mode
    if mode not in ("full", "aggregate"):
        raise ValueError(f'history_mode must be "full" or "aggregate", got {mode!r}')
    shards = config.num_shards if num_shards is None else num_shards
    pooled = config.shard_parallel if shard_parallel is None else bool(shard_parallel)
    if shards <= 0:
        raise ValueError("num_shards must be positive")
    ckpt_dir = config.checkpoint_dir if checkpoint_dir is None else checkpoint_dir
    every = config.checkpoint_every if checkpoint_every is None else checkpoint_every
    do_resume = config.resume if resume is None else bool(resume)
    validate_checkpoint_settings(ckpt_dir, every, do_resume)
    exec_mode = config.execution if execution is None else execution
    if exec_mode is not None:
        if shard_parallel is not None:
            raise ValueError(
                "the execution knob replaces the legacy layout switches: "
                "drop the shard_parallel override when setting execution"
            )
        if exec_mode == "batch":
            raise ValueError(
                'execution="batch" runs an experiment\'s trials in lockstep; '
                "run_trial runs a single trial — use run_experiment, or "
                "another execution mode"
            )
        plan = plan_execution(
            exec_mode,
            trials=1,
            users=config.num_users,
            steps=config.num_steps,
            history_mode=mode,
            retrain_mode=(
                config.retrain_mode if retrain_mode is None else retrain_mode
            ),
            checkpoint_every=every,
            resume=do_resume,
            num_shards=_shard_hint(num_shards, config),
        )
        shards = plan.num_shards
        pooled = plan.shard_parallel
    if retrain_mode is not None or warm_start is not None:
        # The policy factory reads these off the config, so overrides must
        # land there before the factory runs.
        config = replace(
            config,
            retrain_mode=(
                config.retrain_mode if retrain_mode is None else retrain_mode
            ),
            warm_start=config.warm_start if warm_start is None else bool(warm_start),
        )
    factory = policy_factory or default_policy_factory
    trial_seed = derive_seed(config.seed, "trial", trial_index)
    rng = np.random.default_rng(trial_seed)
    spec = PopulationSpec(size=config.num_users, race_mix=dict(config.race_mix))
    synthetic = generate_population(spec, rng)
    mortgage_terms = terms or MortgageTerms(
        income_multiple=config.income_multiple,
        annual_rate=config.annual_rate,
        living_cost=config.living_cost,
    )
    population = CreditPopulation(
        population=synthetic,
        income_table=income_table or default_income_table(),
        terms=mortgage_terms,
        repayment_model=GaussianRepaymentModel(sensitivity=config.repayment_sensitivity),
        start_year=config.start_year,
    )
    ai_system = factory(config, population)
    loop = ClosedLoop(
        ai_system=ai_system,
        population=population,
        loop_filter=DefaultRateFilter(num_users=config.num_users),
    )
    fingerprint = _trial_fingerprint(config, trial_index, mode)
    spec = (
        CheckpointSpec(
            directory=ckpt_dir,
            stem=_trial_stem(trial_index),
            every=every,
            fingerprint=fingerprint,
        )
        if ckpt_dir is not None and every > 0
        else None
    )
    history: SimulationHistory | AggregateHistory | None = None
    if do_resume and ckpt_dir is not None:
        payload = load_latest_checkpoint(
            ckpt_dir, _trial_stem(trial_index), expected_fingerprint=fingerprint
        )
        if payload is not None:
            history = loop.restore_snapshot(payload)
    remaining = config.num_steps - (0 if history is None else history.num_steps)
    # The trial seed itself is the base of the shard streams (the
    # population generation above consumed an unrelated generator); an
    # integer base is what lets pooled workers re-derive any shard's stream
    # without shipping generator state.  A resumed trial passes rng=None
    # instead: the loop then reuses the restored base, replaying the
    # uninterrupted schedule exactly.
    if remaining > 0:
        history = loop.run(
            remaining,
            rng=None if history is not None else trial_seed,
            history=history,
            history_mode=mode,
            groups=population.groups if mode == "aggregate" else None,
            num_shards=shards,
            shard_parallel=pooled,
            retrain_mode=config.retrain_mode,
            checkpoint=spec,
            supervisor=supervisor,
            shard_transport="shared" if shard_transport is None else shard_transport,
        )
    return _trial_result_from_history(config, history, population)


def _trial_result_from_history(
    config: CaseStudyConfig,
    history: SimulationHistory | AggregateHistory,
    population: CreditPopulation,
) -> TrialResult:
    """Assemble a :class:`TrialResult` from a recorded trial history.

    Shared by the serial trial loop and the trial-batched engine, so both
    derive the group series through the identical calls.
    """
    if isinstance(history, AggregateHistory):
        user_rates = None
        group_rates = history.group_default_rate_series()
    else:
        user_rates = history.running_default_rates()
        group_rates = group_average_series(user_rates, population.groups)
    return TrialResult(
        history=history,
        user_default_rates=user_rates,
        group_default_rates={race: group_rates[race] for race in Race},
        races=population.races,
        years=config.years,
    )


def _run_trial_task(
    payload: Tuple[
        CaseStudyConfig,
        int,
        PolicyFactory | None,
        MortgageTerms | None,
        IncomeTable | None,
        str | None,
        int | None,
        bool | None,
        str | None,
        str | None,
        bool | None,
        str | None,
        int | None,
        bool | None,
        SupervisorPolicy | None,
    ]
) -> TrialResult:
    """Executor entry point: run one trial from a pickled argument tuple."""
    (
        config,
        trial_index,
        policy_factory,
        terms,
        income_table,
        history_mode,
        num_shards,
        shard_parallel,
        shard_transport,
        retrain_mode,
        warm_start,
        checkpoint_dir,
        checkpoint_every,
        resume,
        supervisor,
    ) = payload
    # Chaos-suite hook: lets a test deterministically kill/hang/fail this
    # trial's worker to exercise the supervised trial pool.
    _fire_fault("trial_worker", trial=trial_index)
    return run_trial(
        config,
        trial_index=trial_index,
        policy_factory=policy_factory,
        terms=terms,
        income_table=income_table,
        history_mode=history_mode,
        num_shards=num_shards,
        shard_parallel=shard_parallel,
        shard_transport=shard_transport,
        retrain_mode=retrain_mode,
        warm_start=warm_start,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        resume=resume,
        supervisor=supervisor,
    )


def _trial_result_path(directory: str, trial_index: int) -> Path:
    """Return the completed-trial result file of one trial."""
    return Path(directory) / f"{_trial_stem(trial_index)}.result"


@dataclass(frozen=True)
class _SeriesOnlyTrial:
    """Group-series stub for persisted trials folded with ``keep_trials=False``.

    Resume only needs ``group_default_rates`` to fold a persisted trial
    into the experiment moments; materialising the full pickled
    :class:`TrialResult` — histories, per-user matrices — just to read one
    small dict and drop it would defeat the bounded-memory contract of
    ``keep_trials=False``.
    """

    group_default_rates: Dict[Race, np.ndarray]


def _write_trial_result(
    directory: str, trial_index: int, fingerprint: str, result: TrialResult
) -> None:
    """Persist a completed trial crash-consistently; drop its step snapshots.

    The result file is what experiment-level ``resume`` skips on: once it
    exists, the trial never reruns, so the intermediate step snapshots are
    dead weight and are pruned away.

    The group series travel beside the full result (which is pickled into
    an opaque ``result_bytes`` blob) so a ``keep_trials=False`` resume can
    fold the moments without reconstructing the trial's histories and
    per-user matrices.
    """
    write_checkpoint(
        _trial_result_path(directory, trial_index),
        {
            "kind": "trial_result",
            "fingerprint": fingerprint,
            "group_rates": dict(result.group_default_rates),
            "result_bytes": pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
        },
    )
    prune_checkpoints(directory, _trial_stem(trial_index), keep=0)


def _load_trial_result(
    directory: str, trial_index: int, fingerprint: str, need_full: bool = True
) -> TrialResult | _SeriesOnlyTrial | None:
    """Load a completed trial's persisted result, or ``None`` to rerun it.

    An unreadable/torn file degrades to a rerun with a warning (re-running
    is always safe); an intact file written by a *different* configuration
    raises — silently mixing two experiments' trials is the one outcome
    resume must never produce.

    With ``need_full=False`` (the ``keep_trials=False`` resume path) only
    the persisted group series are materialised, as a
    :class:`_SeriesOnlyTrial`; the pickled full result stays opaque bytes.
    """
    path = _trial_result_path(directory, trial_index)
    if not path.exists():
        return None
    try:
        payload = read_checkpoint(path)
    except CheckpointError as error:
        warnings.warn(
            f"re-running trial {trial_index}: its persisted result is "
            f"unreadable ({error})",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    if payload.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"persisted result {path.name} was written by a different "
            "configuration; point checkpoint_dir at a fresh directory, or "
            "rerun with the original configuration"
        )
    if "result" in payload:
        # Legacy envelope: the whole TrialResult pickled inline.  Already
        # materialised by read_checkpoint, so hand it over either way.
        return payload["result"]
    if not need_full:
        return _SeriesOnlyTrial(group_default_rates=payload["group_rates"])
    return pickle.loads(payload["result_bytes"])


def _is_picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
        return True
    except Exception:
        return False


class _OrderedTrialFolder:
    """Fold trial results into the moments in trial order, arrival-agnostic.

    The Welford accumulator is order-sensitive in floats, so results — which
    may arrive out of order from the supervised pool, or partially from disk
    on resume — are buffered just long enough to fold consecutively from
    trial 0.  With ``keep_trials=False`` each trial is dropped as soon as it
    folds, preserving the bounded-memory contract.
    """

    def __init__(self, moments: GroupSeriesMoments, keep_trials: bool) -> None:
        self._moments = moments
        self._keep = keep_trials
        self._buffer: Dict[int, TrialResult] = {}
        self._next = 0
        self.trials: List[TrialResult] = []

    def add(self, trial_index: int, trial: TrialResult) -> None:
        self._buffer[trial_index] = trial
        while self._next in self._buffer:
            folded = self._buffer.pop(self._next)
            self._moments.update(folded.group_default_rates)
            if self._keep:
                self.trials.append(folded)
            self._next += 1


def run_experiment(
    config: CaseStudyConfig,
    policy_factory: PolicyFactory | None = None,
    terms: MortgageTerms | None = None,
    income_table: IncomeTable | None = None,
    parallel: bool | None = None,
    max_workers: int | None = None,
    history_mode: str | None = None,
    num_shards: int | None = None,
    shard_parallel: bool | None = None,
    shard_transport: str | None = None,
    retrain_mode: str | None = None,
    warm_start: bool | None = None,
    trial_batch: bool | None = None,
    keep_trials: bool = True,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
    resume: bool | None = None,
    supervisor: SupervisorPolicy | None = None,
    execution: str | None = None,
) -> ExperimentResult:
    """Run all trials of the case study and return the aggregate result.

    Parameters
    ----------
    config:
        The case-study configuration.
    policy_factory, terms, income_table:
        Per-trial overrides, as in :func:`run_trial`.
    history_mode:
        Recording-mode override for every trial (``None`` defers to
        ``config.history_mode``); see :func:`run_trial`.
    parallel:
        Run trials concurrently; ``None`` defers to ``config.parallel``.
        Results are bit-identical to the serial path because every trial
        owns an independent derived seed stream.  A non-picklable
        ``policy_factory`` (or a broken worker pool) falls back to the
        serial loop.
    max_workers:
        Worker cap for the parallel path; ``None`` defers to
        ``config.max_workers`` (and from there to the CPU count).
    num_shards, shard_parallel:
        Intra-trial sharded-execution overrides forwarded to every trial
        (``None`` defers to the config); bit-identical for every setting.
        When trial-level parallelism is active, each trial worker applies
        its shard settings inside its own process (nested shard pools fall
        back to the serial shard path on platforms that forbid them —
        still bit-identical).
    shard_transport:
        Shared-memory vs pickling transport of the pooled shard path,
        forwarded to every trial (``None`` defers to the loop default,
        ``"shared"``); see :func:`run_trial`.  Bit-identical either way.
    retrain_mode, warm_start:
        Sufficient-statistics retraining overrides forwarded to every
        trial (``None`` defers to the config); see :func:`run_trial`.
    trial_batch:
        Run every trial in lockstep through the trial-batched tensor
        engine (``None`` defers to ``config.trial_batch``); see
        :class:`~repro.experiments.batch.BatchedTrialRunner`.  Every trial
        is bit-identical to its serial twin.  Batching amortises per-step
        dispatch across trials in one process, so it takes precedence
        over ``parallel`` trial pooling, and the intra-trial
        ``num_shards``/``shard_parallel`` knobs are ignored (the batched
        engine always walks the canonical shard streams in-process).
    keep_trials:
        Retain the per-trial results on the returned
        :class:`ExperimentResult` (default).  ``False`` drops each trial
        after folding its group series into the online
        :class:`GroupSeriesMoments`, so experiments with very large trial
        counts keep ``O(steps * groups)`` memory; per-trial accessors
        (``trials``, ``stacked_user_series``) are then unavailable.
    checkpoint_dir, checkpoint_every, resume:
        Fault-tolerance overrides (``None`` defers to the config).  Each
        running trial snapshots its loop state every ``checkpoint_every``
        steps, and each *completed* trial persists its result to
        ``checkpoint_dir``; with ``resume`` the experiment skips trials
        whose results are already on disk and continues interrupted
        trials from their latest intact snapshot — all bit-identical to
        the uninterrupted experiment.  See :func:`run_trial`.
    supervisor:
        :class:`~repro.core.supervision.SupervisorPolicy` governing the
        pooled execution paths: worker death, hangs (with
        ``supervisor.timeout``) and raises are detected, lost trials are
        re-run on a rebuilt pool with exponential backoff, and work past
        the retry budget degrades to the bit-identical serial path with a
        :class:`RuntimeWarning` instead of crashing the experiment.
    execution:
        Planner knob override (``None`` defers to ``config.execution``):
        one request — ``"auto"``, ``"serial"``, ``"batch"``, ``"pool"``
        or ``"shard"`` — resolved into the concrete layout switches by
        :func:`~repro.core.planner.plan_execution` from (``cpu_count``,
        trials, users, steps, history/retrain modes, checkpoint knobs).
        ``"auto"`` may compose layouts (pooled trials × sharded users on
        hosts with spare cores).  Mutually exclusive with the legacy
        ``parallel``/``trial_batch``/``shard_parallel`` overrides;
        ``max_workers`` and ``num_shards`` are accepted as planner
        hints.  Every plan is bit-identical to serial, so this knob can
        never change a result — only its wall clock.
    """
    workers = config.max_workers if max_workers is None else max_workers
    if workers is not None and workers <= 0:
        raise ValueError("max_workers must be positive when given")
    ckpt_dir = config.checkpoint_dir if checkpoint_dir is None else checkpoint_dir
    every = config.checkpoint_every if checkpoint_every is None else checkpoint_every
    do_resume = config.resume if resume is None else bool(resume)
    resolved_mode = config.history_mode if history_mode is None else history_mode
    exec_mode = config.execution if execution is None else execution
    if exec_mode is not None:
        for name, value in (
            ("parallel", parallel),
            ("trial_batch", trial_batch),
            ("shard_parallel", shard_parallel),
        ):
            if value is not None:
                raise ValueError(
                    "the execution knob replaces the legacy layout switches: "
                    f"drop the {name} override when setting execution "
                    f"(got execution={exec_mode!r})"
                )
        plan = plan_execution(
            exec_mode,
            trials=config.num_trials,
            users=config.num_users,
            steps=config.num_steps,
            history_mode=resolved_mode,
            retrain_mode=(
                config.retrain_mode if retrain_mode is None else retrain_mode
            ),
            checkpoint_every=every,
            resume=do_resume,
            max_workers=workers,
            num_shards=_shard_hint(num_shards, config),
        )
        # The plan is fully resolved here; strip the knob off the config so
        # the trial workers (and the batched engine) execute the concrete
        # switches below instead of re-planning on their own host view.
        config = replace(config, execution=None)
        use_parallel = plan.parallel
        use_batch = plan.trial_batch
        if plan.parallel:
            workers = plan.max_workers
        num_shards = plan.num_shards
        shard_parallel = plan.shard_parallel
    else:
        use_parallel = config.parallel if parallel is None else bool(parallel)
        use_batch = config.trial_batch if trial_batch is None else bool(trial_batch)
    validate_checkpoint_settings(ckpt_dir, every, do_resume, trial_batch=use_batch)
    worker_count = min(config.num_trials, workers or os.cpu_count() or 1)
    moments = GroupSeriesMoments()
    if use_batch:
        trials = _run_trials_batched(
            config,
            policy_factory,
            terms,
            income_table,
            history_mode,
            retrain_mode,
            warm_start,
            moments,
            keep_trials,
        )
        return ExperimentResult(
            config=config,
            trials=tuple(trials),
            group_moments=moments,
            resolved_history_mode=resolved_mode,
        )
    # The fingerprint must describe the *effective* trajectory parameters,
    # so the retrain_mode/warm_start overrides merge in exactly as
    # run_trial will merge them.
    effective = config
    if retrain_mode is not None or warm_start is not None:
        effective = replace(
            config,
            retrain_mode=(
                config.retrain_mode if retrain_mode is None else retrain_mode
            ),
            warm_start=config.warm_start if warm_start is None else bool(warm_start),
        )
    folder = _OrderedTrialFolder(moments, keep_trials)
    pending: List[int] = []
    for trial_index in range(config.num_trials):
        loaded = None
        if do_resume and ckpt_dir is not None:
            # keep_trials=False folds only the group series, so skip
            # materialising the persisted full result.
            loaded = _load_trial_result(
                ckpt_dir,
                trial_index,
                _trial_fingerprint(effective, trial_index, resolved_mode),
                need_full=keep_trials,
            )
        if loaded is not None:
            folder.add(trial_index, loaded)
        else:
            pending.append(trial_index)
    if use_parallel and len(pending) > 1 and worker_count > 1:
        pooled = _try_run_trials_in_processes(
            config,
            policy_factory,
            terms,
            income_table,
            min(len(pending), worker_count),
            history_mode,
            num_shards,
            shard_parallel,
            shard_transport,
            retrain_mode,
            warm_start,
            pending=pending,
            supervisor=supervisor,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=every,
            resume=do_resume,
        )
        if pooled is not None:
            for trial_index, trial in pooled.items():
                if ckpt_dir is not None:
                    _write_trial_result(
                        ckpt_dir,
                        trial_index,
                        _trial_fingerprint(effective, trial_index, resolved_mode),
                        trial,
                    )
                folder.add(trial_index, trial)
            pending = [index for index in pending if index not in pooled]
    for trial_index in pending:
        trial = run_trial(
            config,
            trial_index=trial_index,
            policy_factory=policy_factory,
            terms=terms,
            income_table=income_table,
            history_mode=history_mode,
            num_shards=num_shards,
            shard_parallel=shard_parallel,
            shard_transport=shard_transport,
            retrain_mode=retrain_mode,
            warm_start=warm_start,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=every,
            resume=do_resume,
            supervisor=supervisor,
        )
        if ckpt_dir is not None:
            _write_trial_result(
                ckpt_dir,
                trial_index,
                _trial_fingerprint(effective, trial_index, resolved_mode),
                trial,
            )
        folder.add(trial_index, trial)
    return ExperimentResult(
        config=config,
        trials=tuple(folder.trials),
        group_moments=moments,
        resolved_history_mode=resolved_mode,
    )


def _run_trials_batched(
    config: CaseStudyConfig,
    policy_factory: PolicyFactory | None,
    terms: MortgageTerms | None,
    income_table: IncomeTable | None,
    history_mode: str | None,
    retrain_mode: str | None,
    warm_start: bool | None,
    moments: GroupSeriesMoments,
    keep_trials: bool,
) -> List[TrialResult]:
    """Run every trial through the trial-batched engine.

    Mirrors :func:`run_trial`'s override handling (mode validation, the
    ``retrain_mode``/``warm_start`` merge into the config the policy
    factory reads) and its result assembly, so a batched trial is the
    serial trial, bit for bit, minus the per-trial dispatch overhead.
    """
    mode = config.history_mode if history_mode is None else history_mode
    if mode not in ("full", "aggregate"):
        raise ValueError(f'history_mode must be "full" or "aggregate", got {mode!r}')
    if retrain_mode is not None or warm_start is not None:
        config = replace(
            config,
            retrain_mode=(
                config.retrain_mode if retrain_mode is None else retrain_mode
            ),
            warm_start=config.warm_start if warm_start is None else bool(warm_start),
        )
    factory = policy_factory or default_policy_factory
    outcomes = run_trials_batched(
        config,
        factory,
        terms=terms,
        income_table=income_table,
        history_mode=mode,
    )
    trials: List[TrialResult] = []
    for history, population in outcomes:
        trial = _trial_result_from_history(config, history, population)
        moments.update(trial.group_default_rates)
        if keep_trials:
            trials.append(trial)
    return trials


def _try_run_trials_in_processes(
    config: CaseStudyConfig,
    policy_factory: PolicyFactory | None,
    terms: MortgageTerms | None,
    income_table: IncomeTable | None,
    workers: int,
    history_mode: str | None = None,
    num_shards: int | None = None,
    shard_parallel: bool | None = None,
    shard_transport: str | None = None,
    retrain_mode: str | None = None,
    warm_start: bool | None = None,
    pending: Sequence[int] | None = None,
    supervisor: SupervisorPolicy | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
    resume: bool = False,
) -> Dict[int, TrialResult] | None:
    """Run trials on a supervised process pool; ``None`` for serial fallback.

    The trial body holds the GIL, so processes are the only executor worth
    having.  Inputs failing the cheap pickle probe return ``None`` before
    anything runs and the caller takes the plain serial loop —
    bit-identical either way.

    Once trials are in flight the pool is *supervised* instead of
    abandoned: a worker death (``BrokenProcessPool`` — previously this
    discarded every completed trial and silently re-ran the whole
    experiment serially) now tears the broken pool down, keeps every
    completed result, and re-runs only the lost trials on a fresh pool
    after an exponential backoff; a raise inside one trial retries just
    that trial; and with ``supervisor.timeout`` set, a window in which *no*
    trial completes is treated as a hung pool.  When step checkpointing is
    on, a retried trial resumes from the dead worker's last snapshot
    instead of from scratch.  A trial that exhausts
    ``supervisor.max_retries`` degrades to an in-process serial run with
    PR 3's ``RuntimeWarning`` shape — so the experiment completes (or
    surfaces the trial's own deterministic error) rather than crashing on
    infrastructure failure.
    """
    indices = list(range(config.num_trials)) if pending is None else list(pending)
    if not indices:
        return {}
    policy = supervisor or SupervisorPolicy()
    resumable_retries = checkpoint_dir is not None and checkpoint_every > 0

    def payload_for(trial_index: int) -> tuple:
        # A retried trial may resume from the dead worker's checkpoint;
        # the first attempt honors the caller's resume flag.
        attempt_resume = resume or (
            resumable_retries and attempts[trial_index] > 0
        )
        return (
            config,
            trial_index,
            policy_factory,
            terms,
            income_table,
            history_mode,
            num_shards,
            shard_parallel,
            shard_transport,
            retrain_mode,
            warm_start,
            checkpoint_dir,
            checkpoint_every,
            attempt_resume,
            supervisor,
        )

    attempts: Dict[int, int] = {index: 0 for index in indices}
    if not _is_picklable(payload_for(indices[0])):
        return None
    results: Dict[int, TrialResult] = {}
    waiting = list(indices)
    executor: ProcessPoolExecutor | None = None
    pool_failures = 0
    try:
        while waiting:
            # Trials past the retry budget degrade to the in-process
            # serial path (their own deterministic errors then surface
            # naturally instead of being retried forever).
            for trial_index in [i for i in waiting if attempts[i] > policy.max_retries]:
                warnings.warn(
                    "parallel trials fell back to the serial path: trial "
                    f"{trial_index} exhausted its retry budget "
                    f"({policy.max_retries} retries)",
                    RuntimeWarning,
                    stacklevel=3,
                )
                results[trial_index] = run_trial(
                    config,
                    trial_index=trial_index,
                    policy_factory=policy_factory,
                    terms=terms,
                    income_table=income_table,
                    history_mode=history_mode,
                    num_shards=num_shards,
                    shard_parallel=shard_parallel,
                    shard_transport=shard_transport,
                    retrain_mode=retrain_mode,
                    warm_start=warm_start,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_every=checkpoint_every,
                    resume=resume or resumable_retries,
                    supervisor=supervisor,
                )
            waiting = [i for i in waiting if i not in results]
            if not waiting:
                break
            failure: WorkerPoolFailure | None = None
            try:
                if executor is None:
                    executor = ProcessPoolExecutor(
                        max_workers=min(workers, len(waiting))
                    )
                future_map = {
                    executor.submit(_run_trial_task, payload_for(index)): index
                    for index in waiting
                }
            except (pickle.PicklingError, BrokenProcessPool) as error:
                failure = WorkerPoolFailure("submitting trials failed", error)
                future_map = {}
            outstanding = set(future_map)
            while outstanding and failure is None:
                done, _ = wait(
                    outstanding, timeout=policy.timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    failure = WorkerPoolFailure(
                        "no trial completed within the supervision timeout", None
                    )
                    break
                for future in done:
                    trial_index = future_map[future]
                    outstanding.discard(future)
                    try:
                        results[trial_index] = future.result()
                    except BrokenProcessPool as error:
                        failure = WorkerPoolFailure(
                            "a trial worker process died", error
                        )
                        break
                    except Exception as error:
                        # The trial itself raised: retry just this one.
                        attempts[trial_index] += 1
            waiting = [i for i in waiting if i not in results]
            if failure is not None and waiting:
                pool_failures += 1
                for trial_index in waiting:
                    attempts[trial_index] += 1
                kill_executor(executor)
                executor = None
                cause = failure.cause if failure.cause is not None else failure
                warnings.warn(
                    f"parallel trial pool failure ({failure.reason}: {cause!r}); "
                    f"rebuilding the pool and re-running {len(waiting)} lost "
                    f"trial(s) (pool failure {pool_failures})",
                    RuntimeWarning,
                    stacklevel=3,
                )
                policy.sleep_before_retry(pool_failures)
        if executor is not None:
            # Clean exit: every worker is idle, so waiting is instant and
            # lets the pool's management thread close its wakeup pipe
            # before the interpreter's atexit hook races it.
            executor.shutdown(wait=True, cancel_futures=True)
            executor = None
    finally:
        if executor is not None:
            # Exceptional exit: workers may be hung, so don't wait on them.
            executor.shutdown(wait=False, cancel_futures=True)
    return results
