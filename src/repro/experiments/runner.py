"""Multi-trial runner of the credit-scoring closed loop.

A *trial* (the paper's term) generates a fresh batch of users and runs the
closed loop over the whole calendar window; the experiment repeats the trial
several times and aggregates the race-wise average-default-rate series into
mean and standard-deviation bands — exactly the quantities plotted in the
paper's Figures 3-5.

Trials are embarrassingly parallel: trial ``t`` seeds its own generator via
``derive_seed(config.seed, "trial", t)``, so no random state is shared and
running trials concurrently (``parallel=True`` on the config or the
``run_experiment`` call) yields bit-identical results to the serial loop.

Each trial records in one of two history modes (``config.history_mode`` or
the ``history_mode`` override): ``"full"`` retains the ``(steps, users)``
columns, ``"aggregate"`` streams the trajectory through a
:class:`~repro.core.streaming.StreamingAggregator` and keeps only the
group-level series the paper's figures need, bounding memory for
million-user trials.  Group-level results are bit-identical between modes;
per-user accessors (``user_default_rates``, ``stacked_user_series``) raise
:class:`~repro.core.history.FullHistoryRequiredError` in aggregate mode.
The runner uses a process pool (the trial body is pure numpy-crunching
Python, which threads cannot overlap under the GIL) and falls back to the
plain serial loop when the inputs cannot be pickled (e.g. a lambda policy
factory) or the pool breaks at run time — threads would add concurrency
hazards without adding speed, so serial is the only fallback.

A third execution layout targets the single-core sweep: ``trial_batch``
(config knob or ``run_experiment`` override) runs every trial in lockstep
through the trial-batched tensor engine
(:mod:`repro.experiments.batch`), which stacks the per-trial populations
into ``(trials, users)`` columns and fuses the deterministic per-step
math across the trial axis while each trial keeps its own derived random
streams and refits.  Every batched trial is bit-identical to its serial
:func:`run_trial` twin; batching takes precedence over ``parallel`` when
both are enabled (it amortises dispatch without processes, the winning
strategy on few cores with many trials).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.ai_system import AISystem, CreditScoringSystem
from repro.core.filters import DefaultRateFilter
from repro.core.history import FullHistoryRequiredError, SimulationHistory
from repro.core.loop import ClosedLoop
from repro.core.metrics import group_approval_series, group_average_series
from repro.core.streaming import AggregateHistory
from repro.core.population import CreditPopulation
from repro.credit.lender import Lender
from repro.credit.mortgage import MortgageTerms
from repro.credit.repayment import GaussianRepaymentModel
from repro.data.census import IncomeTable, Race, default_income_table
from repro.data.synthetic import PopulationSpec, generate_population
from repro.experiments.batch import run_trials_batched
from repro.experiments.config import CaseStudyConfig
from repro.utils.rng import derive_seed

__all__ = [
    "TrialResult",
    "ExperimentResult",
    "GroupSeriesMoments",
    "run_trial",
    "run_experiment",
]


#: Signature of a policy factory: builds a fresh AI system for each trial.
PolicyFactory = Callable[[CaseStudyConfig, CreditPopulation], AISystem]


def default_policy_factory(
    config: CaseStudyConfig, population: CreditPopulation
) -> AISystem:
    """Build the paper's retraining scorecard lender for one trial."""
    return CreditScoringSystem(
        Lender(
            cutoff=config.cutoff,
            warm_up_rounds=config.warm_up_rounds,
            retrain_mode=config.retrain_mode,
            warm_start=config.warm_start,
        )
    )


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial of the case study.

    Attributes
    ----------
    history:
        The trial's trajectory store: a
        :class:`~repro.core.history.SimulationHistory` in full mode, an
        :class:`~repro.core.streaming.AggregateHistory` in aggregate mode.
    user_default_rates:
        ``ADR_i(k)`` as a ``(steps, users)`` matrix, or ``None`` in
        aggregate mode (per-user rows are never materialised there).
    group_default_rates:
        ``ADR_s(k)`` per race as ``(steps,)`` vectors — available, and
        bit-identical, in both modes.
    races:
        The per-user race labels of the trial's population.
    years:
        Calendar years of the steps.
    """

    history: SimulationHistory | AggregateHistory
    user_default_rates: np.ndarray | None
    group_default_rates: Dict[Race, np.ndarray]
    races: np.ndarray
    years: Tuple[int, ...]

    @property
    def history_mode(self) -> str:
        """Return the recording mode this trial ran with."""
        return "aggregate" if isinstance(self.history, AggregateHistory) else "full"

    def group_indices(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the user indices of this trial's population."""
        races_array = np.asarray(self.races, dtype=object)
        return {race: np.flatnonzero(races_array == race) for race in Race}

    def approval_rate_series(self) -> np.ndarray:
        """Return the per-step approval rates (identical in both modes)."""
        return np.asarray(self.history.approval_rates())

    def group_action_averages(self) -> Dict[Race, np.ndarray]:
        """Return the per-race Cesàro action-average series.

        Aggregate mode reads the streaming series; full mode derives the
        same arrays (bit for bit) from the per-user history.
        """
        if isinstance(self.history, AggregateHistory):
            return dict(self.history.group_action_average_series())
        return group_average_series(
            self.history.running_action_averages(), self.group_indices()
        )

    def group_approval_series(self) -> Dict[Race, np.ndarray]:
        """Return the per-race per-step approval-rate series (both modes)."""
        if isinstance(self.history, AggregateHistory):
            return dict(self.history.group_approval_series())
        return group_approval_series(
            self.history.decisions_matrix(), self.group_indices()
        )

    def require_user_default_rates(self) -> np.ndarray:
        """Return the per-user ADR matrix, or raise in aggregate mode."""
        if self.user_default_rates is None:
            raise FullHistoryRequiredError(
                "per-user default-rate series are not retained in "
                'history_mode="aggregate"; rerun with history_mode="full"'
            )
        return self.user_default_rates

    @property
    def final_group_rates(self) -> Dict[Race, float]:
        """Return the last-step race-wise default rates."""
        return {race: float(series[-1]) for race, series in self.group_default_rates.items()}

    @property
    def final_group_gap(self) -> float:
        """Return the spread of the last-step race-wise default rates."""
        finite = [value for value in self.final_group_rates.values() if np.isfinite(value)]
        if len(finite) < 2:
            return 0.0
        return float(max(finite) - min(finite))


class GroupSeriesMoments:
    """Online across-trial moments of the per-race ``ADR_s(k)`` series.

    One Welford accumulator per race and step: trials stream through
    :meth:`update` one at a time, so the across-trial mean and standard
    deviation are available without retaining any per-trial series — the
    route to experiments with thousands of trials
    (``run_experiment(..., keep_trials=False)``).

    The single-pass mean/std agree with the batch ``np.mean``/``np.std``
    over the stacked series to floating-point reassociation error (Welford
    is the numerically stable formulation); the default ``keep_trials=True``
    path still computes the batch statistics, so golden-hash suites are
    unaffected.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean: Dict[Race, np.ndarray] = {}
        self._m2: Dict[Race, np.ndarray] = {}

    @property
    def num_trials(self) -> int:
        """Return how many trials have been folded in."""
        return self._count

    def update(self, group_rates: Dict[Race, np.ndarray]) -> None:
        """Fold one trial's per-race series into the running moments."""
        self._count += 1
        for race, series in group_rates.items():
            values = np.asarray(series, dtype=float)
            if race not in self._mean:
                self._mean[race] = np.zeros_like(values)
                self._m2[race] = np.zeros_like(values)
            delta = values - self._mean[race]
            self._mean[race] += delta / self._count
            self._m2[race] += delta * (values - self._mean[race])

    def mean_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial mean series."""
        if self._count == 0:
            raise ValueError("no trials have been accumulated")
        return {race: mean.copy() for race, mean in self._mean.items()}

    def std_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial (population) std series."""
        if self._count == 0:
            raise ValueError("no trials have been accumulated")
        return {
            race: np.sqrt(m2 / self._count) for race, m2 in self._m2.items()
        }


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregate of several trials.

    Attributes
    ----------
    config:
        The configuration the trials were run with.
    trials:
        The individual trial results, in trial order.  Empty when the
        experiment ran with ``keep_trials=False``; the across-trial group
        statistics then come from ``group_moments``.
    group_moments:
        Online across-trial moments of the per-race series, accumulated as
        the trials completed (always populated by :func:`run_experiment`).
    """

    config: CaseStudyConfig
    trials: Tuple[TrialResult, ...]
    group_moments: GroupSeriesMoments | None = None
    #: The recording mode the trials actually ran with (set by
    #: run_experiment so a ``history_mode`` override survives
    #: ``keep_trials=False``, where no trial is left to ask).
    resolved_history_mode: str | None = None

    @property
    def years(self) -> Tuple[int, ...]:
        """Return the calendar years of the simulation."""
        return self.config.years

    @property
    def history_mode(self) -> str:
        """Return the recording mode the trials ran with."""
        if self.trials:
            return self.trials[0].history_mode
        if self.resolved_history_mode is not None:
            return self.resolved_history_mode
        return self.config.history_mode

    def group_mean_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial mean of ``ADR_s(k)``.

        With retained trials this is the batch ``np.mean`` over the
        stacked per-trial series (bit-stable for the golden suites); a
        trial-free result answers from the online moments instead.
        """
        if not self.trials:
            return self._require_moments().mean_series()
        return {
            race: np.mean(
                [trial.group_default_rates[race] for trial in self.trials], axis=0
            )
            for race in Race
        }

    def group_std_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial standard deviation of ``ADR_s(k)``."""
        if not self.trials:
            return self._require_moments().std_series()
        return {
            race: np.std(
                [trial.group_default_rates[race] for trial in self.trials], axis=0
            )
            for race in Race
        }

    def _require_moments(self) -> GroupSeriesMoments:
        if self.group_moments is None or self.group_moments.num_trials == 0:
            raise ValueError(
                "this ExperimentResult retains neither per-trial series nor "
                "accumulated group moments"
            )
        return self.group_moments

    def stacked_user_series(self) -> np.ndarray:
        """Return all user-wise ADR series stacked as ``(trials * users, steps)``.

        This is the collection of ``5 x 1000`` curves shown in the paper's
        Figure 4.  Requires full-history trials; aggregate-mode runs raise
        :class:`~repro.core.history.FullHistoryRequiredError`.
        """
        return np.vstack(
            [trial.require_user_default_rates().T for trial in self.trials]
        )

    def stacked_user_races(self) -> np.ndarray:
        """Return the race label of every stacked user series."""
        return np.concatenate([trial.races for trial in self.trials])


def run_trial(
    config: CaseStudyConfig,
    trial_index: int = 0,
    policy_factory: PolicyFactory | None = None,
    terms: MortgageTerms | None = None,
    income_table: IncomeTable | None = None,
    history_mode: str | None = None,
    num_shards: int | None = None,
    shard_parallel: bool | None = None,
    retrain_mode: str | None = None,
    warm_start: bool | None = None,
) -> TrialResult:
    """Run one trial of the case study.

    Parameters
    ----------
    config:
        The case-study configuration.
    trial_index:
        Index of the trial; it seeds the trial's independent random stream.
    policy_factory:
        Builder of the AI system (defaults to the paper's retraining
        scorecard lender).
    terms:
        Mortgage terms override (defaults to the configuration's terms).
    income_table:
        Income-table override (defaults to the embedded synthetic table).
    history_mode:
        Recording-mode override (``None`` defers to
        ``config.history_mode``).  ``"aggregate"`` bounds memory by
        streaming group-level series instead of materialising the
        ``(steps, users)`` history; the group series are bit-identical to
        the full-history path.
    num_shards, shard_parallel:
        Intra-trial sharded-execution overrides (``None`` defers to the
        config).  The trajectory is bit-identical for every worker count,
        serial or pooled: the random schedule depends only on the
        population's canonical shard partition and the trial seed.
    retrain_mode, warm_start:
        Sufficient-statistics retraining overrides (``None`` defers to the
        config); see :class:`~repro.experiments.config.CaseStudyConfig`.
        ``"exact"`` reproduces the paper bit for bit; ``"compressed"``
        refits in O(unique rows) with coefficients equal to solver
        tolerance and — at paper scale — identical decision vectors.
    """
    mode = config.history_mode if history_mode is None else history_mode
    if mode not in ("full", "aggregate"):
        raise ValueError(f'history_mode must be "full" or "aggregate", got {mode!r}')
    shards = config.num_shards if num_shards is None else num_shards
    pooled = config.shard_parallel if shard_parallel is None else bool(shard_parallel)
    if shards <= 0:
        raise ValueError("num_shards must be positive")
    if retrain_mode is not None or warm_start is not None:
        # The policy factory reads these off the config, so overrides must
        # land there before the factory runs.
        config = replace(
            config,
            retrain_mode=(
                config.retrain_mode if retrain_mode is None else retrain_mode
            ),
            warm_start=config.warm_start if warm_start is None else bool(warm_start),
        )
    factory = policy_factory or default_policy_factory
    trial_seed = derive_seed(config.seed, "trial", trial_index)
    rng = np.random.default_rng(trial_seed)
    spec = PopulationSpec(size=config.num_users, race_mix=dict(config.race_mix))
    synthetic = generate_population(spec, rng)
    mortgage_terms = terms or MortgageTerms(
        income_multiple=config.income_multiple,
        annual_rate=config.annual_rate,
        living_cost=config.living_cost,
    )
    population = CreditPopulation(
        population=synthetic,
        income_table=income_table or default_income_table(),
        terms=mortgage_terms,
        repayment_model=GaussianRepaymentModel(sensitivity=config.repayment_sensitivity),
        start_year=config.start_year,
    )
    ai_system = factory(config, population)
    loop = ClosedLoop(
        ai_system=ai_system,
        population=population,
        loop_filter=DefaultRateFilter(num_users=config.num_users),
    )
    # The trial seed itself is the base of the shard streams (the
    # population generation above consumed an unrelated generator); an
    # integer base is what lets pooled workers re-derive any shard's stream
    # without shipping generator state.
    if mode == "aggregate":
        history = loop.run(
            config.num_steps,
            rng=trial_seed,
            history_mode="aggregate",
            groups=population.groups,
            num_shards=shards,
            shard_parallel=pooled,
            retrain_mode=config.retrain_mode,
        )
    else:
        history = loop.run(
            config.num_steps,
            rng=trial_seed,
            num_shards=shards,
            shard_parallel=pooled,
            retrain_mode=config.retrain_mode,
        )
    return _trial_result_from_history(config, history, population)


def _trial_result_from_history(
    config: CaseStudyConfig,
    history: SimulationHistory | AggregateHistory,
    population: CreditPopulation,
) -> TrialResult:
    """Assemble a :class:`TrialResult` from a recorded trial history.

    Shared by the serial trial loop and the trial-batched engine, so both
    derive the group series through the identical calls.
    """
    if isinstance(history, AggregateHistory):
        user_rates = None
        group_rates = history.group_default_rate_series()
    else:
        user_rates = history.running_default_rates()
        group_rates = group_average_series(user_rates, population.groups)
    return TrialResult(
        history=history,
        user_default_rates=user_rates,
        group_default_rates={race: group_rates[race] for race in Race},
        races=population.races,
        years=config.years,
    )


def _run_trial_task(
    payload: Tuple[
        CaseStudyConfig,
        int,
        PolicyFactory | None,
        MortgageTerms | None,
        IncomeTable | None,
        str | None,
        int | None,
        bool | None,
        str | None,
        bool | None,
    ]
) -> TrialResult:
    """Executor entry point: run one trial from a pickled argument tuple."""
    (
        config,
        trial_index,
        policy_factory,
        terms,
        income_table,
        history_mode,
        num_shards,
        shard_parallel,
        retrain_mode,
        warm_start,
    ) = payload
    return run_trial(
        config,
        trial_index=trial_index,
        policy_factory=policy_factory,
        terms=terms,
        income_table=income_table,
        history_mode=history_mode,
        num_shards=num_shards,
        shard_parallel=shard_parallel,
        retrain_mode=retrain_mode,
        warm_start=warm_start,
    )


def _is_picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
        return True
    except Exception:
        return False


def run_experiment(
    config: CaseStudyConfig,
    policy_factory: PolicyFactory | None = None,
    terms: MortgageTerms | None = None,
    income_table: IncomeTable | None = None,
    parallel: bool | None = None,
    max_workers: int | None = None,
    history_mode: str | None = None,
    num_shards: int | None = None,
    shard_parallel: bool | None = None,
    retrain_mode: str | None = None,
    warm_start: bool | None = None,
    trial_batch: bool | None = None,
    keep_trials: bool = True,
) -> ExperimentResult:
    """Run all trials of the case study and return the aggregate result.

    Parameters
    ----------
    config:
        The case-study configuration.
    policy_factory, terms, income_table:
        Per-trial overrides, as in :func:`run_trial`.
    history_mode:
        Recording-mode override for every trial (``None`` defers to
        ``config.history_mode``); see :func:`run_trial`.
    parallel:
        Run trials concurrently; ``None`` defers to ``config.parallel``.
        Results are bit-identical to the serial path because every trial
        owns an independent derived seed stream.  A non-picklable
        ``policy_factory`` (or a broken worker pool) falls back to the
        serial loop.
    max_workers:
        Worker cap for the parallel path; ``None`` defers to
        ``config.max_workers`` (and from there to the CPU count).
    num_shards, shard_parallel:
        Intra-trial sharded-execution overrides forwarded to every trial
        (``None`` defers to the config); bit-identical for every setting.
        When trial-level parallelism is active, each trial worker applies
        its shard settings inside its own process (nested shard pools fall
        back to the serial shard path on platforms that forbid them —
        still bit-identical).
    retrain_mode, warm_start:
        Sufficient-statistics retraining overrides forwarded to every
        trial (``None`` defers to the config); see :func:`run_trial`.
    trial_batch:
        Run every trial in lockstep through the trial-batched tensor
        engine (``None`` defers to ``config.trial_batch``); see
        :class:`~repro.experiments.batch.BatchedTrialRunner`.  Every trial
        is bit-identical to its serial twin.  Batching amortises per-step
        dispatch across trials in one process, so it takes precedence
        over ``parallel`` trial pooling, and the intra-trial
        ``num_shards``/``shard_parallel`` knobs are ignored (the batched
        engine always walks the canonical shard streams in-process).
    keep_trials:
        Retain the per-trial results on the returned
        :class:`ExperimentResult` (default).  ``False`` drops each trial
        after folding its group series into the online
        :class:`GroupSeriesMoments`, so experiments with very large trial
        counts keep ``O(steps * groups)`` memory; per-trial accessors
        (``trials``, ``stacked_user_series``) are then unavailable.
    """
    use_parallel = config.parallel if parallel is None else bool(parallel)
    use_batch = config.trial_batch if trial_batch is None else bool(trial_batch)
    workers = config.max_workers if max_workers is None else max_workers
    if workers is not None and workers <= 0:
        raise ValueError("max_workers must be positive when given")
    worker_count = min(config.num_trials, workers or os.cpu_count() or 1)
    moments = GroupSeriesMoments()
    trials: List[TrialResult] | None = None
    if use_batch:
        trials = _run_trials_batched(
            config,
            policy_factory,
            terms,
            income_table,
            history_mode,
            retrain_mode,
            warm_start,
            moments,
            keep_trials,
        )
        return ExperimentResult(
            config=config,
            trials=tuple(trials),
            group_moments=moments,
            resolved_history_mode=(
                config.history_mode if history_mode is None else history_mode
            ),
        )
    if use_parallel and config.num_trials > 1 and worker_count > 1:
        trials = _try_run_trials_in_processes(
            config,
            policy_factory,
            terms,
            income_table,
            worker_count,
            history_mode,
            num_shards,
            shard_parallel,
            retrain_mode,
            warm_start,
            moments,
            keep_trials,
        )
    if trials is None:
        moments = GroupSeriesMoments()
        trials = []
        for trial_index in range(config.num_trials):
            trial = run_trial(
                config,
                trial_index=trial_index,
                policy_factory=policy_factory,
                terms=terms,
                income_table=income_table,
                history_mode=history_mode,
                num_shards=num_shards,
                shard_parallel=shard_parallel,
                retrain_mode=retrain_mode,
                warm_start=warm_start,
            )
            moments.update(trial.group_default_rates)
            if keep_trials:
                trials.append(trial)
    return ExperimentResult(
        config=config,
        trials=tuple(trials),
        group_moments=moments,
        resolved_history_mode=(
            config.history_mode if history_mode is None else history_mode
        ),
    )


def _run_trials_batched(
    config: CaseStudyConfig,
    policy_factory: PolicyFactory | None,
    terms: MortgageTerms | None,
    income_table: IncomeTable | None,
    history_mode: str | None,
    retrain_mode: str | None,
    warm_start: bool | None,
    moments: GroupSeriesMoments,
    keep_trials: bool,
) -> List[TrialResult]:
    """Run every trial through the trial-batched engine.

    Mirrors :func:`run_trial`'s override handling (mode validation, the
    ``retrain_mode``/``warm_start`` merge into the config the policy
    factory reads) and its result assembly, so a batched trial is the
    serial trial, bit for bit, minus the per-trial dispatch overhead.
    """
    mode = config.history_mode if history_mode is None else history_mode
    if mode not in ("full", "aggregate"):
        raise ValueError(f'history_mode must be "full" or "aggregate", got {mode!r}')
    if retrain_mode is not None or warm_start is not None:
        config = replace(
            config,
            retrain_mode=(
                config.retrain_mode if retrain_mode is None else retrain_mode
            ),
            warm_start=config.warm_start if warm_start is None else bool(warm_start),
        )
    factory = policy_factory or default_policy_factory
    outcomes = run_trials_batched(
        config,
        factory,
        terms=terms,
        income_table=income_table,
        history_mode=mode,
    )
    trials: List[TrialResult] = []
    for history, population in outcomes:
        trial = _trial_result_from_history(config, history, population)
        moments.update(trial.group_default_rates)
        if keep_trials:
            trials.append(trial)
    return trials


def _try_run_trials_in_processes(
    config: CaseStudyConfig,
    policy_factory: PolicyFactory | None,
    terms: MortgageTerms | None,
    income_table: IncomeTable | None,
    workers: int,
    history_mode: str | None = None,
    num_shards: int | None = None,
    shard_parallel: bool | None = None,
    retrain_mode: str | None = None,
    warm_start: bool | None = None,
    moments: GroupSeriesMoments | None = None,
    keep_trials: bool = True,
) -> List[TrialResult] | None:
    """Run the trials on a process pool, or return ``None`` for serial fallback.

    The trial body holds the GIL, so processes are the only executor worth
    having; if the inputs fail the cheap pickle probe, or the pool breaks at
    run time (e.g. a factory that pickles by reference but cannot be
    resolved in the worker under the spawn start method), the caller runs
    the plain serial loop instead — bit-identical either way.
    """
    payloads = [
        (
            config,
            trial_index,
            policy_factory,
            terms,
            income_table,
            history_mode,
            num_shards,
            shard_parallel,
            retrain_mode,
            warm_start,
        )
        for trial_index in range(config.num_trials)
    ]
    if not _is_picklable(payloads[0]):
        return None
    trials: List[TrialResult] = []
    try:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            for trial in executor.map(_run_trial_task, payloads):
                if moments is not None:
                    moments.update(trial.group_default_rates)
                if keep_trials:
                    trials.append(trial)
            return trials
    except (pickle.PicklingError, BrokenProcessPool):
        return None
