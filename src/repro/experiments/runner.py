"""Multi-trial runner of the credit-scoring closed loop.

A *trial* (the paper's term) generates a fresh batch of users and runs the
closed loop over the whole calendar window; the experiment repeats the trial
several times and aggregates the race-wise average-default-rate series into
mean and standard-deviation bands — exactly the quantities plotted in the
paper's Figures 3-5.

Trials are embarrassingly parallel: trial ``t`` seeds its own generator via
``derive_seed(config.seed, "trial", t)``, so no random state is shared and
running trials concurrently (``parallel=True`` on the config or the
``run_experiment`` call) yields bit-identical results to the serial loop.

Each trial records in one of two history modes (``config.history_mode`` or
the ``history_mode`` override): ``"full"`` retains the ``(steps, users)``
columns, ``"aggregate"`` streams the trajectory through a
:class:`~repro.core.streaming.StreamingAggregator` and keeps only the
group-level series the paper's figures need, bounding memory for
million-user trials.  Group-level results are bit-identical between modes;
per-user accessors (``user_default_rates``, ``stacked_user_series``) raise
:class:`~repro.core.history.FullHistoryRequiredError` in aggregate mode.
The runner uses a process pool (the trial body is pure numpy-crunching
Python, which threads cannot overlap under the GIL) and falls back to the
plain serial loop when the inputs cannot be pickled (e.g. a lambda policy
factory) or the pool breaks at run time — threads would add concurrency
hazards without adding speed, so serial is the only fallback.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.ai_system import AISystem, CreditScoringSystem
from repro.core.filters import DefaultRateFilter
from repro.core.history import FullHistoryRequiredError, SimulationHistory
from repro.core.loop import ClosedLoop
from repro.core.metrics import group_approval_series, group_average_series
from repro.core.streaming import AggregateHistory
from repro.core.population import CreditPopulation
from repro.credit.lender import Lender
from repro.credit.mortgage import MortgageTerms
from repro.credit.repayment import GaussianRepaymentModel
from repro.data.census import IncomeTable, Race, default_income_table
from repro.data.synthetic import PopulationSpec, generate_population
from repro.experiments.config import CaseStudyConfig
from repro.utils.rng import derive_seed

__all__ = ["TrialResult", "ExperimentResult", "run_trial", "run_experiment"]


#: Signature of a policy factory: builds a fresh AI system for each trial.
PolicyFactory = Callable[[CaseStudyConfig, CreditPopulation], AISystem]


def default_policy_factory(
    config: CaseStudyConfig, population: CreditPopulation
) -> AISystem:
    """Build the paper's retraining scorecard lender for one trial."""
    return CreditScoringSystem(
        Lender(cutoff=config.cutoff, warm_up_rounds=config.warm_up_rounds)
    )


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial of the case study.

    Attributes
    ----------
    history:
        The trial's trajectory store: a
        :class:`~repro.core.history.SimulationHistory` in full mode, an
        :class:`~repro.core.streaming.AggregateHistory` in aggregate mode.
    user_default_rates:
        ``ADR_i(k)`` as a ``(steps, users)`` matrix, or ``None`` in
        aggregate mode (per-user rows are never materialised there).
    group_default_rates:
        ``ADR_s(k)`` per race as ``(steps,)`` vectors — available, and
        bit-identical, in both modes.
    races:
        The per-user race labels of the trial's population.
    years:
        Calendar years of the steps.
    """

    history: SimulationHistory | AggregateHistory
    user_default_rates: np.ndarray | None
    group_default_rates: Dict[Race, np.ndarray]
    races: np.ndarray
    years: Tuple[int, ...]

    @property
    def history_mode(self) -> str:
        """Return the recording mode this trial ran with."""
        return "aggregate" if isinstance(self.history, AggregateHistory) else "full"

    def group_indices(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the user indices of this trial's population."""
        races_array = np.asarray(self.races, dtype=object)
        return {race: np.flatnonzero(races_array == race) for race in Race}

    def approval_rate_series(self) -> np.ndarray:
        """Return the per-step approval rates (identical in both modes)."""
        return np.asarray(self.history.approval_rates())

    def group_action_averages(self) -> Dict[Race, np.ndarray]:
        """Return the per-race Cesàro action-average series.

        Aggregate mode reads the streaming series; full mode derives the
        same arrays (bit for bit) from the per-user history.
        """
        if isinstance(self.history, AggregateHistory):
            return dict(self.history.group_action_average_series())
        return group_average_series(
            self.history.running_action_averages(), self.group_indices()
        )

    def group_approval_series(self) -> Dict[Race, np.ndarray]:
        """Return the per-race per-step approval-rate series (both modes)."""
        if isinstance(self.history, AggregateHistory):
            return dict(self.history.group_approval_series())
        return group_approval_series(
            self.history.decisions_matrix(), self.group_indices()
        )

    def require_user_default_rates(self) -> np.ndarray:
        """Return the per-user ADR matrix, or raise in aggregate mode."""
        if self.user_default_rates is None:
            raise FullHistoryRequiredError(
                "per-user default-rate series are not retained in "
                'history_mode="aggregate"; rerun with history_mode="full"'
            )
        return self.user_default_rates

    @property
    def final_group_rates(self) -> Dict[Race, float]:
        """Return the last-step race-wise default rates."""
        return {race: float(series[-1]) for race, series in self.group_default_rates.items()}

    @property
    def final_group_gap(self) -> float:
        """Return the spread of the last-step race-wise default rates."""
        finite = [value for value in self.final_group_rates.values() if np.isfinite(value)]
        if len(finite) < 2:
            return 0.0
        return float(max(finite) - min(finite))


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregate of several trials.

    Attributes
    ----------
    config:
        The configuration the trials were run with.
    trials:
        The individual trial results, in trial order.
    """

    config: CaseStudyConfig
    trials: Tuple[TrialResult, ...]

    @property
    def years(self) -> Tuple[int, ...]:
        """Return the calendar years of the simulation."""
        return self.config.years

    @property
    def history_mode(self) -> str:
        """Return the recording mode the trials ran with."""
        if self.trials:
            return self.trials[0].history_mode
        return self.config.history_mode

    def group_mean_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial mean of ``ADR_s(k)``."""
        return {
            race: np.mean(
                [trial.group_default_rates[race] for trial in self.trials], axis=0
            )
            for race in Race
        }

    def group_std_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial standard deviation of ``ADR_s(k)``."""
        return {
            race: np.std(
                [trial.group_default_rates[race] for trial in self.trials], axis=0
            )
            for race in Race
        }

    def stacked_user_series(self) -> np.ndarray:
        """Return all user-wise ADR series stacked as ``(trials * users, steps)``.

        This is the collection of ``5 x 1000`` curves shown in the paper's
        Figure 4.  Requires full-history trials; aggregate-mode runs raise
        :class:`~repro.core.history.FullHistoryRequiredError`.
        """
        return np.vstack(
            [trial.require_user_default_rates().T for trial in self.trials]
        )

    def stacked_user_races(self) -> np.ndarray:
        """Return the race label of every stacked user series."""
        return np.concatenate([trial.races for trial in self.trials])


def run_trial(
    config: CaseStudyConfig,
    trial_index: int = 0,
    policy_factory: PolicyFactory | None = None,
    terms: MortgageTerms | None = None,
    income_table: IncomeTable | None = None,
    history_mode: str | None = None,
) -> TrialResult:
    """Run one trial of the case study.

    Parameters
    ----------
    config:
        The case-study configuration.
    trial_index:
        Index of the trial; it seeds the trial's independent random stream.
    policy_factory:
        Builder of the AI system (defaults to the paper's retraining
        scorecard lender).
    terms:
        Mortgage terms override (defaults to the configuration's terms).
    income_table:
        Income-table override (defaults to the embedded synthetic table).
    history_mode:
        Recording-mode override (``None`` defers to
        ``config.history_mode``).  ``"aggregate"`` bounds memory by
        streaming group-level series instead of materialising the
        ``(steps, users)`` history; the group series are bit-identical to
        the full-history path.
    """
    mode = config.history_mode if history_mode is None else history_mode
    if mode not in ("full", "aggregate"):
        raise ValueError(f'history_mode must be "full" or "aggregate", got {mode!r}')
    factory = policy_factory or default_policy_factory
    trial_seed = derive_seed(config.seed, "trial", trial_index)
    rng = np.random.default_rng(trial_seed)
    spec = PopulationSpec(size=config.num_users, race_mix=dict(config.race_mix))
    synthetic = generate_population(spec, rng)
    mortgage_terms = terms or MortgageTerms(
        income_multiple=config.income_multiple,
        annual_rate=config.annual_rate,
        living_cost=config.living_cost,
    )
    population = CreditPopulation(
        population=synthetic,
        income_table=income_table or default_income_table(),
        terms=mortgage_terms,
        repayment_model=GaussianRepaymentModel(sensitivity=config.repayment_sensitivity),
        start_year=config.start_year,
    )
    ai_system = factory(config, population)
    loop = ClosedLoop(
        ai_system=ai_system,
        population=population,
        loop_filter=DefaultRateFilter(num_users=config.num_users),
    )
    if mode == "aggregate":
        history = loop.run(
            config.num_steps,
            rng=rng,
            history_mode="aggregate",
            groups=population.groups,
        )
        user_rates = None
        group_rates = history.group_default_rate_series()
    else:
        history = loop.run(config.num_steps, rng=rng)
        user_rates = history.running_default_rates()
        group_rates = group_average_series(user_rates, population.groups)
    return TrialResult(
        history=history,
        user_default_rates=user_rates,
        group_default_rates={race: group_rates[race] for race in Race},
        races=population.races,
        years=config.years,
    )


def _run_trial_task(
    payload: Tuple[
        CaseStudyConfig,
        int,
        PolicyFactory | None,
        MortgageTerms | None,
        IncomeTable | None,
        str | None,
    ]
) -> TrialResult:
    """Executor entry point: run one trial from a pickled argument tuple."""
    config, trial_index, policy_factory, terms, income_table, history_mode = payload
    return run_trial(
        config,
        trial_index=trial_index,
        policy_factory=policy_factory,
        terms=terms,
        income_table=income_table,
        history_mode=history_mode,
    )


def _is_picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
        return True
    except Exception:
        return False


def run_experiment(
    config: CaseStudyConfig,
    policy_factory: PolicyFactory | None = None,
    terms: MortgageTerms | None = None,
    income_table: IncomeTable | None = None,
    parallel: bool | None = None,
    max_workers: int | None = None,
    history_mode: str | None = None,
) -> ExperimentResult:
    """Run all trials of the case study and return the aggregate result.

    Parameters
    ----------
    config:
        The case-study configuration.
    policy_factory, terms, income_table:
        Per-trial overrides, as in :func:`run_trial`.
    history_mode:
        Recording-mode override for every trial (``None`` defers to
        ``config.history_mode``); see :func:`run_trial`.
    parallel:
        Run trials concurrently; ``None`` defers to ``config.parallel``.
        Results are bit-identical to the serial path because every trial
        owns an independent derived seed stream.  A non-picklable
        ``policy_factory`` (or a broken worker pool) falls back to the
        serial loop.
    max_workers:
        Worker cap for the parallel path; ``None`` defers to
        ``config.max_workers`` (and from there to the CPU count).
    """
    use_parallel = config.parallel if parallel is None else bool(parallel)
    workers = config.max_workers if max_workers is None else max_workers
    if workers is not None and workers <= 0:
        raise ValueError("max_workers must be positive when given")
    worker_count = min(config.num_trials, workers or os.cpu_count() or 1)
    trials: List[TrialResult] | None = None
    if use_parallel and config.num_trials > 1 and worker_count > 1:
        trials = _try_run_trials_in_processes(
            config, policy_factory, terms, income_table, worker_count, history_mode
        )
    if trials is None:
        trials = [
            run_trial(
                config,
                trial_index=trial_index,
                policy_factory=policy_factory,
                terms=terms,
                income_table=income_table,
                history_mode=history_mode,
            )
            for trial_index in range(config.num_trials)
        ]
    return ExperimentResult(config=config, trials=tuple(trials))


def _try_run_trials_in_processes(
    config: CaseStudyConfig,
    policy_factory: PolicyFactory | None,
    terms: MortgageTerms | None,
    income_table: IncomeTable | None,
    workers: int,
    history_mode: str | None = None,
) -> List[TrialResult] | None:
    """Run the trials on a process pool, or return ``None`` for serial fallback.

    The trial body holds the GIL, so processes are the only executor worth
    having; if the inputs fail the cheap pickle probe, or the pool breaks at
    run time (e.g. a factory that pickles by reference but cannot be
    resolved in the worker under the spawn start method), the caller runs
    the plain serial loop instead — bit-identical either way.
    """
    payloads = [
        (config, trial_index, policy_factory, terms, income_table, history_mode)
        for trial_index in range(config.num_trials)
    ]
    if not _is_picklable(payloads[0]):
        return None
    try:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            return list(executor.map(_run_trial_task, payloads))
    except (pickle.PicklingError, BrokenProcessPool):
        return None
