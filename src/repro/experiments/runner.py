"""Multi-trial runner of the credit-scoring closed loop.

A *trial* (the paper's term) generates a fresh batch of users and runs the
closed loop over the whole calendar window; the experiment repeats the trial
several times and aggregates the race-wise average-default-rate series into
mean and standard-deviation bands — exactly the quantities plotted in the
paper's Figures 3-5.

Trials are embarrassingly parallel: trial ``t`` seeds its own generator via
``derive_seed(config.seed, "trial", t)``, so no random state is shared and
running trials concurrently (``parallel=True`` on the config or the
``run_experiment`` call) yields bit-identical results to the serial loop.
The runner uses a process pool (the trial body is pure numpy-crunching
Python, which threads cannot overlap under the GIL) and falls back to the
plain serial loop when the inputs cannot be pickled (e.g. a lambda policy
factory) or the pool breaks at run time — threads would add concurrency
hazards without adding speed, so serial is the only fallback.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.ai_system import AISystem, CreditScoringSystem
from repro.core.filters import DefaultRateFilter
from repro.core.history import SimulationHistory
from repro.core.loop import ClosedLoop
from repro.core.metrics import group_average_series
from repro.core.population import CreditPopulation
from repro.credit.lender import Lender
from repro.credit.mortgage import MortgageTerms
from repro.credit.repayment import GaussianRepaymentModel
from repro.data.census import IncomeTable, Race, default_income_table
from repro.data.synthetic import PopulationSpec, generate_population
from repro.experiments.config import CaseStudyConfig
from repro.utils.rng import derive_seed

__all__ = ["TrialResult", "ExperimentResult", "run_trial", "run_experiment"]


#: Signature of a policy factory: builds a fresh AI system for each trial.
PolicyFactory = Callable[[CaseStudyConfig, CreditPopulation], AISystem]


def default_policy_factory(
    config: CaseStudyConfig, population: CreditPopulation
) -> AISystem:
    """Build the paper's retraining scorecard lender for one trial."""
    return CreditScoringSystem(
        Lender(cutoff=config.cutoff, warm_up_rounds=config.warm_up_rounds)
    )


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial of the case study.

    Attributes
    ----------
    history:
        The full closed-loop history of the trial.
    user_default_rates:
        ``ADR_i(k)`` as a ``(steps, users)`` matrix.
    group_default_rates:
        ``ADR_s(k)`` per race as ``(steps,)`` vectors.
    races:
        The per-user race labels of the trial's population.
    years:
        Calendar years of the steps.
    """

    history: SimulationHistory
    user_default_rates: np.ndarray
    group_default_rates: Dict[Race, np.ndarray]
    races: np.ndarray
    years: Tuple[int, ...]

    @property
    def final_group_rates(self) -> Dict[Race, float]:
        """Return the last-step race-wise default rates."""
        return {race: float(series[-1]) for race, series in self.group_default_rates.items()}

    @property
    def final_group_gap(self) -> float:
        """Return the spread of the last-step race-wise default rates."""
        finite = [value for value in self.final_group_rates.values() if np.isfinite(value)]
        if len(finite) < 2:
            return 0.0
        return float(max(finite) - min(finite))


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregate of several trials.

    Attributes
    ----------
    config:
        The configuration the trials were run with.
    trials:
        The individual trial results, in trial order.
    """

    config: CaseStudyConfig
    trials: Tuple[TrialResult, ...]

    @property
    def years(self) -> Tuple[int, ...]:
        """Return the calendar years of the simulation."""
        return self.config.years

    def group_mean_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial mean of ``ADR_s(k)``."""
        return {
            race: np.mean(
                [trial.group_default_rates[race] for trial in self.trials], axis=0
            )
            for race in Race
        }

    def group_std_series(self) -> Dict[Race, np.ndarray]:
        """Return, per race, the across-trial standard deviation of ``ADR_s(k)``."""
        return {
            race: np.std(
                [trial.group_default_rates[race] for trial in self.trials], axis=0
            )
            for race in Race
        }

    def stacked_user_series(self) -> np.ndarray:
        """Return all user-wise ADR series stacked as ``(trials * users, steps)``.

        This is the collection of ``5 x 1000`` curves shown in the paper's
        Figure 4.
        """
        return np.vstack(
            [trial.user_default_rates.T for trial in self.trials]
        )

    def stacked_user_races(self) -> np.ndarray:
        """Return the race label of every stacked user series."""
        return np.concatenate([trial.races for trial in self.trials])


def run_trial(
    config: CaseStudyConfig,
    trial_index: int = 0,
    policy_factory: PolicyFactory | None = None,
    terms: MortgageTerms | None = None,
    income_table: IncomeTable | None = None,
) -> TrialResult:
    """Run one trial of the case study.

    Parameters
    ----------
    config:
        The case-study configuration.
    trial_index:
        Index of the trial; it seeds the trial's independent random stream.
    policy_factory:
        Builder of the AI system (defaults to the paper's retraining
        scorecard lender).
    terms:
        Mortgage terms override (defaults to the configuration's terms).
    income_table:
        Income-table override (defaults to the embedded synthetic table).
    """
    factory = policy_factory or default_policy_factory
    trial_seed = derive_seed(config.seed, "trial", trial_index)
    rng = np.random.default_rng(trial_seed)
    spec = PopulationSpec(size=config.num_users, race_mix=dict(config.race_mix))
    synthetic = generate_population(spec, rng)
    mortgage_terms = terms or MortgageTerms(
        income_multiple=config.income_multiple,
        annual_rate=config.annual_rate,
        living_cost=config.living_cost,
    )
    population = CreditPopulation(
        population=synthetic,
        income_table=income_table or default_income_table(),
        terms=mortgage_terms,
        repayment_model=GaussianRepaymentModel(sensitivity=config.repayment_sensitivity),
        start_year=config.start_year,
    )
    ai_system = factory(config, population)
    loop = ClosedLoop(
        ai_system=ai_system,
        population=population,
        loop_filter=DefaultRateFilter(num_users=config.num_users),
    )
    history = loop.run(config.num_steps, rng=rng)
    user_rates = history.running_default_rates()
    group_rates = group_average_series(user_rates, population.groups)
    return TrialResult(
        history=history,
        user_default_rates=user_rates,
        group_default_rates={race: group_rates[race] for race in Race},
        races=population.races,
        years=config.years,
    )


def _run_trial_task(
    payload: Tuple[
        CaseStudyConfig,
        int,
        PolicyFactory | None,
        MortgageTerms | None,
        IncomeTable | None,
    ]
) -> TrialResult:
    """Executor entry point: run one trial from a pickled argument tuple."""
    config, trial_index, policy_factory, terms, income_table = payload
    return run_trial(
        config,
        trial_index=trial_index,
        policy_factory=policy_factory,
        terms=terms,
        income_table=income_table,
    )


def _is_picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
        return True
    except Exception:
        return False


def run_experiment(
    config: CaseStudyConfig,
    policy_factory: PolicyFactory | None = None,
    terms: MortgageTerms | None = None,
    income_table: IncomeTable | None = None,
    parallel: bool | None = None,
    max_workers: int | None = None,
) -> ExperimentResult:
    """Run all trials of the case study and return the aggregate result.

    Parameters
    ----------
    config:
        The case-study configuration.
    policy_factory, terms, income_table:
        Per-trial overrides, as in :func:`run_trial`.
    parallel:
        Run trials concurrently; ``None`` defers to ``config.parallel``.
        Results are bit-identical to the serial path because every trial
        owns an independent derived seed stream.  A non-picklable
        ``policy_factory`` (or a broken worker pool) falls back to the
        serial loop.
    max_workers:
        Worker cap for the parallel path; ``None`` defers to
        ``config.max_workers`` (and from there to the CPU count).
    """
    use_parallel = config.parallel if parallel is None else bool(parallel)
    workers = config.max_workers if max_workers is None else max_workers
    if workers is not None and workers <= 0:
        raise ValueError("max_workers must be positive when given")
    worker_count = min(config.num_trials, workers or os.cpu_count() or 1)
    trials: List[TrialResult] | None = None
    if use_parallel and config.num_trials > 1 and worker_count > 1:
        trials = _try_run_trials_in_processes(
            config, policy_factory, terms, income_table, worker_count
        )
    if trials is None:
        trials = [
            run_trial(
                config,
                trial_index=trial_index,
                policy_factory=policy_factory,
                terms=terms,
                income_table=income_table,
            )
            for trial_index in range(config.num_trials)
        ]
    return ExperimentResult(config=config, trials=tuple(trials))


def _try_run_trials_in_processes(
    config: CaseStudyConfig,
    policy_factory: PolicyFactory | None,
    terms: MortgageTerms | None,
    income_table: IncomeTable | None,
    workers: int,
) -> List[TrialResult] | None:
    """Run the trials on a process pool, or return ``None`` for serial fallback.

    The trial body holds the GIL, so processes are the only executor worth
    having; if the inputs fail the cheap pickle probe, or the pool breaks at
    run time (e.g. a factory that pickles by reference but cannot be
    resolved in the worker under the spawn start method), the caller runs
    the plain serial loop instead — bit-identical either way.
    """
    payloads = [
        (config, trial_index, policy_factory, terms, income_table)
        for trial_index in range(config.num_trials)
    ]
    if not _is_picklable(payloads[0]):
        return None
    try:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            return list(executor.map(_run_trial_task, payloads))
    except (pickle.PicklingError, BrokenProcessPool):
        return None
