"""Plain-text reporting of series and tables.

The paper presents its evaluation as figures; the reproduction emits the
same data as aligned plain-text tables so the shape of every series (levels,
trends, cross-group gaps) can be read off a terminal or a log file and
asserted on by the benchmarks.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_series_table", "format_distribution_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4f}",
) -> str:
    """Render headers and rows as an aligned plain-text table."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float) or isinstance(cell, np.floating):
                rendered.append(float_format.format(float(cell)))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers))
    ]
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_series_table(
    index: Sequence[object],
    series: Mapping[str, Sequence[float]],
    index_name: str = "step",
    float_format: str = "{:.4f}",
) -> str:
    """Render several named time series against a common index."""
    names = list(series.keys())
    headers = [index_name, *names]
    rows = []
    for position, key in enumerate(index):
        row = [key]
        for name in names:
            values = np.asarray(series[name], dtype=float)
            row.append(float(values[position]))
        rows.append(row)
    return format_table(headers, rows, float_format=float_format)


def format_distribution_table(
    labels: Sequence[str],
    distributions: Mapping[str, Sequence[float]],
    as_percentage: bool = True,
) -> str:
    """Render bracket distributions (e.g. Figure 2's income shares)."""
    headers = ["bracket", *distributions.keys()]
    rows = []
    for position, label in enumerate(labels):
        row: list[object] = [label]
        for values in distributions.values():
            value = float(np.asarray(values, dtype=float)[position])
            row.append(value * 100.0 if as_percentage else value)
        rows.append(row)
    suffix = " (values in %)" if as_percentage else ""
    return format_table(headers, rows, float_format="{:.2f}") + suffix
