"""Ablations: policy comparison (E-A1) and ergodicity of the loop (E-A2).

E-A1 — *Which policy equalises impact?*  The introduction's motivating
comparison: the uniform $50K credit limit (pure equal treatment), the
income-proportional mortgage with the retraining scorecard (the paper's
system), and the never-retrained scorecard.  For each policy the experiment
reports the final cross-race gap in average default rates and in approval
rates.

E-A2 — *When is the loop ergodic?*  A contractive two-map iterated function
system forgets its initial condition (unique invariant measure), whereas a
loop closed through an integral-action filter accumulates a state that
drifts with the realised noise — the ergodicity-breaking effect Section VI
warns about (following Fioravanti et al. 2019).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.ai_system import CreditScoringSystem
from repro.core.metrics import approval_rates_by_group
from repro.baselines.static_model import StaticCreditScoringSystem
from repro.baselines.uniform_limit import UniformLimitPolicy
from repro.baselines.income_multiple import IncomeMultiplePolicy
from repro.credit.lender import Lender
from repro.credit.mortgage import MortgageTerms
from repro.data.census import Race
from repro.experiments.config import CaseStudyConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.markov.ifs import IteratedFunctionSystem
from repro.markov.invariant import unique_ergodicity_diagnostic, wasserstein_distance_1d
from repro.markov.maps import AffineMap
from repro.utils.rng import derive_seed

__all__ = [
    "BaselineComparisonResult",
    "baseline_comparison",
    "ErgodicityAblationResult",
    "ergodicity_ablation",
]


@dataclass(frozen=True)
class PolicyOutcome:
    """Summary of one policy in the baseline comparison.

    Attributes
    ----------
    final_group_rates:
        Final-year race-wise average default rates (mean across trials).
    final_gap:
        Cross-race spread of those rates.
    approval_rates:
        Overall approval rate per race (pooled over steps and trials).
    approval_gap:
        Cross-race spread of the approval rates.
    """

    final_group_rates: Dict[Race, float]
    final_gap: float
    approval_rates: Dict[Race, float]
    approval_gap: float


@dataclass(frozen=True)
class BaselineComparisonResult:
    """Reproduction artefact of the policy ablation (E-A1).

    Attributes
    ----------
    outcomes:
        Per policy name, the summary of its long-run behaviour.
    """

    outcomes: Dict[str, PolicyOutcome]

    def summary(self) -> str:
        """Return the comparison as a plain-text table."""
        rows = []
        for name, outcome in self.outcomes.items():
            rows.append(
                [
                    name,
                    outcome.final_gap,
                    outcome.approval_gap,
                    *[outcome.final_group_rates[race] for race in Race],
                ]
            )
        headers = [
            "policy",
            "final ADR gap",
            "approval gap",
            *[f"final ADR {race.value}" for race in Race],
        ]
        return format_table(headers, rows)

    def equal_impact_ranking(self) -> list[str]:
        """Return the policy names ordered from smallest to largest final gap."""
        return sorted(self.outcomes, key=lambda name: self.outcomes[name].final_gap)


def _summarise(result: ExperimentResult) -> PolicyOutcome:
    mean_series = result.group_mean_series()
    final_rates = {race: float(series[-1]) for race, series in mean_series.items()}
    finite = [value for value in final_rates.values() if np.isfinite(value)]
    final_gap = float(max(finite) - min(finite)) if len(finite) > 1 else 0.0
    approval_totals: Dict[Race, list[float]] = {race: [] for race in Race}
    for trial in result.trials:
        decisions = trial.history.decisions_matrix()
        groups = {
            race: np.flatnonzero(trial.races == race) for race in Race
        }
        rates = approval_rates_by_group(decisions, groups)
        for race in Race:
            if np.isfinite(rates[race]):
                approval_totals[race].append(rates[race])
    approvals = {
        race: float(np.mean(values)) if values else float("nan")
        for race, values in approval_totals.items()
    }
    finite_approvals = [value for value in approvals.values() if np.isfinite(value)]
    approval_gap = (
        float(max(finite_approvals) - min(finite_approvals))
        if len(finite_approvals) > 1
        else 0.0
    )
    return PolicyOutcome(
        final_group_rates=final_rates,
        final_gap=final_gap,
        approval_rates=approvals,
        approval_gap=approval_gap,
    )


def baseline_comparison(config: CaseStudyConfig | None = None) -> BaselineComparisonResult:
    """Run the policy ablation (E-A1) and return the per-policy summaries."""
    run_config = config or CaseStudyConfig()
    proportional_terms = MortgageTerms(
        income_multiple=run_config.income_multiple,
        annual_rate=run_config.annual_rate,
        living_cost=run_config.living_cost,
    )
    uniform_terms = MortgageTerms(
        income_multiple=run_config.income_multiple,
        annual_rate=run_config.annual_rate,
        living_cost=run_config.living_cost,
        fixed_principal=50.0,
    )
    experiments = {
        "retraining scorecard (paper)": run_experiment(
            run_config,
            policy_factory=lambda cfg, pop: CreditScoringSystem(
                Lender(cutoff=cfg.cutoff, warm_up_rounds=cfg.warm_up_rounds)
            ),
            terms=proportional_terms,
        ),
        "uniform $50K limit (equal treatment)": run_experiment(
            run_config,
            policy_factory=lambda cfg, pop: UniformLimitPolicy(),
            terms=uniform_terms,
        ),
        "income-multiple, approve all": run_experiment(
            run_config,
            policy_factory=lambda cfg, pop: IncomeMultiplePolicy(),
            terms=proportional_terms,
        ),
        "static scorecard (never retrained)": run_experiment(
            run_config,
            policy_factory=lambda cfg, pop: StaticCreditScoringSystem(
                Lender(cutoff=cfg.cutoff, warm_up_rounds=cfg.warm_up_rounds)
            ),
            terms=proportional_terms,
        ),
    }
    return BaselineComparisonResult(
        outcomes={name: _summarise(result) for name, result in experiments.items()}
    )


@dataclass(frozen=True)
class ErgodicityAblationResult:
    """Reproduction artefact of the ergodicity ablation (E-A2).

    Attributes
    ----------
    contractive_max_distance:
        Largest pairwise Wasserstein distance between empirical measures of
        the contractive IFS started from different initial conditions
        (small when the loop is uniquely ergodic).
    contractive_is_ergodic:
        Whether the contractive diagnostic passed its tolerance.
    integral_divergence:
        Wasserstein distance between the integral-action loop's state
        distributions obtained from two different initial conditions (large
        when ergodicity is lost).
    integral_breaks_ergodicity:
        Whether the integral-action loop retained memory of its initial
        condition beyond the same tolerance.
    tolerance:
        The tolerance shared by both checks.
    """

    contractive_max_distance: float
    contractive_is_ergodic: bool
    integral_divergence: float
    integral_breaks_ergodicity: bool
    tolerance: float

    def summary(self) -> str:
        """Return the ablation as a short plain-text report."""
        return "\n".join(
            [
                "Ergodicity ablation (E-A2)",
                f"contractive IFS: max Wasserstein distance across initial conditions "
                f"= {self.contractive_max_distance:.4f} "
                f"({'uniquely ergodic' if self.contractive_is_ergodic else 'NOT ergodic'})",
                f"integral-action loop: distance across initial conditions "
                f"= {self.integral_divergence:.4f} "
                f"({'ergodicity lost' if self.integral_breaks_ergodicity else 'still ergodic'})",
            ]
        )


def ergodicity_ablation(
    orbit_length: int = 3000,
    tolerance: float = 0.05,
    seed: int = 7,
) -> ErgodicityAblationResult:
    """Run the ergodicity ablation (E-A2).

    The contractive case is the classical two-map affine IFS
    ``x -> 0.5 x`` / ``x -> 0.5 x + 0.5`` with equal probabilities, which has
    a unique attractive invariant measure.  The non-ergodic case integrates
    the realised actions (integral action), so the accumulated state is a
    random walk plus the initial condition and never forgets it.
    """
    contractive = IteratedFunctionSystem(
        maps=[AffineMap.scalar(0.5, 0.0), AffineMap.scalar(0.5, 0.5)],
        probabilities=[0.5, 0.5],
    )
    diagnostic = unique_ergodicity_diagnostic(
        simulate_orbit=lambda x0, length, generator: contractive.orbit(x0, length, generator),
        initial_states=[np.array([-5.0]), np.array([5.0])],
        orbit_length=orbit_length,
        tolerance=tolerance,
        rng=seed,
    )

    def integral_orbit(initial_state: float, length: int, generator: np.random.Generator) -> np.ndarray:
        states = np.empty(length + 1)
        states[0] = initial_state
        for index in range(length):
            # Integral action: accumulate the (zero-mean) realised action.
            states[index + 1] = states[index] + generator.choice((-0.5, 0.5))
        return states

    first = integral_orbit(-5.0, orbit_length, np.random.default_rng(derive_seed(seed, "a")))
    second = integral_orbit(5.0, orbit_length, np.random.default_rng(derive_seed(seed, "b")))
    burn = orbit_length // 3
    integral_distance = wasserstein_distance_1d(first[burn:], second[burn:])
    return ErgodicityAblationResult(
        contractive_max_distance=float(diagnostic.max_distance),
        contractive_is_ergodic=bool(diagnostic.consistent_with_unique_ergodicity),
        integral_divergence=float(integral_distance),
        integral_breaks_ergodicity=bool(integral_distance > tolerance),
        tolerance=tolerance,
    )
