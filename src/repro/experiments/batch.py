"""Trial-batched execution: a whole experiment's trials in lockstep.

The paper's figures are Monte-Carlo sweeps — ``T`` seeded trials of the
same closed loop.  The serial runner executes them one
:meth:`~repro.core.loop.ClosedLoop.run` at a time, paying the fixed
per-step Python/numpy dispatch cost ``T`` times; on a single-CPU host the
process-pool alternative only adds IPC.  The
:class:`BatchedTrialRunner` here amortises that fixed cost across trials
instead of across processes: the ``T`` per-trial populations are stacked
into ``(trials, users)`` columns and every deterministic per-step phase —
the affordability update, the probit repayment probabilities, the
repayment comparisons, the :class:`~repro.core.filters.DefaultRateFilter`
integer counts, the running-statistics rows of the full history and the
streaming group aggregation — runs as single fused calls over the trial
axis.

Bit-identity contract
---------------------

Every batched trial row is **bit-identical** to its serial
:func:`~repro.experiments.runner.run_trial` twin.  That holds because
nothing about the random schedule or the per-trial arithmetic changes:

* trial ``t`` draws from exactly the serial streams — population
  generation from ``default_rng(derive_seed(seed, "trial", t))``, and each
  step from the canonical per-shard generators
  :func:`~repro.utils.rng.shard_step_generator`.  The engine draws each
  ``(trial, shard, step)`` generator's whole consumption (bracket
  uniforms, in-bracket uniforms, repayment uniforms) in **one**
  ``random(3 * shard_size)`` call; numpy generators buffer nothing between
  ``random`` calls, so the split block equals the serial path's separate
  draws double for double (pinned by the income-sampler regression tests
  and the batch-equivalence suite);
* the fused phases are elementwise, so evaluating them on a stacked
  ``(trials, users)`` block produces the identical bits row by row; every
  per-trial reduction (portfolio sums, approval means, group folds) runs
  over a contiguous trial row — the same reduction the serial engine runs
  over its own arrays;
* the phases that are genuinely per-trial stay per-trial: each trial's AI
  system ``decide``/``update`` (scorecard scoring, the yearly refit — T
  tiny independent IRLS fits per step under
  ``retrain_mode="compressed"``) is invoked exactly as the serial loop
  invokes it, on views of the stacked state.

The engine therefore works with any ``policy_factory`` producing the
credit loop's 0/1 decisions — only the population/filter/recording
machinery is batched, and those are the closed-loop components
:func:`~repro.experiments.runner.run_trial` itself constructs.  (A policy
returning non-binary decisions is rejected loudly: the serial filter
truncates such values to integers before counting offers, a corner whose
implicit semantics the batched counts do not reproduce.)

Trade-off vs. the other execution modes: trial batching wins on few cores
and many trials (it removes per-trial dispatch without spawning
processes); trial-level pooling (``parallel=True``) wins when real cores
exist and trials are few and heavy; intra-trial sharding
(``shard_parallel``) targets single giant trials.  ``BENCH_core.json``
(entry ``trial-batched-engine``) records the measured crossover.  That
rule of thumb is now code: ``execution="auto"``
(:func:`repro.core.planner.plan_execution`) selects this engine exactly
in its winning regime — several trials on a single core, no
checkpointing (the lockstep walk has no per-trial boundary to snapshot,
which is why ``execution="batch"`` with checkpoint knobs is rejected at
config time).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.ai_system import AISystem, CreditScoringSystem
from repro.core.filters import BatchedDefaultRateFilter
from repro.core.history import SimulationHistory
from repro.core.population import CreditPopulation
from repro.core.streaming import AggregateHistory, BatchedStreamingAggregator
from repro.credit.borrower import affordability_state
from repro.credit.lender import Lender
from repro.credit.mortgage import MortgageTerms
from repro.credit.repayment import GaussianRepaymentModel
from repro.data.census import IncomeTable, Race, default_income_table
from repro.data.synthetic import PopulationSpec, generate_population
from repro.experiments.config import CaseStudyConfig
from repro.scoring.cutoff import CutoffPolicy
from repro.scoring.features import FeatureBuilder, clipped_default_rates
from repro.scoring.suffstats import CompressedDesign, pack_rows
from repro.utils.rng import derive_seed, shard_seed, step_generator

__all__ = ["BatchedTrialRunner", "run_trials_batched"]

#: One trial's outcome: the recorded history plus the trial's population
#: (the runner assembles :class:`~repro.experiments.runner.TrialResult`
#: from these, mirroring ``run_trial``'s tail).
TrialOutcome = Tuple[SimulationHistory | AggregateHistory, CreditPopulation]


class BatchedTrialRunner:
    """Run all trials of a case study in lockstep through stacked tensors.

    Parameters
    ----------
    config:
        The fully resolved configuration (``retrain_mode``/``warm_start``
        overrides already merged in — the policy factory reads them off the
        config).
    policy_factory:
        Builder of each trial's AI system, called exactly as
        :func:`~repro.experiments.runner.run_trial` calls it.
    terms, income_table:
        Optional overrides, as in ``run_trial``.  Shared across trials —
        the serial path rebuilds identical immutable objects per trial.
    history_mode:
        ``"full"`` records per-trial
        :class:`~repro.core.history.SimulationHistory` objects through the
        precomputed-statistics fast ingest; ``"aggregate"`` streams all
        trials through one
        :class:`~repro.core.streaming.BatchedStreamingAggregator`.
    """

    def __init__(
        self,
        config: CaseStudyConfig,
        policy_factory,
        terms: MortgageTerms | None = None,
        income_table: IncomeTable | None = None,
        history_mode: str = "full",
    ) -> None:
        if history_mode not in ("full", "aggregate"):
            raise ValueError(
                f'history_mode must be "full" or "aggregate", got {history_mode!r}'
            )
        self._config = config
        self._history_mode = history_mode
        self._terms = terms or MortgageTerms(
            income_multiple=config.income_multiple,
            annual_rate=config.annual_rate,
            living_cost=config.living_cost,
        )
        self._table = income_table or default_income_table()
        self._model = GaussianRepaymentModel(
            sensitivity=config.repayment_sensitivity
        )
        spec = PopulationSpec(
            size=config.num_users, race_mix=dict(config.race_mix)
        )
        self._trial_seeds: List[int] = []
        self._populations: List[CreditPopulation] = []
        self._ai_systems: List[AISystem] = []
        for trial_index in range(config.num_trials):
            trial_seed = derive_seed(config.seed, "trial", trial_index)
            rng = np.random.default_rng(trial_seed)
            synthetic = generate_population(spec, rng)
            population = CreditPopulation(
                population=synthetic,
                income_table=self._table,
                terms=self._terms,
                repayment_model=self._model,
                start_year=config.start_year,
            )
            self._trial_seeds.append(trial_seed)
            self._populations.append(population)
            self._ai_systems.append(policy_factory(config, population))
        self._plan = self._populations[0].shard_plan
        # All populations share the income table, so trial 0's sampler
        # (and its per-(year, race) bracket-CDF cache) serves every draw.
        self._sampler = self._populations[0].sampler
        # The shard half of the stream derivation is step-independent;
        # derive each (trial, shard) seed once.
        self._shard_seeds: List[List[int]] = [
            [shard_seed(base, shard) for shard in range(self._plan.num_shards)]
            for base in self._trial_seeds
        ]
        self._build_draw_layout()
        self._fast_stack = self._resolve_fast_stack()

    def _build_draw_layout(self) -> None:
        """Precompute the flat gather/scatter layout of the step draws.

        Each ``(trial, shard, step)`` generator's whole consumption is one
        ``random(3 * shard_size)`` block written at offset ``3 * lo`` of
        the trial's row in a ``(trials, 3 * users)`` buffer.  Within a
        block the serial draw order is: per race segment (table order,
        skipping empty ones) the bracket uniforms then the in-bracket
        uniforms, and finally the repayment uniforms.  This method turns
        that layout into, per race, flat index arrays — where the race's
        bracket/width uniforms live in the buffer and which flat income
        slots they fill — so each step maps every trial's and shard's
        draws with one ``searchsorted`` and one scatter per race, plus one
        gather for the repayment uniforms.
        """
        config = self._config
        num_users = config.num_users
        buffer_width = 3 * num_users
        races = self._table.races
        bracket_positions: Dict[Race, List[np.ndarray]] = {race: [] for race in races}
        width_positions: Dict[Race, List[np.ndarray]] = {race: [] for race in races}
        income_targets: Dict[Race, List[np.ndarray]] = {race: [] for race in races}
        repayment_positions: List[np.ndarray] = []
        for trial, population in enumerate(self._populations):
            row_base = trial * buffer_width
            for (lo, hi), local in zip(
                self._plan.bounds, population.shard_race_partition()
            ):
                block_base = row_base + 3 * lo
                size = hi - lo
                offset = 0
                for race in races:
                    indices = local.get(race)
                    if indices is None or not indices.size:
                        continue
                    count = indices.size
                    positions = np.arange(
                        block_base + offset, block_base + offset + count
                    )
                    bracket_positions[race].append(positions)
                    width_positions[race].append(positions + count)
                    offset += 2 * count
                    income_targets[race].append(trial * num_users + lo + indices)
                repayment_positions.append(
                    np.arange(block_base + 2 * size, block_base + 3 * size)
                )
        self._race_layout: List[Tuple[Race, np.ndarray, np.ndarray, np.ndarray]] = [
            (
                race,
                np.concatenate(bracket_positions[race]),
                np.concatenate(width_positions[race]),
                np.concatenate(income_targets[race]),
            )
            for race in races
            if bracket_positions[race]
        ]
        self._repayment_positions = np.concatenate(repayment_positions)

    def _resolve_fast_stack(self) -> Dict[str, object] | None:
        """Detect the default decision stack, or ``None`` for the generic path.

        The fused decide/retrain fast path replicates, bit for bit, what
        :class:`~repro.core.ai_system.CreditScoringSystem` wrapping a plain
        :class:`~repro.credit.lender.Lender` does with the default feature
        builder and cut-off policy.  Exact types only — a subclass
        overriding any piece sends the whole run down the generic per-trial
        ``decide``/``update`` calls, which are always correct.
        """
        cutoffs = []
        for system in self._ai_systems:
            if type(system) is not CreditScoringSystem:
                return None
            lender = system.lender
            if type(lender) is not Lender:
                return None
            if type(lender.feature_builder) is not FeatureBuilder:
                return None
            policy = lender._cutoff_policy
            if type(policy) is not CutoffPolicy or policy.approve_on_tie:
                return None
            cutoffs.append(policy.cutoff)
        thresholds = {
            system.lender.feature_builder.income_threshold
            for system in self._ai_systems
        }
        if len(thresholds) != 1:
            return None
        return {
            "lenders": [system.lender for system in self._ai_systems],
            "income_threshold": thresholds.pop(),
            "cutoff_column": np.asarray(cutoffs, dtype=float)[:, None],
            # With every lender in compressed mode the step's training rows
            # pack into suffstats keys in one fused pass over the whole
            # (trials, users) block; each trial then refits from its own
            # count table through the public sharded-retraining entry point.
            "compressed_retrain": all(
                system.lender.retrain_mode == "compressed"
                for system in self._ai_systems
            ),
        }

    @property
    def populations(self) -> Sequence[CreditPopulation]:
        """Return the per-trial populations, in trial order."""
        return tuple(self._populations)

    @property
    def ai_systems(self) -> Sequence[AISystem]:
        """Return the per-trial AI systems, in trial order."""
        return tuple(self._ai_systems)

    def _draw_step(
        self,
        k: int,
        year: int,
        buffer: np.ndarray,
        incomes: np.ndarray,
        repayment_uniforms: np.ndarray,
    ) -> None:
        """Draw every trial's incomes and repayment uniforms for step ``k``.

        One bulk ``random(3 * shard_size)`` call per ``(trial, shard)``
        covers the serial path's entire generator consumption for the step
        — bracket uniforms and in-bracket uniforms per race segment
        (``begin_step``), then the repayment uniforms (``respond``) — in
        the identical stream order.  The blocks land in the flat draw
        buffer, from which the precomputed layout maps all trials' and
        shards' draws with one bracket search and scatter per race.
        """
        sampler = self._sampler
        bounds = self._plan.bounds
        for trial in range(len(self._trial_seeds)):
            row = buffer[trial]
            seeds = self._shard_seeds[trial]
            for shard, (lo, hi) in enumerate(bounds):
                step_generator(seeds[shard], k).random(out=row[3 * lo : 3 * hi])
        flat = buffer.reshape(-1)
        income_slots = incomes.reshape(-1)
        for race, bracket_idx, width_idx, target_idx in self._race_layout:
            income_slots[target_idx] = sampler.incomes_from_uniforms(
                year, race, flat[bracket_idx], flat[width_idx]
            )
        np.take(flat, self._repayment_positions, out=repayment_uniforms.reshape(-1))

    def _decide_batch(
        self,
        k: int,
        incomes: np.ndarray,
        rates_before: np.ndarray,
        decisions: np.ndarray,
    ) -> bool:
        """Fused decision round for the default stack; ``False`` to fall back.

        Replicates ``T`` :meth:`~repro.credit.lender.Lender.decide` calls
        in one broadcastful pass: during warm-up everyone is approved and
        scores are ``nan``; afterwards each trial's two-factor scorecard is
        an affine map of the (income code, clipped previous rate) columns,
        evaluated with per-trial coefficients broadcast down the trial
        axis — the identical ``full → += points * column`` operation order
        of :meth:`~repro.scoring.scorecard.Scorecard.score_matrix`.  Every
        lender's round counter and last-scores cache advance exactly as in
        the serial call.
        """
        stack = self._fast_stack
        lenders: List[Lender] = stack["lenders"]
        warm_flags = {lender.in_warm_up for lender in lenders}
        if len(warm_flags) != 1:
            return False  # rounds diverged (custom factory): generic path
        num_trials = len(lenders)
        if warm_flags.pop():
            decisions[:] = 1.0
            scores = None
        else:
            bases = np.empty(num_trials)
            income_points = np.empty(num_trials)
            rate_points = np.empty(num_trials)
            for trial, lender in enumerate(lenders):
                card = lender.scorecard
                if card is None:
                    return False  # serial decide raises; let it
                factors = card.factors
                if (
                    len(factors) != 2
                    or factors[0].name != "income_code"
                    or factors[1].name != "average_default_rate"
                    or factors[0].transform is not None
                    or factors[1].transform is not None
                ):
                    return False
                bases[trial] = card.base_score
                income_points[trial] = factors[0].points
                rate_points[trial] = factors[1].points
            codes = (incomes >= stack["income_threshold"]).astype(float)
            clipped_rates = clipped_default_rates(rates_before)
            scores = bases[:, None] + income_points[:, None] * codes
            scores += rate_points[:, None] * clipped_rates
            decisions[:] = (scores > stack["cutoff_column"]).astype(float)
        for trial, lender in enumerate(lenders):
            lender._rounds_seen += 1
            self._ai_systems[trial]._last_scores = (
                np.full(self._config.num_users, np.nan)
                if scores is None
                else scores[trial]
            )
        return True

    def run(self) -> List[TrialOutcome]:
        """Execute every trial in lockstep and return the per-trial outcomes."""
        config = self._config
        num_trials = config.num_trials
        num_users = config.num_users
        num_steps = config.num_steps
        full_mode = self._history_mode == "full"
        histories: List[SimulationHistory] = []
        aggregate: BatchedStreamingAggregator | None = None
        if full_mode:
            histories = [SimulationHistory() for _ in range(num_trials)]
        else:
            aggregate = BatchedStreamingAggregator(
                num_trials,
                num_users,
                [population.groups for population in self._populations],
            )
        batched_filter = BatchedDefaultRateFilter(num_trials, num_users)
        draw_buffer = np.empty((num_trials, 3 * num_users), dtype=float)
        incomes = np.empty((num_trials, num_users), dtype=float)
        repayment_uniforms = np.empty((num_trials, num_users), dtype=float)
        decisions = np.empty((num_trials, num_users), dtype=float)
        actions_cum = np.zeros((num_trials, num_users), dtype=float)
        # The observation entering a step is the filter state left by the
        # previous step; the serial path recomputes it from the unchanged
        # tracker, so carrying the arrays forward changes no bits.
        rates_before = batched_filter.user_rates()
        portfolio_before = batched_filter.portfolio_rates()
        affordability = incomes  # placeholder for the num_steps == 0 edge
        for k in range(num_steps):
            year = config.start_year + k
            self._draw_step(k, year, draw_buffer, incomes, repayment_uniforms)
            affordability = affordability_state(incomes, self._terms)
            fast = self._fast_stack is not None and self._decide_batch(
                k, incomes, rates_before, decisions
            )
            step_features: List[Dict[str, np.ndarray]] = []
            step_observations: List[Dict[str, np.ndarray | float]] = []
            if not fast:
                for trial in range(num_trials):
                    # Fresh per-trial dicts with private copies, exactly
                    # the objects the serial loop hands its AI system
                    # (begin_step copies the incomes; the filter copies
                    # its rates).
                    features = {"income": incomes[trial].copy()}
                    observation: Dict[str, np.ndarray | float] = {
                        "user_default_rates": rates_before[trial].copy(),
                        "portfolio_rate": float(portfolio_before[trial]),
                    }
                    decisions_row = np.asarray(
                        self._ai_systems[trial].decide(features, observation, k),
                        dtype=float,
                    ).ravel()
                    if decisions_row.shape[0] != num_users:
                        raise ValueError(
                            "the AI system must return one decision per user "
                            f"({decisions_row.shape[0]} != {num_users})"
                        )
                    if np.any((decisions_row != 0.0) & (decisions_row != 1.0)):
                        # The serial filter truncates fractional decisions
                        # to integers before counting offers, giving them
                        # quirky implicit semantics; rather than silently
                        # diverging from that corner, the batched engine
                        # insists on the credit loop's 0/1 contract.
                        raise ValueError(
                            "trial-batched execution requires 0/1 decisions; "
                            "the AI system returned other values (run "
                            "without trial_batch for non-binary decisions)"
                        )
                    decisions[trial] = decisions_row
                    step_features.append(features)
                    step_observations.append(observation)
            probabilities = self._model.repayment_probability(affordability)
            actions = (
                (repayment_uniforms < probabilities) & (decisions != 0.0)
            ).astype(float)
            if fast:
                # The delayed-feedback retrain on the stacked rows — what
                # CreditScoringSystem.update does, minus the dict and copy
                # ceremony (the lender never mutates its inputs).  Under
                # retrain_mode="compressed" these are T tiny independent
                # O(unique rows) refits per step.
                lenders: List[Lender] = self._fast_stack["lenders"]
                if self._fast_stack["compressed_retrain"]:
                    # One fused pass packs every trial's (code, rate,
                    # label) rows — the same key layout the per-trial
                    # Lender._retrain_compressed builds — then each trial
                    # deduplicates its offered rows and refits through
                    # retrain_from_suffstats (identical degenerate-mask
                    # handling included).
                    keys = pack_rows(
                        incomes >= self._fast_stack["income_threshold"],
                        clipped_default_rates(rates_before),
                        actions,
                    )
                    offered_mask = decisions == 1.0
                    for trial in range(num_trials):
                        lenders[trial].retrain_from_suffstats(
                            CompressedDesign.from_key_array(
                                keys[trial][offered_mask[trial]]
                            )
                        )
                else:
                    for trial in range(num_trials):
                        lenders[trial].retrain(
                            incomes[trial],
                            rates_before[trial],
                            actions[trial],
                            offered=decisions[trial],
                        )
            else:
                for trial in range(num_trials):
                    # The delayed-feedback retrain, exactly the serial call.
                    self._ai_systems[trial].update(
                        step_features[trial],
                        decisions[trial],
                        actions[trial],
                        step_observations[trial],
                        k,
                    )
            batched_filter.update(decisions, actions)
            rates_after = batched_filter.user_rates()
            portfolio_after = batched_filter.portfolio_rates()
            if full_mode:
                actions_cum += actions
                running_actions = actions_cum / float(k + 1)
                for trial in range(num_trials):
                    histories[trial].record_step_precomputed(
                        k,
                        # The history copies rows into its columns, so the
                        # fast path hands it bare views; the generic path
                        # reuses the dicts the AI systems saw (as the
                        # serial loop does).
                        step_features[trial]
                        if step_features
                        else {"income": incomes[trial]},
                        decisions[trial],
                        actions[trial],
                        {
                            "user_default_rates": rates_after[trial],
                            "portfolio_rate": float(portfolio_after[trial]),
                        },
                        running_rates=rates_after[trial],
                        running_actions=running_actions[trial],
                        approval=float(np.mean(decisions[trial])),
                    )
            else:
                assert aggregate is not None
                aggregate.update(decisions, actions)
            rates_before = rates_after
            portfolio_before = portfolio_after
        outcomes: List[TrialOutcome] = []
        for trial in range(num_trials):
            population = self._populations[trial]
            if num_steps > 0:
                # Leave the population holding its final step state, as a
                # serial trial would.
                population.import_shard_state(
                    0,
                    {
                        "incomes": incomes[trial],
                        "affordability": affordability[trial],
                    },
                )
            if full_mode:
                history: SimulationHistory | AggregateHistory = histories[trial]
            else:
                assert aggregate is not None
                history = AggregateHistory.from_aggregator(
                    aggregate.aggregator(trial)
                )
            outcomes.append((history, population))
        return outcomes


def run_trials_batched(
    config: CaseStudyConfig,
    policy_factory,
    terms: MortgageTerms | None = None,
    income_table: IncomeTable | None = None,
    history_mode: str = "full",
) -> List[TrialOutcome]:
    """Run every trial of ``config`` in lockstep; see :class:`BatchedTrialRunner`."""
    runner = BatchedTrialRunner(
        config,
        policy_factory,
        terms=terms,
        income_table=income_table,
        history_mode=history_mode,
    )
    return runner.run()
