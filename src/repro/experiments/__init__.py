"""Experiment harness: regenerate every table and figure of the paper.

Each module reproduces one artefact of the evaluation section (see
``DESIGN.md`` for the experiment index):

* :mod:`repro.experiments.table1_scorecard` — Table I.
* :mod:`repro.experiments.fig2_income` — Figure 2 (income by race, 2020).
* :mod:`repro.experiments.fig3_race_adr` — Figure 3 (race-wise ADR, 5 trials).
* :mod:`repro.experiments.fig4_user_adr` — Figure 4 (user-wise ADR curves).
* :mod:`repro.experiments.fig5_density` — Figure 5 (ADR density over time).
* :mod:`repro.experiments.ablations` — the policy and ergodicity ablations.

:mod:`repro.experiments.runner` runs the underlying multi-trial simulation
once and every figure module can consume the shared
:class:`~repro.experiments.runner.ExperimentResult`, so the whole evaluation
costs a single pass.
"""

from repro.experiments.batch import BatchedTrialRunner
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import ExperimentResult, TrialResult, run_experiment, run_trial
from repro.experiments.table1_scorecard import Table1Result, table1_scorecard_result
from repro.experiments.fig2_income import Fig2Result, fig2_income_distribution
from repro.experiments.fig3_race_adr import Fig3Result, fig3_race_adr
from repro.experiments.fig4_user_adr import Fig4Result, fig4_user_adr
from repro.experiments.fig5_density import Fig5Result, fig5_density
from repro.experiments.ablations import (
    BaselineComparisonResult,
    ErgodicityAblationResult,
    baseline_comparison,
    ergodicity_ablation,
)
from repro.experiments.extensions import (
    DriftComparisonResult,
    SteeringComparisonResult,
    drift_comparison,
    steering_comparison,
)

__all__ = [
    "BatchedTrialRunner",
    "CaseStudyConfig",
    "TrialResult",
    "ExperimentResult",
    "run_trial",
    "run_experiment",
    "Table1Result",
    "table1_scorecard_result",
    "Fig2Result",
    "fig2_income_distribution",
    "Fig3Result",
    "fig3_race_adr",
    "Fig4Result",
    "fig4_user_adr",
    "Fig5Result",
    "fig5_density",
    "BaselineComparisonResult",
    "ErgodicityAblationResult",
    "baseline_comparison",
    "ergodicity_ablation",
    "SteeringComparisonResult",
    "steering_comparison",
    "DriftComparisonResult",
    "drift_comparison",
]
