"""Experiment E-F2: the income distribution by race (Figure 2).

The paper's Figure 2 shows the 2020 bracket shares of Black, White and
Asian households.  The reproduction reads the same shares off the embedded
synthetic income table and reports the qualitative features the paper
highlights: a large share of Asian households above $200K and the bulk of
Black households below $75K.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.data.census import BRACKET_LABELS, IncomeTable, Race, default_income_table
from repro.experiments.reporting import format_distribution_table

__all__ = ["Fig2Result", "fig2_income_distribution"]


@dataclass(frozen=True)
class Fig2Result:
    """Reproduction of Figure 2.

    Attributes
    ----------
    year:
        The year the distribution describes (paper: 2020).
    bracket_labels:
        Labels of the nine income brackets.
    shares:
        Per race, the probability of each bracket.
    share_over_200k:
        Per race, the share of households above $200K.
    share_under_75k:
        Per race, the share of households below $75K.
    """

    year: int
    bracket_labels: Tuple[str, ...]
    shares: Dict[Race, np.ndarray]
    share_over_200k: Dict[Race, float]
    share_under_75k: Dict[Race, float]

    def summary(self) -> str:
        """Return the bracket shares as a plain-text table."""
        table = format_distribution_table(
            list(self.bracket_labels),
            {race.value: self.shares[race] for race in self.shares},
        )
        highlights = "\n".join(
            f"{race.value}: over $200K {self.share_over_200k[race] * 100:.1f}%, "
            f"under $75K {self.share_under_75k[race] * 100:.1f}%"
            for race in self.shares
        )
        return f"Income distribution, {self.year}\n{table}\n\n{highlights}"


def fig2_income_distribution(
    year: int = 2020, table: IncomeTable | None = None
) -> Fig2Result:
    """Reproduce Figure 2 for ``year`` from ``table`` (default: embedded table)."""
    income_table = table or default_income_table()
    shares: Dict[Race, np.ndarray] = {}
    over_200: Dict[Race, float] = {}
    under_75: Dict[Race, float] = {}
    for race in Race:
        distribution = income_table.distribution(year, race)
        vector = distribution.as_array()
        shares[race] = vector
        over_200[race] = distribution.share_above(200.0)
        # Brackets 0-4 cover "under 15" through "50-75".
        under_75[race] = float(vector[:5].sum())
    return Fig2Result(
        year=year,
        bracket_labels=BRACKET_LABELS,
        shares=shares,
        share_over_200k=over_200,
        share_under_75k=under_75,
    )
