"""Extension experiments: impact steering (E-X1) and concept drift (E-X2).

These go beyond the paper's evaluation section and exercise the library's
extension features:

* **E-X1 (steering)** — the conclusion of the paper asks how equality of
  impact could be *imposed*.  The experiment compares the plain retraining
  scorecard with the proportional equal-impact steering policy and with the
  epsilon-greedy exploration wrapper, reporting the final cross-race and
  cross-user default-rate gaps of each.
* **E-X2 (drift)** — the closed-loop view's motivation is that AI systems
  are retrained because the world drifts.  The experiment runs the
  retraining and the never-retrained scorecard on a recession scenario and
  reports how well each keeps its approval decisions aligned with actual
  repayment ability after the shock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.baselines.static_model import StaticCreditScoringSystem
from repro.control.exploration import EpsilonGreedyPolicy
from repro.control.steering import ImpactSteeringPolicy
from repro.core.ai_system import CreditScoringSystem
from repro.credit.lender import Lender
from repro.data.census import Race
from repro.data.scenarios import recession_scenario
from repro.experiments.config import CaseStudyConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.utils.stats import gini_coefficient

__all__ = [
    "SteeringComparisonResult",
    "steering_comparison",
    "DriftComparisonResult",
    "drift_comparison",
]


@dataclass(frozen=True)
class SteeringOutcome:
    """Summary of one policy arm in the steering experiment.

    Attributes
    ----------
    final_group_gap:
        Final cross-race gap of the mean ``ADR_s(k)``.
    final_user_gini:
        Gini coefficient of the final per-user default rates — an
        inequality summary of impact across individuals.
    mean_approval_rate:
        Average approval rate over all steps and trials.
    """

    final_group_gap: float
    final_user_gini: float
    mean_approval_rate: float


@dataclass(frozen=True)
class SteeringComparisonResult:
    """Result of the impact-steering experiment (E-X1)."""

    outcomes: Dict[str, SteeringOutcome]

    def summary(self) -> str:
        """Return the comparison as a plain-text table."""
        rows = [
            [name, outcome.final_group_gap, outcome.final_user_gini, outcome.mean_approval_rate]
            for name, outcome in self.outcomes.items()
        ]
        return format_table(
            ["policy", "final ADR gap (race)", "final ADR Gini (users)", "mean approval"],
            rows,
        )


def _steering_outcome(result: ExperimentResult) -> SteeringOutcome:
    mean_series = result.group_mean_series()
    final_rates = [float(series[-1]) for series in mean_series.values() if np.isfinite(series[-1])]
    group_gap = float(max(final_rates) - min(final_rates)) if len(final_rates) > 1 else 0.0
    final_user_rates = np.concatenate(
        [trial.require_user_default_rates()[-1] for trial in result.trials]
    )
    approvals = np.mean(
        [trial.history.approval_rates().mean() for trial in result.trials]
    )
    return SteeringOutcome(
        final_group_gap=group_gap,
        final_user_gini=gini_coefficient(final_user_rates) if final_user_rates.sum() > 0 else 0.0,
        mean_approval_rate=float(approvals),
    )


def steering_comparison(
    config: CaseStudyConfig | None = None,
    steering_gain: float = 5.0,
    epsilon: float = 0.1,
) -> SteeringComparisonResult:
    """Run the impact-steering experiment (E-X1)."""
    run_config = config or CaseStudyConfig()
    arms = {
        "plain retraining scorecard": run_experiment(
            run_config,
            policy_factory=lambda cfg, pop: CreditScoringSystem(
                Lender(cutoff=cfg.cutoff, warm_up_rounds=cfg.warm_up_rounds)
            ),
        ),
        "impact steering (proportional boost)": run_experiment(
            run_config,
            policy_factory=lambda cfg, pop: ImpactSteeringPolicy(
                gain=steering_gain,
                lender=Lender(cutoff=cfg.cutoff, warm_up_rounds=cfg.warm_up_rounds),
            ),
        ),
        "epsilon-greedy exploration": run_experiment(
            run_config,
            policy_factory=lambda cfg, pop: EpsilonGreedyPolicy(
                CreditScoringSystem(
                    Lender(cutoff=cfg.cutoff, warm_up_rounds=cfg.warm_up_rounds)
                ),
                epsilon=epsilon,
                seed=cfg.seed,
            ),
        ),
    }
    return SteeringComparisonResult(
        outcomes={name: _steering_outcome(result) for name, result in arms.items()}
    )


@dataclass(frozen=True)
class DriftOutcome:
    """Summary of one policy arm in the drift experiment.

    Attributes
    ----------
    post_shock_default_rate:
        Pooled default rate of the loans granted in the years after the
        shock (lower means the lender adapted its decisions to the drift).
    post_shock_approval_rate:
        Approval rate over the post-shock years.
    final_group_gap:
        Final cross-race gap of the mean ``ADR_s(k)``.
    """

    post_shock_default_rate: float
    post_shock_approval_rate: float
    final_group_gap: float


@dataclass(frozen=True)
class DriftComparisonResult:
    """Result of the concept-drift experiment (E-X2)."""

    outcomes: Dict[str, DriftOutcome]
    shock_years: tuple

    def summary(self) -> str:
        """Return the comparison as a plain-text table."""
        rows = [
            [
                name,
                outcome.post_shock_default_rate,
                outcome.post_shock_approval_rate,
                outcome.final_group_gap,
            ]
            for name, outcome in self.outcomes.items()
        ]
        return (
            f"Recession shock in {self.shock_years}\n"
            + format_table(
                ["policy", "post-shock default rate", "post-shock approval", "final ADR gap"],
                rows,
            )
        )


def _drift_outcome(result: ExperimentResult, first_post_shock_step: int) -> DriftOutcome:
    defaults = []
    offers = []
    approvals = []
    for trial in result.trials:
        decisions = trial.history.decisions_matrix()[first_post_shock_step:]
        actions = trial.history.actions_matrix()[first_post_shock_step:]
        offers.append(decisions.sum())
        defaults.append((decisions * (1.0 - actions)).sum())
        approvals.append(decisions.mean())
    total_offers = float(np.sum(offers))
    mean_series = result.group_mean_series()
    final_rates = [float(series[-1]) for series in mean_series.values() if np.isfinite(series[-1])]
    return DriftOutcome(
        post_shock_default_rate=float(np.sum(defaults) / total_offers) if total_offers else 0.0,
        post_shock_approval_rate=float(np.mean(approvals)),
        final_group_gap=float(max(final_rates) - min(final_rates)) if len(final_rates) > 1 else 0.0,
    )


def drift_comparison(
    config: CaseStudyConfig | None = None,
    shock_years: tuple = (2008, 2009),
    downshift: float = 0.35,
) -> DriftComparisonResult:
    """Run the concept-drift experiment (E-X2) on a recession scenario."""
    run_config = config or CaseStudyConfig()
    table = recession_scenario(shock_years=shock_years, downshift=downshift)
    first_post_shock_step = max(shock_years) - run_config.start_year + 1
    arms = {
        "retraining scorecard": run_experiment(
            run_config,
            policy_factory=lambda cfg, pop: CreditScoringSystem(
                Lender(cutoff=cfg.cutoff, warm_up_rounds=cfg.warm_up_rounds)
            ),
            income_table=table,
        ),
        "static scorecard (never retrained)": run_experiment(
            run_config,
            policy_factory=lambda cfg, pop: StaticCreditScoringSystem(
                Lender(cutoff=cfg.cutoff, warm_up_rounds=cfg.warm_up_rounds)
            ),
            income_table=table,
        ),
    }
    return DriftComparisonResult(
        outcomes={
            name: _drift_outcome(result, first_post_shock_step) for name, result in arms.items()
        },
        shock_years=tuple(shock_years),
    )
