"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that legacy editable installs (``pip install -e .``) work in offline
environments whose setuptools/pip combination cannot build PEP 660 editable
wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup()
