"""The paper's credit-scoring case study, end to end (Section VII).

Reproduces Table I and Figures 2-5 as plain-text tables: the scorecard, the
income distribution by race, the race-wise and user-wise average default
rates over 2002-2020, and the density of user-wise rates.

Run with::

    python examples/credit_scoring_case_study.py            # scaled-down (fast)
    python examples/credit_scoring_case_study.py --full     # the paper's N=1000, 5 trials
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    CaseStudyConfig,
    fig2_income_distribution,
    fig3_race_adr,
    fig4_user_adr,
    fig5_density,
    run_experiment,
    table1_scorecard_result,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper-scale experiment (1000 users, 5 trials) instead of the fast default",
    )
    arguments = parser.parse_args()

    if arguments.full:
        config = CaseStudyConfig()
    else:
        config = CaseStudyConfig(num_users=300, num_trials=3)

    print("=" * 72)
    print("Table I — the scorecard")
    print("=" * 72)
    table1 = table1_scorecard_result(config.scaled(num_users=min(config.num_users, 400), num_trials=1))
    print(table1.summary())

    print()
    print("=" * 72)
    print("Figure 2 — income distribution by race (2020)")
    print("=" * 72)
    print(fig2_income_distribution(2020).summary())

    # One shared simulation drives Figures 3-5.
    experiment = run_experiment(config)

    print()
    print("=" * 72)
    print(f"Figure 3 — race-wise ADR, {config.num_trials} trials of {config.num_users} users")
    print("=" * 72)
    print(fig3_race_adr(result=experiment).summary())

    print()
    print("=" * 72)
    print("Figure 4 — user-wise ADR dispersion")
    print("=" * 72)
    print(fig4_user_adr(result=experiment).summary())

    print()
    print("=" * 72)
    print("Figure 5 — density of user-wise ADR over time")
    print("=" * 72)
    print(fig5_density(result=experiment).summary())


if __name__ == "__main__":
    main()
