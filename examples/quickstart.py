"""Quickstart: run the closed loop once and assess equal treatment / impact.

This example builds the smallest interesting instance of the paper's
framework — a few hundred simulated households, the retraining scorecard
lender, the cumulative default-rate filter — runs the loop over 2002-2020,
and prints the two assessments the paper's definitions ask for.

It then reruns the same simulation through each engine variant in turn —
streaming aggregation, sharded execution, sufficient-statistics
retraining, the trial-batched sweep, a kill-and-resume demonstration of
the fault-tolerant checkpointing, the unified execution planner
(``execution="auto"``) that picks among all of the above by itself, and
finally a declarative scenario campaign swept twice through the
content-addressed result cache — showing at every step that the
trajectory stays bit-identical.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    ClosedLoop,
    CreditPopulation,
    CreditScoringSystem,
    DefaultRateFilter,
    equal_impact_assessment,
    equal_treatment_assessment,
    impact_gap_significance,
)
from repro.core.metrics import group_average_series
from repro.credit.lender import Lender
from repro.data import PopulationSpec, generate_population
from repro.data.census import Race


def main() -> None:
    num_users = 400
    num_years = 19  # 2002-2020

    # 1. Users: a synthetic population with the paper's race mix.
    population_spec = PopulationSpec(size=num_users)
    synthetic = generate_population(population_spec, rng=7)
    population = CreditPopulation(population=synthetic, start_year=2002)

    # 2. AI system: the retraining scorecard lender (cut-off 0.4, 2 warm-up years).
    ai_system = CreditScoringSystem(Lender(cutoff=0.4, warm_up_rounds=2))

    # 3. Filter: cumulative average default rates, the paper's training signal.
    loop_filter = DefaultRateFilter(num_users=num_users)

    # 4. Close the loop and run it.
    loop = ClosedLoop(ai_system=ai_system, population=population, loop_filter=loop_filter)
    history = loop.run(num_years, rng=7)

    # Equal treatment (Definition 1) over the warm-up years: everyone got the
    # same signal, so the assessment reports a uniform signal.
    treatment = equal_treatment_assessment(
        history.decisions_matrix()[:2], history.actions_matrix()[:2]
    )
    print("Warm-up years uniform signal:", treatment.uniform_signal)

    # Equal impact (Definition 4, conditioned on race) on the default rates.
    default_rates = history.running_default_rates()
    groups = population.groups
    impact = equal_impact_assessment(
        default_rates, groups=groups, tolerance=0.05, already_averaged=True
    )
    print("Long-run default rate per race:")
    for race, limit in impact.group_limits.items():
        print(f"  {race.value:<12} {limit:.4f}")
    print(f"Cross-race gap: {impact.max_group_gap:.4f} "
          f"({'within' if impact.satisfied else 'outside'} tolerance {impact.tolerance})")

    # The paper's Figure 3 quantity: race-wise ADR over the years.
    series = group_average_series(default_rates, groups)
    print("\nRace-wise average default rate, first/last simulated year:")
    for race in Race:
        values = series[race]
        print(f"  {race.value:<12} 2002: {values[0]:.3f}   2020: {values[-1]:.3f}")

    # Is the remaining cross-race gap larger than the simulation noise?
    significance = impact_gap_significance(history.actions_matrix(), groups, num_batches=4)
    print(
        f"\nLong-run repayment-rate gap {significance.gap:.4f} "
        f"(combined uncertainty {significance.gap_uncertainty:.4f}): "
        + ("significant" if significance.gap_is_significant else "within noise")
    )

    streaming_variant(series)


def streaming_variant(full_history_series) -> None:
    """The same simulation in bounded memory (``history_mode="aggregate"``).

    The streaming recorder never materialises a ``(steps, users)`` matrix:
    it folds each step into group-level running series.  Recording is
    passive, so the loop dynamics — and therefore the group series — are
    bit-identical to the full-history run above.  This is the mode to use
    when scaling ``num_users`` into the millions.
    """
    num_users = 400
    num_years = 19

    synthetic = generate_population(PopulationSpec(size=num_users), rng=7)
    population = CreditPopulation(population=synthetic, start_year=2002)
    loop = ClosedLoop(
        ai_system=CreditScoringSystem(Lender(cutoff=0.4, warm_up_rounds=2)),
        population=population,
        loop_filter=DefaultRateFilter(num_users=num_users),
    )
    history = loop.run(
        num_years, rng=7, history_mode="aggregate", groups=population.groups
    )

    print("\n-- streaming variant (history_mode='aggregate') --")
    series = history.group_default_rate_series()
    for race in Race:
        identical = bool(np.array_equal(series[race], full_history_series[race]))
        print(
            f"  {race.value:<12} 2002: {series[race][0]:.3f}   "
            f"2020: {series[race][-1]:.3f}   bit-identical to full history: {identical}"
        )
    try:
        history.decisions_matrix()
    except Exception as error:  # FullHistoryRequiredError: per-user rows were dropped
        print(f"  per-user accessors fail loudly: {type(error).__name__}")

    sharded_variant(series)


def sharded_variant(reference_series) -> None:
    """The same simulation with intra-trial sharded execution.

    The population is always partitioned into canonical user shards, each
    on its own derived random stream, so *how* the shards execute — all in
    this process, or grouped onto worker processes with
    ``shard_parallel=True`` — never changes a single bit of the
    trajectory.  On a multi-core machine the pooled layout divides the
    population phases (income draws, repayments, shard filters) across
    workers while the scorecard retrain stays central; here it is shown at
    toy scale purely for the bit-identity.
    """
    num_users = 400
    num_years = 19

    synthetic = generate_population(PopulationSpec(size=num_users), rng=7)
    population = CreditPopulation(population=synthetic, start_year=2002)
    loop = ClosedLoop(
        ai_system=CreditScoringSystem(Lender(cutoff=0.4, warm_up_rounds=2)),
        population=population,
        loop_filter=DefaultRateFilter(num_users=num_users),
    )
    history = loop.run(
        num_years,
        rng=7,
        history_mode="aggregate",
        groups=population.groups,
        num_shards=4,
        shard_parallel=True,
    )

    print("\n-- sharded variant (num_shards=4, shard_parallel=True) --")
    series = history.group_default_rate_series()
    for race in Race:
        identical = bool(np.array_equal(series[race], reference_series[race]))
        print(
            f"  {race.value:<12} bit-identical to the serial run: {identical}"
        )

    compressed_variant(reference_series)


def compressed_variant(reference_series) -> None:
    """The same simulation with sufficient-statistics retraining.

    The yearly logistic refit is the dominant phase at scale, but its
    training set is massively degenerate: the income code is binary, the
    previous average default rate is a ratio of small integer counts, and
    the label is binary.  ``retrain_mode="compressed"`` deduplicates the
    rows into a count table (exact sufficient statistics) so each refit
    costs O(unique rows) instead of O(users) — at 100k users the refit
    drops ~14x and the whole trial ~2.2x.  The compressed coefficients
    agree with the exact ones to solver tolerance, and at paper scale the
    decision vectors — and therefore the whole trajectory — are identical,
    as shown below.  (The bit-exact reproduction path stays the default:
    ``retrain_mode="exact"``.)
    """
    num_users = 400
    num_years = 19

    synthetic = generate_population(PopulationSpec(size=num_users), rng=7)
    population = CreditPopulation(population=synthetic, start_year=2002)
    loop = ClosedLoop(
        ai_system=CreditScoringSystem(
            Lender(cutoff=0.4, warm_up_rounds=2, retrain_mode="compressed")
        ),
        population=population,
        loop_filter=DefaultRateFilter(num_users=num_users),
    )
    history = loop.run(
        num_years, rng=7, history_mode="aggregate", groups=population.groups
    )

    print("\n-- compressed variant (retrain_mode='compressed') --")
    series = history.group_default_rate_series()
    for race in Race:
        identical = bool(np.array_equal(series[race], reference_series[race]))
        print(
            f"  {race.value:<12} identical trajectory to the exact refit: {identical}"
        )

    batched_sweep_variant()


def batched_sweep_variant() -> None:
    """A whole Monte-Carlo sweep in lockstep (``trial_batch=True``).

    The paper's figures average many seeded trials of the same loop.  The
    trial-batched engine stacks all of them into ``(trials, users)``
    tensors and advances them through one fused step loop — every trial
    still rides its own derived random streams and refits its own
    scorecard, so each batched trial is bit-identical to its serial
    ``run_trial`` twin (shown below).  On a single core this amortises the
    fixed per-step dispatch across the whole sweep (~2.3x on a 32-trial x
    1k-user sweep; see ``BENCH_core.json`` entry ``trial-batched-engine``),
    where process pools would only add IPC; with many real cores, prefer
    ``parallel=True`` trial pooling instead.
    """
    from repro.experiments import CaseStudyConfig, run_experiment

    config = CaseStudyConfig(num_users=300, num_trials=6)
    serial = run_experiment(config, retrain_mode="compressed")
    batched = run_experiment(config, retrain_mode="compressed", trial_batch=True)

    print("\n-- trial-batched sweep (trial_batch=True, 6 trials in lockstep) --")
    for index, (serial_trial, batched_trial) in enumerate(
        zip(serial.trials, batched.trials)
    ):
        identical = bool(
            np.array_equal(
                serial_trial.user_default_rates, batched_trial.user_default_rates
            )
        )
        print(f"  trial {index}: bit-identical to its serial twin: {identical}")
    gap = {
        race: float(batched.group_mean_series()[race][-1]) for race in Race
    }
    print(
        "  across-trial mean final ADR per race: "
        + "  ".join(f"{race.name}: {value:.3f}" for race, value in gap.items())
    )

    kill_and_resume_variant()


def kill_and_resume_variant() -> None:
    """Kill a run mid-flight, then resume it — bit-identically.

    With ``checkpoint_every`` set, each trial snapshots its full loop
    state (history, filter counts, scorecard state, random-stream base)
    crash-consistently every N steps, and each completed trial persists
    its result.  Here a child interpreter running the experiment is
    hard-killed partway through (a real ``os._exit``, the moral
    equivalent of an OOM kill); the parent then reruns the same command
    with ``resume=True``, which skips finished trials, restores the
    interrupted one from its latest intact snapshot, and — because the
    random streams are stateless per ``(trial, shard, step)`` — replays
    the exact bytes the uninterrupted run would have produced.  From the
    command line the same flow is
    ``python -m repro.cli fig3 --checkpoint-dir ckpt --checkpoint-every 5``
    rerun with ``--resume`` after the crash.
    """
    import os
    import subprocess
    import sys
    import tempfile

    from repro.experiments import CaseStudyConfig, run_experiment
    from repro.testing.faults import FaultSpec, plan_environment

    config = CaseStudyConfig(num_users=300, num_trials=3, seed=11)
    golden = run_experiment(config)

    print("\n-- kill-and-resume variant (checkpoint_every=5, resume=True) --")
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        # The victim: the same experiment, checkpointing, killed by an
        # injected fault at step 12 of trial 1 (the test-only harness in
        # repro.testing.faults delivers the kill through the environment).
        script = (
            "import sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.experiments import CaseStudyConfig, run_experiment\n"
            "run_experiment(\n"
            "    CaseStudyConfig(num_users=300, num_trials=3, seed=11),\n"
            "    checkpoint_dir=sys.argv[2], checkpoint_every=5,\n"
            ")\n"
        )
        environment = dict(os.environ)
        environment.update(
            plan_environment(
                [FaultSpec(site="loop_step", kind="kill", step=12)],
                state_dir=checkpoint_dir,
            )
        )
        source_root = os.path.join(os.path.dirname(__file__), "..", "src")
        victim = subprocess.run(
            [sys.executable, "-c", script, source_root, checkpoint_dir],
            env=environment,
        )
        survivors = sorted(
            name for name in os.listdir(checkpoint_dir) if name.endswith((".ckpt", ".result"))
        )
        print(f"  victim exit code: {victim.returncode} (killed mid-run)")
        print(f"  on disk at the crash: {', '.join(survivors)}")

        resumed = run_experiment(
            config, checkpoint_dir=checkpoint_dir, checkpoint_every=5, resume=True
        )
        for index, (golden_trial, resumed_trial) in enumerate(
            zip(golden.trials, resumed.trials)
        ):
            identical = bool(
                np.array_equal(
                    golden_trial.user_default_rates, resumed_trial.user_default_rates
                )
            )
            print(
                f"  trial {index}: resumed run bit-identical to uninterrupted: {identical}"
            )

    planner_variant()


def planner_variant() -> None:
    """One knob instead of three switches (``execution="auto"``).

    Every layout shown above — the serial loop, the trial-batched
    tensor engine, the trial pool, the shared-memory shard pool — is
    now composed behind the unified execution planner.
    ``execution="auto"`` inspects the host's core count and the
    workload shape (trials, users, steps, history/retrain mode,
    checkpoint knobs), picks the layout itself, and can compose two of
    them (pooled trials x sharded users) when spare cores justify it.
    The knob is purely a wall-clock choice: whatever plan the planner
    picks — on whatever machine — the trajectory is bit-identical to
    the serial reference, so a config carrying ``execution="auto"`` is
    safe to share between a laptop, a 64-core box and a CI runner.
    """
    from repro.core.planner import plan_execution
    from repro.experiments import CaseStudyConfig, run_experiment

    config = CaseStudyConfig(num_users=300, num_trials=4, execution="auto")
    plan = plan_execution(
        "auto",
        trials=config.num_trials,
        users=config.num_users,
        steps=config.num_steps,
    )
    serial = run_experiment(CaseStudyConfig(num_users=300, num_trials=4))
    auto = run_experiment(config)  # the config knob routes through the planner

    print("\n-- unified planner variant (execution='auto') --")
    print(f"  plan on this host: {plan.describe()}")
    for index, (serial_trial, auto_trial) in enumerate(
        zip(serial.trials, auto.trials)
    ):
        identical = bool(
            np.array_equal(
                serial_trial.user_default_rates, auto_trial.user_default_rates
            )
        )
        print(f"  trial {index}: bit-identical to the serial reference: {identical}")

    campaign_variant()


def campaign_variant() -> None:
    """A declarative scenario grid through the result cache.

    The paper's figures are grids: scenario x policy x seed, averaged and
    plotted.  ``repro.campaign`` declares such a grid once
    (:class:`CampaignSpec`), expands it into jobs, and sweeps the misses
    through the planner with the host's cores split *across* jobs — whole
    experiments are embarrassingly parallel, so job-level concurrency
    beats giving each job the full machine.  Every finished job is
    published to a content-addressed cache under a key that digests only
    the trajectory-defining fields (never the execution layout — layouts
    are bit-identical), so re-running the sweep after editing a plotting
    script, adding a seed, or moving to a machine with a different core
    count recomputes only what is genuinely new.  From the command line:
    ``python -m repro.cli campaign --spec grid.toml``.
    """
    import tempfile
    import time

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="quickstart",
        scenarios=("baseline", "recession"),
        policies=("retraining", "static"),
        population_sizes=(200,),
        seeds=(1, 2),
        num_trials=2,
        start_year=2002,
        end_year=2008,
    )
    print("\n-- campaign variant (declarative grid + result cache) --")
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        cold = run_campaign(spec, cache_dir)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_campaign(spec, cache_dir)
        warm_seconds = time.perf_counter() - start
    print(f"  grid: {spec.grid_size} jobs ({cold.budget.describe()})")
    print(
        f"  cold sweep: {cold_seconds:.2f}s ({cold.misses} computed), "
        f"warm sweep: {warm_seconds:.3f}s ({warm.hits} cache hits, "
        f"{cold_seconds / max(warm_seconds, 1e-9):.0f}x faster)"
    )
    for before, after in zip(cold.outcomes, warm.outcomes):
        identical = all(
            bool(
                np.array_equal(
                    before.series.group_default_rates[race],
                    after.series.group_default_rates[race],
                    equal_nan=True,
                )
            )
            for race in Race
        )
        print(
            f"  {after.job.job_id}: cached series bit-identical: {identical}"
        )


if __name__ == "__main__":
    main()
