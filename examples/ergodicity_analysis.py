"""Ergodicity analysis: when does a closed loop guarantee equal impact?

The paper (Section VI) ties equal impact to the unique ergodicity of the
Markov system induced by the loop.  This example walks through the
machinery on three small systems:

1. a contractive iterated function system — uniquely ergodic, orbits forget
   their initial condition, time averages converge to the same limit;
2. a two-cell Markov system modelling "good standing" vs "locked out"
   borrowers — uniquely ergodic as long as rehabilitation is possible;
3. an integral-action (accumulating) loop — the ergodicity-breaking case.

Run with::

    python examples/ergodicity_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.markov import (
    AffineMap,
    FunctionMap,
    IteratedFunctionSystem,
    MarkovEdge,
    MarkovSystem,
    check_ergodicity,
    coupling_distance_profile,
    coupling_time,
    mixing_time_upper_bound,
    spectral_diagnostics,
    stationary_distribution,
    transition_matrix,
    unique_ergodicity_diagnostic,
)
from repro.experiments import ergodicity_ablation


def contractive_ifs_demo() -> None:
    print("1. Contractive IFS: x -> x/2 or x/2 + 1/2, equal probabilities")
    ifs = IteratedFunctionSystem(
        maps=[AffineMap.scalar(0.5, 0.0), AffineMap.scalar(0.5, 0.5)],
        probabilities=[0.5, 0.5],
    )
    diagnostic = unique_ergodicity_diagnostic(
        simulate_orbit=lambda x0, length, generator: ifs.orbit(x0, length, generator),
        initial_states=[np.array([-25.0]), np.array([25.0])],
        orbit_length=3000,
        rng=1,
    )
    print(f"   max Wasserstein distance across initial conditions: "
          f"{diagnostic.max_distance:.4f}  "
          f"(uniquely ergodic: {diagnostic.consistent_with_unique_ergodicity})")
    profile = coupling_distance_profile(
        lambda state, generator: ifs.step(state, generator)[0],
        np.array([-25.0]),
        np.array([25.0]),
        horizon=80,
        rng=2,
    )
    print(f"   synchronous coupling time (distance < 1e-9): {coupling_time(profile, 1e-9)}")


def credit_markov_demo() -> None:
    print("\n2. Credit Markov system: good standing vs locked out")
    stay_good = FunctionMap(lambda x: np.array([0.0]), name="stay good")
    lock = FunctionMap(lambda x: np.array([1.0]), name="lock out")
    rehabilitate = FunctionMap(lambda x: np.array([0.0]), name="rehabilitate")
    stay_locked = FunctionMap(lambda x: np.array([1.0]), name="stay locked")
    system = MarkovSystem(
        num_vertices=2,
        edges=[
            MarkovEdge(0, 0, stay_good, 0.9),
            MarkovEdge(0, 1, lock, 0.1),
            MarkovEdge(1, 0, rehabilitate, 0.5),
            MarkovEdge(1, 1, stay_locked, 0.5),
        ],
        vertex_of_state=lambda state: int(round(float(state[0]))),
    )
    report = check_ergodicity(system, estimate_contraction=False)
    print("   " + report.summary().replace("\n", "\n   "))
    matrix = transition_matrix([np.array([0.0]), np.array([1.0])], system)
    pi = stationary_distribution(matrix)
    print(f"   stationary shares: good standing {pi[0]:.3f}, locked out {pi[1]:.3f}")
    diagnostics = spectral_diagnostics(matrix)
    print(
        f"   spectral gap {diagnostics.spectral_gap:.3f} "
        f"(relaxation time {diagnostics.relaxation_time:.1f} steps, "
        f"mixing-time bound {mixing_time_upper_bound(matrix):.1f} steps)"
    )


def integral_action_demo() -> None:
    print("\n3. Integral action: the ergodicity-breaking loop (E-A2)")
    result = ergodicity_ablation(orbit_length=3000, seed=3)
    print("   " + result.summary().replace("\n", "\n   "))


def main() -> None:
    contractive_ifs_demo()
    credit_markov_demo()
    integral_action_demo()


if __name__ == "__main__":
    main()
