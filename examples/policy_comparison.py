"""Policy comparison: equal treatment vs equal impact (the introduction's example).

Runs the closed loop under four decision policies — the paper's retraining
scorecard, the uniform $50K limit ("the most equal treatment possible"), the
income-proportional approve-all policy, and a never-retrained scorecard —
and compares the long-run, race-wise average default rates each policy
produces.  The uniform limit treats everyone identically today but leaves
the largest long-run gap; the income-proportional loop narrows it.

Run with::

    python examples/policy_comparison.py            # scaled-down (fast)
    python examples/policy_comparison.py --full     # paper-scale populations
"""

from __future__ import annotations

import argparse

from repro.experiments import CaseStudyConfig, baseline_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="use the paper-scale configuration (slow)"
    )
    arguments = parser.parse_args()
    config = (
        CaseStudyConfig() if arguments.full else CaseStudyConfig(num_users=250, num_trials=2)
    )
    comparison = baseline_comparison(config)
    print(comparison.summary())
    print()
    print("Policies ranked from most to least equal impact (final ADR gap):")
    for rank, name in enumerate(comparison.equal_impact_ranking(), start=1):
        outcome = comparison.outcomes[name]
        print(f"  {rank}. {name}  (gap {outcome.final_gap:.4f})")


if __name__ == "__main__":
    main()
