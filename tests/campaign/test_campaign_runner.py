"""Campaign runner: cold/warm sweeps, layout-invariant hits, chaos resume."""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    ResultCache,
    expand_campaign,
    job_key,
    plan_campaign,
    run_campaign,
)
from repro.core.supervision import SupervisorPolicy
from repro.data.census import Race
from repro.testing.faults import FAULTS_ENV, FaultSpec, clear_plan, plan_environment

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

FAST_SUPERVISOR = SupervisorPolicy(backoff_base=0.01, backoff_max=0.05)


@pytest.fixture(autouse=True)
def _clean_fault_plans():
    clear_plan()
    yield
    os.environ.pop(FAULTS_ENV, None)
    clear_plan()


def _spec(**kwargs):
    defaults = dict(
        name="test",
        scenarios=("baseline",),
        policies=("retraining", "static"),
        population_sizes=(50,),
        seeds=(1, 2),
        num_trials=2,
        start_year=2002,
        end_year=2004,
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def _assert_series_equal(left, right):
    assert left.years == right.years
    for race in Race:
        assert np.array_equal(
            left.group_default_rates[race],
            right.group_default_rates[race],
            equal_nan=True,
        )
    assert np.array_equal(left.approval_rates, right.approval_rates)


class TestColdWarm:
    def test_cold_sweep_computes_then_warm_sweep_hits(self, tmp_path):
        spec = _spec()
        cold = run_campaign(spec, tmp_path, cpu_count=1)
        assert cold.hits == 0
        assert cold.misses == spec.grid_size
        assert cold.hit_rate == 0.0
        warm = run_campaign(spec, tmp_path, cpu_count=1)
        assert warm.hits == spec.grid_size
        assert warm.misses == 0
        assert warm.hit_rate == 1.0
        for before, after in zip(cold.outcomes, warm.outcomes):
            assert before.key == after.key
            _assert_series_equal(before.series, after.series)

    def test_outcomes_follow_job_order(self, tmp_path):
        spec = _spec()
        result = run_campaign(spec, tmp_path, cpu_count=1)
        jobs = expand_campaign(spec)
        assert [outcome.job.index for outcome in result.outcomes] == [
            job.index for job in jobs
        ]
        assert result.series_for(jobs[0].job_id) is result.outcomes[0].series
        with pytest.raises(KeyError, match="no job"):
            result.series_for("nope")

    def test_partial_cache_runs_only_misses(self, tmp_path):
        spec = _spec()
        jobs = expand_campaign(spec)
        # Pre-compute only the first job by sweeping a single-seed subgrid.
        sub = _spec(seeds=(1,), policies=("retraining",))
        run_campaign(sub, tmp_path, cpu_count=1)
        result = run_campaign(spec, tmp_path, cpu_count=1)
        assert result.hits == 1
        assert result.misses == len(jobs) - 1
        assert result.outcomes[0].cached is True

    def test_plan_reports_without_running(self, tmp_path):
        spec = _spec()
        plan = plan_campaign(spec, tmp_path, cpu_count=1)
        assert plan.num_cached == 0
        assert plan.num_pending == spec.grid_size
        assert "to run" in plan.describe()
        assert not os.listdir(tmp_path)  # planning computes nothing


class TestLayoutInvariance:
    def test_serial_entries_hit_under_pool_and_shard(self, tmp_path):
        serial = _spec(execution="serial")
        cold = run_campaign(serial, tmp_path, cpu_count=1)
        assert cold.misses == serial.grid_size
        for options in (
            dict(execution="pool", max_workers=2),
            dict(execution="shard", num_shards=2),
            dict(execution="batch"),
            dict(execution="auto", shard_transport="pickle"),
        ):
            warm = run_campaign(_spec(**options), tmp_path, cpu_count=2)
            assert warm.hit_rate == 1.0, options
            for before, after in zip(cold.outcomes, warm.outcomes):
                _assert_series_equal(before.series, after.series)

    def test_pooled_cold_sweep_matches_serial_golden(self, tmp_path):
        spec = _spec()
        pooled = run_campaign(spec, tmp_path / "pooled", cpu_count=2)
        assert pooled.budget.job_workers == 2
        assert pooled.misses == spec.grid_size
        golden = run_campaign(_spec(execution="serial"), tmp_path / "serial", cpu_count=1)
        for left, right in zip(pooled.outcomes, golden.outcomes):
            assert left.key == right.key
            _assert_series_equal(left.series, right.series)


class TestBudgetRouting:
    def test_jobs_split_the_host_not_each_greedily(self, tmp_path):
        spec = _spec()
        result = run_campaign(spec, tmp_path, cpu_count=3)
        # 4 pending jobs on 3 cores: 3 concurrent jobs x 1 core each —
        # each job plans against its slice, not the whole host.
        assert result.budget.job_workers == 3
        assert result.budget.cores_per_job == 1

    def test_max_workers_caps_job_concurrency(self, tmp_path):
        spec = _spec(max_workers=1)
        result = run_campaign(spec, tmp_path, cpu_count=8)
        assert result.budget.job_workers == 1
        assert result.budget.cores_per_job == 8


class TestSupervision:
    def test_killed_job_worker_is_retried_to_completion(self, tmp_path):
        spec = _spec()
        golden = run_campaign(spec, tmp_path / "golden", cpu_count=1)
        os.environ.update(
            plan_environment(
                [FaultSpec(site="campaign_job", kind="kill", trial=1, once=True)],
                state_dir=tmp_path / "state",
            )
        )
        with pytest.warns(RuntimeWarning, match="campaign job pool failure"):
            result = run_campaign(
                spec,
                tmp_path / "cache",
                cpu_count=2,
                supervisor=FAST_SUPERVISOR,
            )
        assert result.misses == spec.grid_size
        for left, right in zip(result.outcomes, golden.outcomes):
            _assert_series_equal(left.series, right.series)

    def test_persistently_raising_job_falls_back_in_process(self, tmp_path):
        # once=False: job 2 raises on *every* pooled attempt, so it burns
        # its retry budget and degrades to the in-process path — which
        # does not pass through the worker's fault hook and therefore
        # completes, surfacing the supervision contract: the sweep
        # finishes instead of crashing on a poisoned worker.
        spec = _spec()
        golden = run_campaign(spec, tmp_path / "golden", cpu_count=1)
        os.environ.update(
            plan_environment(
                [FaultSpec(site="campaign_job", kind="raise", trial=2, once=False)]
            )
        )
        with pytest.warns(RuntimeWarning, match="exhausted its retry budget"):
            result = run_campaign(
                spec,
                tmp_path / "cache",
                cpu_count=2,
                supervisor=SupervisorPolicy(
                    max_retries=1, backoff_base=0.01, backoff_max=0.05
                ),
            )
        assert result.misses == spec.grid_size
        for left, right in zip(result.outcomes, golden.outcomes):
            _assert_series_equal(left.series, right.series)
        cache = ResultCache(tmp_path / "cache")
        assert all(job_key(job) in cache for job in expand_campaign(spec))


class TestKillAndResume:
    def test_interrupted_sweep_resumes_without_rerunning(self, tmp_path):
        cache_dir = tmp_path / "cache"
        state_dir = tmp_path / "state"
        state_dir.mkdir()
        child = textwrap.dedent(
            f"""
            import os
            from repro.testing.faults import FaultSpec, plan_environment
            os.environ.update(
                plan_environment(
                    [FaultSpec(site="campaign_job", kind="kill", trial=2)],
                    state_dir={str(state_dir)!r},
                )
            )
            from repro.campaign import CampaignSpec, run_campaign
            spec = CampaignSpec(
                name="test",
                scenarios=("baseline",),
                policies=("retraining", "static"),
                population_sizes=(50,),
                seeds=(1, 2),
                num_trials=2,
                start_year=2002,
                end_year=2004,
            )
            run_campaign(spec, {str(cache_dir)!r}, cpu_count=1)
            """
        )
        env = {**os.environ, "PYTHONPATH": SRC_DIR}
        proc = subprocess.run(
            [sys.executable, "-c", child], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 86, proc.stderr  # KILL_EXIT_CODE
        # Jobs 0 and 1 completed and were published before the kill.
        assert len(os.listdir(cache_dir)) == 2
        spec = _spec()
        resumed = run_campaign(spec, cache_dir, cpu_count=1)
        assert resumed.hits == 2
        assert resumed.misses == 2
        golden = run_campaign(spec, tmp_path / "golden", cpu_count=1)
        for left, right in zip(resumed.outcomes, golden.outcomes):
            assert left.key == right.key
            _assert_series_equal(left.series, right.series)


class TestUnpicklableSpecs:
    def test_unpicklable_supervisor_falls_back_to_serial(self, tmp_path):
        # A locally-defined policy class cannot cross process boundaries;
        # the campaign silently runs in-process instead — same results.
        class LocalPolicy(SupervisorPolicy):
            pass

        spec = _spec()
        result = run_campaign(spec, tmp_path, cpu_count=2, supervisor=LocalPolicy())
        assert result.misses == spec.grid_size
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            warm = run_campaign(spec, tmp_path, cpu_count=2)
        assert warm.hit_rate == 1.0
