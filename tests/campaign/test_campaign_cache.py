"""Content-addressed cache: key semantics, round-trips, torn-entry chaos."""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.campaign.cache import CACHE_VERSION, CampaignJobSeries, ResultCache, job_key
from repro.campaign.spec import CampaignSpec, expand_campaign
from repro.core.checkpoint import write_checkpoint
from repro.data.census import Race
from repro.experiments.runner import run_experiment


def _single_job(**spec_kwargs):
    defaults = dict(
        population_sizes=(60,),
        seeds=(5,),
        num_trials=2,
        start_year=2002,
        end_year=2005,
    )
    defaults.update(spec_kwargs)
    (job,) = expand_campaign(CampaignSpec(**defaults))
    return job


@pytest.fixture(scope="module")
def job():
    return _single_job()


@pytest.fixture(scope="module")
def series(job):
    result = run_experiment(
        job.config,
        policy_factory=job.policy_factory(),
        income_table=job.income_table(),
    )
    return CampaignJobSeries.from_experiment(result)


class TestJobKey:
    def test_key_is_a_full_sha256_hexdigest(self, job):
        key = job_key(job)
        assert len(key) == 64
        assert key == job_key(job)  # deterministic

    def test_key_invariant_under_every_run_option(self, job):
        base = job_key(job)
        for options in (
            dict(execution="serial"),
            dict(execution="pool", max_workers=4),
            dict(execution="shard", num_shards=2),
            dict(execution="batch"),
            dict(shard_transport="pickle"),
            dict(shard_transport="shared", num_shards=8, max_workers=2),
        ):
            (twin,) = expand_campaign(
                CampaignSpec(
                    population_sizes=(60,),
                    seeds=(5,),
                    num_trials=2,
                    start_year=2002,
                    end_year=2005,
                    **options,
                )
            )
            assert job_key(twin) == base, options

    def test_key_sensitive_to_trajectory_fields(self, job):
        base = job_key(job)
        variants = [
            _single_job(seeds=(6,)),
            _single_job(population_sizes=(61,)),
            _single_job(num_trials=3),
            _single_job(end_year=2006),
            _single_job(start_year=2003),
            _single_job(retrain_modes=("compressed",)),
            _single_job(warm_start=True),
            _single_job(history_mode="full"),
            _single_job(policies=("static",)),
            _single_job(scenarios=("recession",)),
            _single_job(scenarios=({"name": "recession", "downshift": 0.2},)),
            _single_job(policies=({"name": "epsilon-greedy", "epsilon": 0.2},)),
        ]
        keys = [job_key(variant) for variant in variants]
        assert base not in keys
        assert len(set(keys)) == len(keys)


class TestCampaignJobSeries:
    def test_bit_identical_to_fresh_experiment(self, job, series):
        fresh = run_experiment(
            job.config,
            policy_factory=job.policy_factory(),
            income_table=job.income_table(),
        )
        for race in Race:
            stacked = np.stack(
                [trial.group_default_rates[race] for trial in fresh.trials]
            )
            assert np.array_equal(
                series.group_default_rates[race], stacked, equal_nan=True
            )
            # The cached mean is the experiment's mean, bit for bit.
            assert np.array_equal(
                series.group_mean_series()[race],
                fresh.group_mean_series()[race],
                equal_nan=True,
            )
            assert np.array_equal(
                series.group_std_series()[race],
                fresh.group_std_series()[race],
                equal_nan=True,
            )
        assert series.num_trials == len(fresh.trials)
        assert series.years == tuple(fresh.years)

    def test_requires_retained_trials(self, job):
        trimmed = run_experiment(
            job.config,
            policy_factory=job.policy_factory(),
            income_table=job.income_table(),
            keep_trials=False,
        )
        with pytest.raises(ValueError, match="keep_trials"):
            CampaignJobSeries.from_experiment(trimmed)


class TestResultCache:
    def test_round_trip(self, tmp_path, job, series):
        cache = ResultCache(tmp_path)
        key = job_key(job)
        assert key not in cache
        assert cache.load(key) is None
        cache.store(key, series)
        assert key in cache
        assert len(cache) == 1
        assert cache.total_bytes() > 0
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.years == series.years
        for race in Race:
            assert np.array_equal(
                loaded.group_default_rates[race],
                series.group_default_rates[race],
                equal_nan=True,
            )
        assert np.array_equal(loaded.approval_rates, series.approval_rates)

    def test_torn_entry_recomputes_with_warning(self, tmp_path, job, series):
        cache = ResultCache(tmp_path)
        key = job_key(job)
        path = cache.store(key, series)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # tear the file
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert cache.load(key) is None

    def test_garbage_entry_recomputes_with_warning(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        key = job_key(job)
        cache.path_for(key).write_bytes(os.urandom(64))
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert cache.load(key) is None

    def test_foreign_payload_never_hits(self, tmp_path, job):
        cache = ResultCache(tmp_path)
        key = job_key(job)
        # An intact checkpoint file that is not a campaign result.
        write_checkpoint(cache.path_for(key), {"kind": "trial_result"})
        with pytest.warns(RuntimeWarning, match="expected campaign payload"):
            assert cache.load(key) is None

    def test_entry_under_wrong_key_never_hits(self, tmp_path, job, series):
        cache = ResultCache(tmp_path)
        key = job_key(job)
        cache.store(key, series)
        other = _single_job(seeds=(6,))
        other_key = job_key(other)
        # Simulate a mis-filed entry: copy the valid file to the wrong key.
        cache.path_for(other_key).write_bytes(cache.path_for(key).read_bytes())
        with pytest.warns(RuntimeWarning, match="expected campaign payload"):
            assert cache.load(other_key) is None

    def test_version_skew_never_hits(self, tmp_path, job, series, monkeypatch):
        cache = ResultCache(tmp_path)
        key = job_key(job)
        cache.store(key, series)
        monkeypatch.setattr("repro.campaign.cache.CACHE_VERSION", CACHE_VERSION + 1)
        with pytest.warns(RuntimeWarning, match="expected campaign payload"):
            assert cache.load(key) is None

    def test_valid_entries_load_silently(self, tmp_path, job, series):
        cache = ResultCache(tmp_path)
        key = job_key(job)
        cache.store(key, series)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.load(key) is not None
