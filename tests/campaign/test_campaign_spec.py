"""Campaign spec validation, grid expansion, and TOML/JSON loading."""

from __future__ import annotations

import json
import pickle
import textwrap

import pytest

from repro.campaign.spec import (
    ArmRef,
    CampaignSpec,
    build_policy_factory,
    build_scenario_table,
    expand_campaign,
    load_campaign_spec,
    policy_names,
    scenario_names,
)
from repro.data.census import Race, default_income_table


class TestArmNormalization:
    def test_string_entries_become_refs(self):
        spec = CampaignSpec(scenarios=("baseline",), policies=("retraining",))
        assert spec.scenarios == (ArmRef("baseline"),)
        assert spec.policies == (ArmRef("retraining"),)

    def test_mapping_entries_canonicalise_params(self):
        spec = CampaignSpec(
            scenarios=({"name": "recession", "downshift": 0.2, "shock_years": [2008]},)
        )
        (scenario,) = spec.scenarios
        assert scenario.name == "recession"
        # Params are sorted and list values become tuples: one canonical repr.
        assert scenario.params == (("downshift", 0.2), ("shock_years", (2008,)))

    def test_unknown_scenario_lists_vocabulary(self):
        with pytest.raises(ValueError, match="known scenarios"):
            CampaignSpec(scenarios=("boom",))

    def test_unknown_policy_lists_vocabulary(self):
        with pytest.raises(ValueError, match="known policy"):
            CampaignSpec(policies=("perfect-lender",))

    def test_unknown_parameter_is_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            CampaignSpec(scenarios=({"name": "recession", "severity": 2},))

    def test_mapping_without_name_is_rejected(self):
        with pytest.raises(ValueError, match='"name"'):
            CampaignSpec(scenarios=({"downshift": 0.2},))

    def test_registries_are_published(self):
        assert "recession" in scenario_names()
        assert "retraining" in policy_names()


class TestSpecValidation:
    def test_empty_axes_are_rejected(self):
        with pytest.raises(ValueError, match="at least one scenario"):
            CampaignSpec(scenarios=())
        with pytest.raises(ValueError, match="non-empty"):
            CampaignSpec(seeds=())

    def test_bad_values_are_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            CampaignSpec(population_sizes=(0,))
        with pytest.raises(ValueError, match="num_trials"):
            CampaignSpec(num_trials=0)
        with pytest.raises(ValueError, match="history_mode"):
            CampaignSpec(history_mode="verbose")
        with pytest.raises(ValueError, match="retrain modes"):
            CampaignSpec(retrain_modes=("fast",))
        with pytest.raises(ValueError, match="execution"):
            CampaignSpec(execution="gpu")
        with pytest.raises(ValueError, match="shard_transport"):
            CampaignSpec(shard_transport="rpc")

    def test_grid_size_is_the_axis_product(self):
        spec = CampaignSpec(
            scenarios=("baseline", "recession"),
            policies=("retraining", "static", "uniform-limit"),
            population_sizes=(50, 100),
            seeds=(1, 2),
            retrain_modes=("exact", "compressed"),
        )
        assert spec.grid_size == 2 * 3 * 2 * 2 * 2


class TestExpansion:
    def test_expansion_is_deterministic_with_stable_indices(self):
        spec = CampaignSpec(
            scenarios=("baseline", "recession"),
            policies=("retraining", "static"),
            seeds=(1, 2),
            population_sizes=(50,),
            num_trials=2,
            start_year=2002,
            end_year=2004,
        )
        first = expand_campaign(spec)
        second = expand_campaign(spec)
        assert first == second
        assert [job.index for job in first] == list(range(spec.grid_size))
        assert len({job.job_id for job in first}) == len(first)

    def test_jobs_carry_the_grid_cell_config(self):
        spec = CampaignSpec(
            policies=("static",),
            seeds=(11,),
            population_sizes=(70,),
            num_trials=3,
            start_year=2002,
            end_year=2005,
            retrain_modes=("compressed",),
            warm_start=True,
        )
        (job,) = expand_campaign(spec)
        assert job.config.num_users == 70
        assert job.config.seed == 11
        assert job.config.num_trials == 3
        assert job.config.retrain_mode == "compressed"
        assert job.config.warm_start is True
        # Run options never leak into the job's config: the planner decides.
        assert job.config.execution is None
        assert job.config.parallel is False

    def test_jobs_and_factories_are_picklable(self):
        spec = CampaignSpec(policies=("parity", "epsilon-greedy"))
        for job in expand_campaign(spec):
            clone = pickle.loads(pickle.dumps(job))
            assert clone == job
            pickle.dumps(build_policy_factory(job.policy))


class TestScenarioTables:
    def test_baseline_means_default_table(self):
        assert build_scenario_table(ArmRef("baseline")) is None

    def test_recession_changes_the_table(self):
        table = build_scenario_table(ArmRef("recession"))
        assert table is not None
        base = default_income_table()
        assert not (
            table.bracket_shares(2008, Race.BLACK)
            == base.bracket_shares(2008, Race.BLACK)
        ).all()

    def test_widening_gap_accepts_race_names(self):
        ref = ArmRef("widening-gap", params=(("disadvantaged", "BLACK"),))
        assert build_scenario_table(ref) is not None
        bad = ArmRef("widening-gap", params=(("disadvantaged", "MARTIAN"),))
        with pytest.raises(ValueError, match="unknown race"):
            build_scenario_table(bad)


class TestLoading:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(
            textwrap.dedent(
                """
                name = "demo"
                scenarios = ["baseline", {name = "recession", downshift = 0.25}]
                policies = ["retraining"]
                population_sizes = [50]
                seeds = [1, 2]
                num_trials = 2
                start_year = 2002
                end_year = 2004

                [run]
                execution = "serial"
                shard_transport = "pickle"
                """
            )
        )
        spec = load_campaign_spec(path)
        assert spec.name == "demo"
        assert spec.grid_size == 4
        assert spec.execution == "serial"
        assert spec.shard_transport == "pickle"
        assert spec.scenarios[1].params == (("downshift", 0.25),)

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            json.dumps(
                {
                    "name": "demo-json",
                    "policies": ["static"],
                    "population_sizes": [40],
                    "seeds": [9],
                    "num_trials": 2,
                    "start_year": 2002,
                    "end_year": 2003,
                    "run": {"execution": "serial"},
                }
            )
        )
        spec = load_campaign_spec(path)
        assert spec.name == "demo-json"
        assert spec.policies == (ArmRef("static"),)
        assert spec.execution == "serial"

    def test_unknown_keys_are_actionable(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text('scenariios = ["baseline"]\n')
        with pytest.raises(ValueError, match="unknown spec key"):
            load_campaign_spec(path)
        path.write_text('[run]\nexecutor = "serial"\n')
        with pytest.raises(ValueError, match=r"unknown \[run\] key"):
            load_campaign_spec(path)

    def test_scalar_axis_is_rejected(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text('seeds = 7\n')
        with pytest.raises(ValueError, match="must be an array"):
            load_campaign_spec(path)

    def test_unsupported_suffix_is_rejected(self, tmp_path):
        path = tmp_path / "grid.yaml"
        path.write_text("name: demo\n")
        with pytest.raises(ValueError, match="TOML or JSON"):
            load_campaign_spec(path)
