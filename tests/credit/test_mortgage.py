"""Tests for repro.credit.mortgage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.credit.mortgage import MortgageTerms


class TestDefaults:
    def test_paper_values(self):
        terms = MortgageTerms()
        assert terms.income_multiple == pytest.approx(3.5)
        assert terms.annual_rate == pytest.approx(0.0216)
        assert terms.living_cost == pytest.approx(10.0)
        assert terms.fixed_principal is None


class TestProportionalPrincipal:
    def test_principal_scales_with_income(self):
        terms = MortgageTerms()
        assert terms.principal(50.0) == pytest.approx(175.0)

    def test_principal_accepts_arrays(self):
        terms = MortgageTerms()
        np.testing.assert_allclose(terms.principal(np.array([10.0, 20.0])), [35.0, 70.0])

    def test_annual_interest(self):
        terms = MortgageTerms()
        assert terms.annual_interest(50.0) == pytest.approx(175.0 * 0.0216)

    def test_annual_obligation_includes_living_cost(self):
        terms = MortgageTerms()
        assert terms.annual_obligation(50.0) == pytest.approx(10.0 + 175.0 * 0.0216)

    def test_negative_income_is_rejected(self):
        with pytest.raises(ValueError):
            MortgageTerms().principal(-1.0)


class TestFixedPrincipal:
    def test_principal_ignores_income(self):
        terms = MortgageTerms(fixed_principal=50.0)
        assert terms.principal(10.0) == pytest.approx(50.0)
        assert terms.principal(200.0) == pytest.approx(50.0)

    def test_fixed_principal_array_form(self):
        terms = MortgageTerms(fixed_principal=50.0)
        np.testing.assert_allclose(terms.principal(np.array([10.0, 200.0])), [50.0, 50.0])

    def test_fixed_obligation_is_constant(self):
        terms = MortgageTerms(fixed_principal=50.0)
        assert terms.annual_obligation(10.0) == pytest.approx(terms.annual_obligation(200.0))

    def test_rejects_non_positive_fixed_principal(self):
        with pytest.raises(ValueError):
            MortgageTerms(fixed_principal=0.0)


class TestValidation:
    def test_rejects_non_positive_income_multiple(self):
        with pytest.raises(ValueError):
            MortgageTerms(income_multiple=0.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            MortgageTerms(annual_rate=-0.01)

    def test_rejects_negative_living_cost(self):
        with pytest.raises(ValueError):
            MortgageTerms(living_cost=-5.0)
