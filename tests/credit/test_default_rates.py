"""Tests for repro.credit.default_rates (equation 12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.credit.default_rates import DefaultRateTracker
from repro.data.census import Race


class TestRecordingAndRates:
    def test_initial_rates_equal_the_prior(self):
        tracker = DefaultRateTracker(3, prior_rate=0.2)
        np.testing.assert_allclose(tracker.user_rates(), [0.2, 0.2, 0.2])

    def test_single_step_rates(self):
        tracker = DefaultRateTracker(3)
        tracker.record(decisions=[1, 1, 0], repayments=[1, 0, 0])
        np.testing.assert_allclose(tracker.user_rates(), [0.0, 1.0, 0.0])

    def test_rates_accumulate_over_steps(self):
        tracker = DefaultRateTracker(1)
        tracker.record([1], [1])
        tracker.record([1], [0])
        assert tracker.user_rates()[0] == pytest.approx(0.5)
        tracker.record([1], [0])
        assert tracker.user_rates()[0] == pytest.approx(2.0 / 3.0)

    def test_denied_steps_do_not_change_the_rate(self):
        tracker = DefaultRateTracker(1)
        tracker.record([1], [0])
        rate_before = tracker.user_rates()[0]
        tracker.record([0], [0])
        assert tracker.user_rates()[0] == pytest.approx(rate_before)

    def test_steps_recorded_counter(self):
        tracker = DefaultRateTracker(2)
        tracker.record([1, 1], [1, 1])
        tracker.record([1, 0], [0, 0])
        assert tracker.steps_recorded == 2

    def test_offers_and_repayments_accessors(self):
        tracker = DefaultRateTracker(2)
        tracker.record([1, 1], [1, 0])
        np.testing.assert_allclose(tracker.offers, [1, 1])
        np.testing.assert_allclose(tracker.repayments, [1, 0])


class TestGroupRates:
    def test_group_rates_average_member_rates(self):
        tracker = DefaultRateTracker(4)
        tracker.record([1, 1, 1, 1], [1, 0, 1, 1])
        groups = {Race.BLACK: np.array([0, 1]), Race.WHITE: np.array([2, 3])}
        rates = tracker.group_rates(groups)
        assert rates[Race.BLACK] == pytest.approx(0.5)
        assert rates[Race.WHITE] == pytest.approx(0.0)

    def test_empty_group_reports_nan(self):
        tracker = DefaultRateTracker(2)
        tracker.record([1, 1], [1, 1])
        rates = tracker.group_rates({Race.ASIAN: np.array([], dtype=int)})
        assert np.isnan(rates[Race.ASIAN])


class TestPortfolioRate:
    def test_pooled_rate(self):
        tracker = DefaultRateTracker(2)
        tracker.record([1, 1], [1, 0])
        assert tracker.portfolio_rate() == pytest.approx(0.5)

    def test_no_offers_reports_prior(self):
        tracker = DefaultRateTracker(2, prior_rate=0.3)
        assert tracker.portfolio_rate() == pytest.approx(0.3)


class TestValidation:
    def test_rejects_non_positive_population(self):
        with pytest.raises(ValueError):
            DefaultRateTracker(0)

    def test_rejects_bad_prior(self):
        with pytest.raises(ValueError):
            DefaultRateTracker(2, prior_rate=1.5)

    def test_rejects_wrong_length_inputs(self):
        tracker = DefaultRateTracker(3)
        with pytest.raises(ValueError):
            tracker.record([1, 1], [1, 1])

    def test_rejects_non_binary_inputs(self):
        tracker = DefaultRateTracker(2)
        with pytest.raises(ValueError):
            tracker.record([1, 2], [1, 0])

    def test_rejects_repayment_without_offer(self):
        tracker = DefaultRateTracker(2)
        with pytest.raises(ValueError):
            tracker.record([0, 1], [1, 1])
