"""Tests for repro.credit.repayment (equation 11)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import norm

from repro.credit.repayment import GaussianRepaymentModel


class TestRepaymentProbability:
    def test_matches_probit_formula(self):
        model = GaussianRepaymentModel(sensitivity=5.0)
        state = 0.3
        assert model.repayment_probability(state)[0] == pytest.approx(norm.cdf(5.0 * state))

    def test_non_positive_state_never_repays(self):
        model = GaussianRepaymentModel()
        np.testing.assert_allclose(model.repayment_probability([-0.5, 0.0]), [0.0, 0.0])

    def test_probability_is_monotone_in_the_state(self):
        model = GaussianRepaymentModel()
        probabilities = model.repayment_probability(np.linspace(0.01, 0.9, 20))
        assert np.all(np.diff(probabilities) > 0)

    def test_higher_sensitivity_sharpens_the_response(self):
        state = 0.2
        soft = GaussianRepaymentModel(sensitivity=1.0).repayment_probability(state)[0]
        sharp = GaussianRepaymentModel(sensitivity=10.0).repayment_probability(state)[0]
        assert sharp > soft

    def test_rejects_non_positive_sensitivity(self):
        with pytest.raises(ValueError):
            GaussianRepaymentModel(sensitivity=0.0)

    def test_ndtr_bit_identical_to_norm_cdf(self):
        # The hot path evaluates the probit through scipy.special.ndtr;
        # it must reproduce the retired scipy.stats.norm.cdf call bit for
        # bit across the whole realistic state range (plus extremes), or
        # every engine golden would shift.
        model = GaussianRepaymentModel(sensitivity=5.0)
        rng = np.random.default_rng(1234)
        states = np.concatenate(
            [
                rng.uniform(-2.0, 1.0, size=5000),
                np.array([-1e6, -50.0, -1e-12, 0.0, 1e-12, 0.5, 50.0, 1e6]),
            ]
        )
        reference = np.where(states <= 0.0, 0.0, norm.cdf(5.0 * states))
        np.testing.assert_array_equal(
            model.repayment_probability(states), reference
        )

    def test_probability_supports_batched_2d_states(self):
        # The trial-batched engine evaluates (trials, users) blocks in one
        # call; rows must equal the per-trial 1-D evaluations bitwise.
        model = GaussianRepaymentModel()
        states = np.random.default_rng(5).uniform(-1.0, 1.0, size=(3, 40))
        batched = model.repayment_probability(states)
        assert batched.shape == states.shape
        for row in range(states.shape[0]):
            np.testing.assert_array_equal(
                batched[row], model.repayment_probability(states[row])
            )


class TestSampleRepayments:
    def test_no_mortgage_means_no_repayment(self):
        model = GaussianRepaymentModel()
        repayments = model.sample_repayments([0.9, 0.9], [0, 1], rng=0)
        assert repayments[0] == 0

    def test_wealthy_users_almost_always_repay(self):
        model = GaussianRepaymentModel()
        repayments = model.sample_repayments(np.full(2000, 0.8), np.ones(2000), rng=1)
        assert repayments.mean() > 0.99

    def test_underwater_users_never_repay(self):
        model = GaussianRepaymentModel()
        repayments = model.sample_repayments(np.full(100, -0.2), np.ones(100), rng=2)
        assert repayments.sum() == 0

    def test_empirical_rate_matches_probability(self):
        model = GaussianRepaymentModel()
        state = 0.1
        expected = norm.cdf(5.0 * state)
        repayments = model.sample_repayments(np.full(20000, state), np.ones(20000), rng=3)
        assert repayments.mean() == pytest.approx(expected, abs=0.01)

    def test_reproducible_with_seed(self):
        model = GaussianRepaymentModel()
        a = model.sample_repayments(np.full(50, 0.1), np.ones(50), rng=9)
        b = model.sample_repayments(np.full(50, 0.1), np.ones(50), rng=9)
        np.testing.assert_array_equal(a, b)

    def test_misaligned_inputs_are_rejected(self):
        with pytest.raises(ValueError):
            GaussianRepaymentModel().sample_repayments([0.1, 0.2], [1])


class TestExpectedDefaultRate:
    def test_matches_one_minus_mean_probability(self):
        model = GaussianRepaymentModel()
        states = np.array([0.1, 0.3, -0.5])
        expected = 1.0 - model.repayment_probability(states).mean()
        assert model.expected_default_rate(states) == pytest.approx(expected)

    def test_rejects_empty_portfolio(self):
        with pytest.raises(ValueError):
            GaussianRepaymentModel().expected_default_rate([])
