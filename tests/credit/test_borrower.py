"""Tests for repro.credit.borrower (the affordability state of equation 10)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.credit.borrower import BorrowerState, affordability_state
from repro.credit.mortgage import MortgageTerms
from repro.data.census import Race


class TestAffordabilityState:
    def test_matches_equation_10(self):
        terms = MortgageTerms()
        income = 50.0
        expected = (income - 10.0 - 3.5 * 0.0216 * income) / income
        assert affordability_state(income, terms)[0] == pytest.approx(expected)

    def test_high_income_approaches_one_minus_rate_share(self):
        terms = MortgageTerms()
        state = affordability_state(10_000.0, terms)[0]
        assert state == pytest.approx(1.0 - 3.5 * 0.0216 - 10.0 / 10_000.0, abs=1e-9)

    def test_income_below_living_cost_gives_negative_state(self):
        terms = MortgageTerms()
        assert affordability_state(8.0, terms)[0] < 0

    def test_zero_income_gives_large_negative_state(self):
        terms = MortgageTerms()
        assert affordability_state(0.0, terms)[0] <= -1e5

    def test_vectorised_over_incomes(self):
        terms = MortgageTerms()
        states = affordability_state([20.0, 50.0, 100.0], terms)
        assert states.shape == (3,)
        assert np.all(np.diff(states) > 0)

    def test_fixed_principal_changes_the_breakeven_income(self):
        proportional = MortgageTerms()
        fixed = MortgageTerms(fixed_principal=50.0)
        income = 11.0
        # With a $50K loan the interest is 1.08, so obligations exceed income 11.
        assert affordability_state(income, fixed)[0] < affordability_state(income, proportional)[0]

    @given(st.floats(min_value=0.1, max_value=500.0))
    @settings(max_examples=50, deadline=None)
    def test_state_is_bounded_above_by_one(self, income):
        terms = MortgageTerms()
        assert affordability_state(income, terms)[0] < 1.0


class TestBorrowerState:
    def test_from_income_populates_affordability(self):
        terms = MortgageTerms()
        borrower = BorrowerState.from_income(3, Race.WHITE, 50.0, terms)
        assert borrower.user_index == 3
        assert borrower.race is Race.WHITE
        assert borrower.affordability == pytest.approx(affordability_state(50.0, terms)[0])

    def test_can_cover_obligation_flag(self):
        terms = MortgageTerms()
        wealthy = BorrowerState.from_income(0, Race.ASIAN, 100.0, terms)
        poor = BorrowerState.from_income(1, Race.BLACK, 5.0, terms)
        assert wealthy.can_cover_obligation
        assert not poor.can_cover_obligation
