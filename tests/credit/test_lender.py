"""Tests for repro.credit.lender (the retraining scorecard lender)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.credit.lender import Lender


def training_data(n: int = 400, seed: int = 0):
    """Synthetic yearly training data: richer and cleaner users repay more."""
    rng = np.random.default_rng(seed)
    incomes = rng.uniform(5.0, 120.0, size=n)
    previous_rates = rng.uniform(0.0, 0.6, size=n)
    repay_probability = 0.95 * (incomes >= 15.0) * (1.0 - previous_rates) + 0.02
    repayments = (rng.random(n) < repay_probability).astype(int)
    return incomes, previous_rates, repayments


class TestWarmUp:
    def test_warm_up_approves_everyone(self):
        lender = Lender(warm_up_rounds=2)
        decision = lender.decide(np.array([5.0, 50.0]), np.array([0.0, 0.0]))
        assert decision.warm_up
        np.testing.assert_array_equal(decision.decisions, [1, 1])
        assert np.all(np.isnan(decision.scores))

    def test_warm_up_lasts_the_configured_number_of_rounds(self):
        lender = Lender(warm_up_rounds=2)
        assert lender.in_warm_up
        lender.decide(np.array([10.0]), np.array([0.0]))
        assert lender.in_warm_up
        lender.decide(np.array([10.0]), np.array([0.0]))
        assert not lender.in_warm_up

    def test_deciding_after_warm_up_without_training_raises(self):
        lender = Lender(warm_up_rounds=0)
        with pytest.raises(RuntimeError):
            lender.decide(np.array([10.0]), np.array([0.0]))

    def test_negative_warm_up_is_rejected(self):
        with pytest.raises(ValueError):
            Lender(warm_up_rounds=-1)


class TestRetraining:
    def test_retraining_produces_a_scorecard_with_expected_signs(self):
        lender = Lender()
        incomes, previous_rates, repayments = training_data()
        card = lender.retrain(incomes, previous_rates, repayments)
        points = {factor.name: factor.points for factor in card.factors}
        assert points["income_code"] > 0
        assert points["average_default_rate"] < 0

    def test_scorecard_is_stored_on_the_lender(self):
        lender = Lender()
        incomes, previous_rates, repayments = training_data()
        card = lender.retrain(incomes, previous_rates, repayments)
        assert lender.scorecard is card

    def test_offered_mask_restricts_the_training_set(self):
        lender = Lender()
        incomes, previous_rates, repayments = training_data()
        offered = np.zeros_like(repayments)
        offered[:50] = 1
        card = lender.retrain(incomes, previous_rates, repayments, offered=offered)
        assert card is not None

    def test_tiny_offered_mask_without_a_card_is_rejected(self):
        """Regression: a mask selecting < 2 users with no prior scorecard
        used to fall through silently and train on the *unmasked*
        population — labels the lender never observed."""
        lender = Lender()
        incomes, previous_rates, repayments = training_data(50)
        offered = np.zeros_like(repayments)
        offered[0] = 1
        with pytest.raises(ValueError, match="fewer than 2 users"):
            lender.retrain(incomes, previous_rates, repayments, offered=offered)
        assert lender.scorecard is None  # nothing was trained on bogus labels

    def test_tiny_offered_mask_keeps_the_previous_card(self):
        lender = Lender()
        incomes, previous_rates, repayments = training_data(50)
        previous = lender.retrain(incomes, previous_rates, repayments)
        offered = np.zeros_like(repayments)
        card = lender.retrain(incomes, previous_rates, repayments, offered=offered)
        assert card is previous

    def test_wrong_length_offered_mask_is_rejected(self):
        lender = Lender()
        incomes, previous_rates, repayments = training_data(20)
        with pytest.raises(ValueError):
            lender.retrain(incomes, previous_rates, repayments, offered=[1, 0])


class TestCompressedRetraining:
    def test_invalid_retrain_mode_is_rejected(self):
        with pytest.raises(ValueError):
            Lender(retrain_mode="subsampled")

    def test_mode_and_warm_start_properties(self):
        lender = Lender(retrain_mode="compressed", warm_start=True)
        assert lender.retrain_mode == "compressed"
        assert lender.warm_start
        assert Lender().retrain_mode == "exact"
        assert not Lender().warm_start

    def test_compressed_coefficients_match_exact(self):
        incomes, previous_rates, repayments = training_data()
        # Quantise the rates so the compression actually collapses rows,
        # like the loop's small-integer default-rate ratios do.
        previous_rates = np.round(previous_rates * 10) / 10
        exact = Lender().retrain(incomes, previous_rates, repayments)
        compressed = Lender(retrain_mode="compressed").retrain(
            incomes, previous_rates, repayments
        )
        exact_points = {f.name: f.points for f in exact.factors}
        compressed_points = {f.name: f.points for f in compressed.factors}
        for name, value in exact_points.items():
            assert compressed_points[name] == pytest.approx(value, abs=1e-9)
        assert compressed.base_score == pytest.approx(exact.base_score, abs=1e-9)

    def test_compressed_respects_the_offered_mask(self):
        incomes, previous_rates, repayments = training_data()
        previous_rates = np.round(previous_rates * 10) / 10
        offered = (np.arange(incomes.size) % 2).astype(int)
        exact = Lender().retrain(
            incomes, previous_rates, repayments, offered=offered
        )
        compressed = Lender(retrain_mode="compressed").retrain(
            incomes, previous_rates, repayments, offered=offered
        )
        for left, right in zip(exact.factors, compressed.factors):
            assert right.points == pytest.approx(left.points, abs=1e-9)

    def test_retrain_from_suffstats_matches_direct_compressed(self):
        from repro.scoring.features import income_code
        from repro.scoring.suffstats import CompressedDesign

        incomes, previous_rates, repayments = training_data()
        previous_rates = np.round(previous_rates * 10) / 10
        direct = Lender(retrain_mode="compressed").retrain(
            incomes, previous_rates, repayments
        )
        table = CompressedDesign.from_arrays(
            income_code(incomes), previous_rates, repayments
        )
        via_table = Lender().retrain_from_suffstats(table)
        for left, right in zip(direct.factors, via_table.factors):
            assert right.points == left.points  # same table -> same fit, bit for bit
        assert via_table.base_score == direct.base_score

    def test_retrain_from_suffstats_degenerate_table(self):
        from repro.scoring.suffstats import CompressedDesign

        empty = CompressedDesign.from_arrays([], [], [])
        lender = Lender()
        with pytest.raises(ValueError, match="fewer than 2"):
            lender.retrain_from_suffstats(empty)
        incomes, previous_rates, repayments = training_data(50)
        previous = lender.retrain(incomes, previous_rates, repayments)
        assert lender.retrain_from_suffstats(empty) is previous

    def test_warm_start_converges_to_the_same_card(self):
        incomes, previous_rates, repayments = training_data()
        cold = Lender()
        warm = Lender(warm_start=True)
        for lender in (cold, warm):
            lender.retrain(incomes, previous_rates, repayments)
        # Second refit on shifted labels: warm starts from the first fit.
        shifted = 1 - repayments
        cold_card = cold.retrain(incomes, previous_rates, shifted)
        warm_card = warm.retrain(incomes, previous_rates, shifted)
        for left, right in zip(cold_card.factors, warm_card.factors):
            assert right.points == pytest.approx(left.points, abs=1e-6)


class TestDecisions:
    def test_trained_lender_prefers_low_risk_users(self):
        lender = Lender(cutoff=0.4, warm_up_rounds=0)
        incomes, previous_rates, repayments = training_data()
        lender.retrain(incomes, previous_rates, repayments)
        decision = lender.decide(
            np.array([100.0, 8.0]), np.array([0.0, 0.9])
        )
        assert not decision.warm_up
        assert decision.decisions[0] == 1
        assert decision.decisions[1] == 0
        assert decision.scores[0] > decision.scores[1]

    def test_approval_rate_property(self):
        lender = Lender(warm_up_rounds=1)
        decision = lender.decide(np.array([10.0, 20.0, 30.0]), np.zeros(3))
        assert decision.approval_rate == pytest.approx(1.0)

    def test_misaligned_inputs_are_rejected(self):
        lender = Lender(warm_up_rounds=1)
        with pytest.raises(ValueError):
            lender.decide(np.array([10.0, 20.0]), np.zeros(3))

    def test_rounds_seen_increments(self):
        lender = Lender(warm_up_rounds=2)
        lender.decide(np.array([10.0]), np.zeros(1))
        lender.decide(np.array([10.0]), np.zeros(1))
        assert lender.rounds_seen == 2

    def test_cutoff_property_matches_construction(self):
        assert Lender(cutoff=0.7).cutoff == pytest.approx(0.7)
