"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        arguments = build_parser().parse_args(["fig2"])
        assert arguments.command == "fig2"
        assert arguments.users == 300
        assert arguments.trials == 2
        assert not arguments.full

    def test_unknown_command_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_scale_flags_are_parsed(self):
        arguments = build_parser().parse_args(["--users", "50", "--trials", "1", "fig3"])
        assert arguments.users == 50
        assert arguments.trials == 1

    def test_retrain_mode_flags_are_parsed(self):
        arguments = build_parser().parse_args(["fig3"])
        assert arguments.retrain_mode == "exact"
        assert not arguments.warm_start
        arguments = build_parser().parse_args(
            ["--retrain-mode", "compressed", "--warm-start", "fig3"]
        )
        assert arguments.retrain_mode == "compressed"
        assert arguments.warm_start

    def test_invalid_retrain_mode_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--retrain-mode", "subsampled", "fig3"])

    def test_trial_batch_flag_is_parsed(self):
        assert not build_parser().parse_args(["fig3"]).trial_batch
        assert build_parser().parse_args(["--trial-batch", "fig3"]).trial_batch

    def test_checkpoint_flags_are_parsed(self):
        arguments = build_parser().parse_args(["fig3"])
        assert arguments.checkpoint_dir is None
        assert arguments.checkpoint_every == 0
        assert not arguments.resume
        arguments = build_parser().parse_args(
            ["--checkpoint-dir", "/tmp/ckpt", "--checkpoint-every", "5", "--resume", "fig3"]
        )
        assert arguments.checkpoint_dir == "/tmp/ckpt"
        assert arguments.checkpoint_every == 5
        assert arguments.resume

    def test_resume_without_checkpoint_dir_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["--resume", "fig3"])
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_checkpoint_every_without_dir_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["--checkpoint-every", "5", "fig3"])
        assert "--checkpoint-dir" in capsys.readouterr().err


class TestCommands:
    def test_fig2_prints_the_income_table(self, capsys):
        assert main(["fig2"]) == 0
        output = capsys.readouterr().out
        assert "BLACK ALONE" in output
        assert "over 200" in output

    def test_table1_prints_the_scorecard(self, capsys):
        assert main(["--users", "150", "--trials", "1", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "4.953" in output

    def test_fig3_prints_the_race_series(self, capsys):
        assert main(["--users", "80", "--trials", "1", "fig3"]) == 0
        output = capsys.readouterr().out
        assert "cross-race ADR gap" in output
        assert "2020" in output

    def test_fig3_runs_with_compressed_retraining(self, capsys):
        assert (
            main(
                [
                    "--users",
                    "80",
                    "--trials",
                    "1",
                    "--retrain-mode",
                    "compressed",
                    "fig3",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "cross-race ADR gap" in output

    def test_fig3_runs_trial_batched(self, capsys):
        assert (
            main(
                ["--users", "80", "--trials", "2", "--trial-batch", "fig3"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "cross-race ADR gap" in output

    def test_ablation_ergodicity_runs(self, capsys):
        assert main(["ablation-ergodicity"]) == 0
        output = capsys.readouterr().out
        assert "uniquely ergodic" in output

    def test_steering_runs_on_a_small_configuration(self, capsys):
        assert main(["--users", "60", "--trials", "1", "steering"]) == 0
        output = capsys.readouterr().out
        assert "impact steering" in output

    def test_drift_runs_on_a_small_configuration(self, capsys):
        assert main(["--users", "60", "--trials", "1", "drift"]) == 0
        output = capsys.readouterr().out
        assert "Recession shock" in output

    def test_fig3_checkpoints_then_resumes(self, capsys, tmp_path):
        flags = [
            "--users", "40", "--trials", "1",
            "--checkpoint-dir", str(tmp_path), "--checkpoint-every", "5",
        ]
        assert main([*flags, "fig3"]) == 0
        first = capsys.readouterr().out
        # The completed trial's result is on disk, so a resumed run skips
        # the simulation entirely and prints the identical figure.
        assert (tmp_path / "trial-0000.result").exists()
        assert main([*flags, "--resume", "fig3"]) == 0
        assert capsys.readouterr().out == first
