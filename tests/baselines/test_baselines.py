"""Tests for repro.baselines (uniform limit, income multiple, static, parity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    GroupThresholdPolicy,
    IncomeMultiplePolicy,
    StaticCreditScoringSystem,
    UniformLimitPolicy,
)
from repro.core.ai_system import AISystem
from repro.credit.lender import Lender
from repro.data.census import Race


def observation_for(rates):
    rates_array = np.asarray(rates, dtype=float)
    return {"user_default_rates": rates_array, "portfolio_rate": float(rates_array.mean())}


class TestUniformLimitPolicy:
    def test_users_without_defaults_are_approved(self):
        policy = UniformLimitPolicy()
        decisions = policy.decide(
            {"income": np.array([10.0, 200.0])}, observation_for([0.0, 0.0]), 0
        )
        np.testing.assert_array_equal(decisions, [1.0, 1.0])

    def test_any_default_history_means_denial(self):
        policy = UniformLimitPolicy()
        decisions = policy.decide(
            {"income": np.array([10.0, 200.0])}, observation_for([0.2, 0.0]), 0
        )
        np.testing.assert_array_equal(decisions, [0.0, 1.0])

    def test_tolerance_forgives_small_rates(self):
        policy = UniformLimitPolicy(max_default_rate=0.3)
        decisions = policy.decide(
            {"income": np.array([10.0])}, observation_for([0.2]), 0
        )
        assert decisions[0] == 1.0

    def test_income_is_ignored(self):
        policy = UniformLimitPolicy()
        low = policy.decide({"income": np.array([1.0])}, observation_for([0.0]), 0)
        high = policy.decide({"income": np.array([500.0])}, observation_for([0.0]), 0)
        assert low[0] == high[0] == 1.0

    def test_update_is_a_no_op(self):
        policy = UniformLimitPolicy()
        assert policy.update({}, np.ones(1), np.ones(1), observation_for([0.0]), 0) is None

    def test_rejects_invalid_tolerance(self):
        with pytest.raises(ValueError):
            UniformLimitPolicy(max_default_rate=1.5)

    def test_satisfies_the_protocol(self):
        assert isinstance(UniformLimitPolicy(), AISystem)


class TestIncomeMultiplePolicy:
    def test_default_approves_everyone(self):
        policy = IncomeMultiplePolicy()
        decisions = policy.decide(
            {"income": np.array([1.0, 500.0])}, observation_for([0.9, 0.0]), 0
        )
        np.testing.assert_array_equal(decisions, [1.0, 1.0])

    def test_minimum_income_excludes_the_poorest(self):
        policy = IncomeMultiplePolicy(minimum_income=15.0)
        decisions = policy.decide(
            {"income": np.array([10.0, 20.0])}, observation_for([0.0, 0.0]), 0
        )
        np.testing.assert_array_equal(decisions, [0.0, 1.0])

    def test_optional_default_rate_cap(self):
        policy = IncomeMultiplePolicy(max_default_rate=0.5)
        decisions = policy.decide(
            {"income": np.array([50.0, 50.0])}, observation_for([0.9, 0.1]), 0
        )
        np.testing.assert_array_equal(decisions, [0.0, 1.0])

    def test_rejects_negative_minimum_income(self):
        with pytest.raises(ValueError):
            IncomeMultiplePolicy(minimum_income=-1.0)

    def test_rejects_invalid_cap(self):
        with pytest.raises(ValueError):
            IncomeMultiplePolicy(max_default_rate=2.0)

    def test_satisfies_the_protocol(self):
        assert isinstance(IncomeMultiplePolicy(), AISystem)


class TestStaticCreditScoringSystem:
    def _training_batch(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        incomes = rng.uniform(5.0, 100.0, n)
        decisions = np.ones(n)
        actions = (incomes > 20.0).astype(float)
        return incomes, decisions, actions

    def test_trains_only_the_configured_number_of_times(self):
        system = StaticCreditScoringSystem(Lender(warm_up_rounds=1), training_rounds=1)
        incomes, decisions, actions = self._training_batch()
        observation = observation_for(np.zeros(incomes.size))
        system.update({"income": incomes}, decisions, actions, observation, 0)
        card_after_first = system.lender.scorecard
        system.update({"income": incomes}, decisions, 1.0 - actions, observation, 1)
        assert system.lender.scorecard is card_after_first
        assert system.updates_done == 1

    def test_multiple_training_rounds_are_honoured(self):
        system = StaticCreditScoringSystem(Lender(warm_up_rounds=1), training_rounds=2)
        incomes, decisions, actions = self._training_batch()
        observation = observation_for(np.zeros(incomes.size))
        system.update({"income": incomes}, decisions, actions, observation, 0)
        first_card = system.lender.scorecard
        system.update({"income": incomes}, decisions, actions, observation, 1)
        assert system.lender.scorecard is not first_card
        assert system.updates_done == 2

    def test_rejects_zero_training_rounds(self):
        with pytest.raises(ValueError):
            StaticCreditScoringSystem(training_rounds=0)

    def test_satisfies_the_protocol(self):
        assert isinstance(StaticCreditScoringSystem(), AISystem)


class TestGroupThresholdPolicy:
    def _make_policy(self, target=0.5):
        groups = {Race.BLACK: np.arange(0, 50), Race.WHITE: np.arange(50, 100)}
        return GroupThresholdPolicy(groups, target_approval_rate=target, lender=Lender(warm_up_rounds=1)), groups

    def test_warm_up_round_approves_everyone(self):
        policy, _groups = self._make_policy()
        decisions = policy.decide(
            {"income": np.full(100, 50.0)}, observation_for(np.zeros(100)), 0
        )
        np.testing.assert_array_equal(decisions, np.ones(100))

    def test_post_training_approval_rates_match_the_target_per_group(self):
        policy, groups = self._make_policy(target=0.5)
        rng = np.random.default_rng(0)
        incomes = np.concatenate([rng.uniform(5.0, 30.0, 50), rng.uniform(40.0, 150.0, 50)])
        observation = observation_for(np.zeros(100))
        decisions = policy.decide({"income": incomes}, observation, 0)  # warm-up
        actions = (incomes > 20.0).astype(float)
        policy.update({"income": incomes}, decisions, actions, observation, 0)
        new_observation = observation_for(1.0 - actions)
        new_decisions = policy.decide({"income": incomes}, new_observation, 1)
        for indices in groups.values():
            assert new_decisions[indices].mean() == pytest.approx(0.5, abs=0.1)

    def test_rejects_empty_groups(self):
        with pytest.raises(ValueError):
            GroupThresholdPolicy({}, target_approval_rate=0.5)

    def test_rejects_invalid_target(self):
        with pytest.raises(ValueError):
            GroupThresholdPolicy({Race.BLACK: np.array([0])}, target_approval_rate=0.0)

    def test_satisfies_the_protocol(self):
        policy, _ = self._make_policy()
        assert isinstance(policy, AISystem)
