"""Columnar-engine behaviour of :class:`repro.core.history.SimulationHistory`.

The basic accessor semantics are covered in ``test_history.py``; this module
exercises what the columnar rewrite added: geometric growth across the
preallocation boundary, chunked ingestion, the incremental running-statistics
layer (asserted bit-identical to the ``recompute_*`` cross-checks), the lazy
records view, and the ``ndim``-based observation-shape rule.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.history import SimulationHistory, StepRecord


def random_history(
    steps: int, users: int, seed: int = 0, with_extras: bool = True
) -> SimulationHistory:
    rng = np.random.default_rng(seed)
    history = SimulationHistory()
    for step in range(steps):
        decisions = (rng.random(users) < 0.7).astype(float)
        actions = (rng.random(users) < 0.5).astype(float) * decisions
        features = {"income": rng.random(users) * 100.0} if with_extras else {}
        observation = (
            {"user_default_rates": rng.random(users), "portfolio_rate": float(rng.random())}
            if with_extras
            else {}
        )
        history.record_step(step, features, decisions, actions, observation)
    return history


class TestIncrementalStats:
    """The O(users)-per-step layer must match the O(steps*users) recompute."""

    @pytest.mark.parametrize("steps,users", [(1, 1), (3, 2), (50, 7), (130, 11)])
    def test_running_default_rates_bit_identical(self, steps, users):
        history = random_history(steps, users, seed=steps * 31 + users)
        incremental = history.running_default_rates()
        recomputed = history.recompute_running_default_rates()
        assert np.array_equal(incremental, recomputed)

    @pytest.mark.parametrize("steps,users", [(1, 1), (3, 2), (50, 7), (130, 11)])
    def test_running_action_averages_bit_identical(self, steps, users):
        history = random_history(steps, users, seed=steps * 13 + users)
        assert np.array_equal(
            history.running_action_averages(),
            history.recompute_running_action_averages(),
        )

    @pytest.mark.parametrize("steps,users", [(1, 1), (50, 7), (130, 11)])
    def test_approval_rates_bit_identical(self, steps, users):
        history = random_history(steps, users, seed=steps * 7 + users)
        assert np.array_equal(
            history.approval_rates(), history.recompute_approval_rates()
        )

    def test_queries_are_stable_across_repeats(self):
        history = random_history(10, 4)
        first = history.running_default_rates().copy()
        assert np.array_equal(first, history.running_default_rates())


class TestGrowth:
    """Preallocation must be invisible: growth happens past the initial capacity."""

    def test_growth_past_initial_capacity(self):
        steps = 200  # well past the initial 32-row allocation
        history = random_history(steps, users=3, seed=5)
        assert history.num_steps == steps
        assert history.decisions_matrix().shape == (steps, 3)
        assert history.public_feature_matrix("income").shape == (steps, 3)
        assert history.observation_series("portfolio_rate").shape == (steps,)
        assert np.array_equal(
            history.running_default_rates(), history.recompute_running_default_rates()
        )

    def test_chunked_appends_match_single_pass(self):
        rng = np.random.default_rng(9)
        rows = [((rng.random(4) < 0.6).astype(float), rng.random(4)) for _ in range(70)]
        whole = SimulationHistory()
        chunked = SimulationHistory()
        for step, (decisions, actions) in enumerate(rows):
            whole.record_step(step, {}, decisions, actions, {})
        for step, (decisions, actions) in enumerate(rows[:33]):
            chunked.record_step(step, {}, decisions, actions, {})
        for step, (decisions, actions) in enumerate(rows[33:], start=33):
            chunked.record_step(step, {}, decisions, actions, {})
        assert np.array_equal(whole.decisions_matrix(), chunked.decisions_matrix())
        assert np.array_equal(
            whole.running_default_rates(), chunked.running_default_rates()
        )

    def test_views_taken_before_growth_keep_their_content(self):
        history = random_history(10, 2, seed=3)
        early = history.decisions_matrix()
        snapshot = early.copy()
        for step in range(10, 100):
            history.record_step(step, {}, np.ones(2), np.zeros(2), {})
        # The early view may now alias a retired buffer, but its content is
        # still the first ten steps.
        assert np.array_equal(early, snapshot)


class TestEdgeCases:
    def test_empty_history_raises_everywhere(self):
        history = SimulationHistory()
        assert history.num_steps == 0
        assert len(history.records) == 0
        for call in (
            history.decisions_matrix,
            history.actions_matrix,
            history.running_default_rates,
            history.running_action_averages,
            history.approval_rates,
            lambda: history.num_users,
        ):
            with pytest.raises(ValueError):
                call()

    def test_user_count_mismatch_raises(self):
        history = random_history(2, 3)
        with pytest.raises(ValueError):
            history.record_step(2, {}, np.ones(4), np.ones(4), {})
        with pytest.raises(ValueError):
            history.record_step(2, {}, np.ones(3), np.ones(4), {})

    def test_views_are_read_only(self):
        history = random_history(5, 2)
        for matrix in (
            history.decisions_matrix(),
            history.actions_matrix(),
            history.running_default_rates(),
            history.public_feature_matrix("income"),
        ):
            with pytest.raises(ValueError):
                matrix[0] = 99.0

    def test_failed_append_leaves_columns_intact(self):
        """A bad-width value must not half-write the step or poison columns."""
        history = SimulationHistory()
        history.record_step(
            0, {"income": np.ones(3)}, np.ones(3), np.ones(3), {"rates": np.ones(3)}
        )
        with pytest.raises(ValueError):
            history.record_step(
                1, {"income": np.ones(3)}, np.ones(3), np.ones(3), {"rates": np.ones(5)}
            )
        assert history.num_steps == 1
        # A subsequent good step keeps full column coverage.
        history.record_step(
            1, {"income": np.ones(3)}, np.ones(3), np.ones(3), {"rates": np.ones(3)}
        )
        assert history.public_feature_matrix("income").shape == (2, 3)
        assert history.observation_series("rates").shape == (2, 3)

    def test_partial_feature_coverage_raises_key_error(self):
        history = SimulationHistory()
        history.record_step(0, {}, np.ones(2), np.ones(2), {})
        history.record_step(1, {"wealth": np.ones(2)}, np.ones(2), np.ones(2), {})
        with pytest.raises(KeyError):
            history.public_feature_matrix("wealth")

    def test_failed_first_append_does_not_lock_user_count(self):
        history = SimulationHistory()
        with pytest.raises(ValueError):
            history.record_step(0, {}, np.ones(3), np.ones(2), {})
        history.record_step(0, {}, np.ones(2), np.ones(2), {})
        assert history.num_users == 2

    def test_scalar_public_feature_stays_a_matrix(self):
        """Scalar features are width-1 series, keeping the (steps, users) contract."""
        history = SimulationHistory()
        for step in range(3):
            history.record_step(step, {"rate": 0.5}, np.ones(2), np.ones(2), {})
        assert history.public_feature_matrix("rate").shape == (3, 1)

    def test_vanishing_and_reappearing_key_warns(self):
        history = SimulationHistory()
        history.record_step(0, {}, np.ones(2), np.ones(2), {"x": 1.0})
        history.record_step(1, {}, np.ones(2), np.ones(2), {})
        with pytest.warns(RuntimeWarning, match="skipped steps"):
            history.record_step(2, {}, np.ones(2), np.ones(2), {"x": 3.0})

    def test_constructor_accepts_seed_records(self):
        source = random_history(4, 2, seed=11)
        clone = SimulationHistory(records=list(source.records))
        assert np.array_equal(source.decisions_matrix(), clone.decisions_matrix())
        assert np.array_equal(source.actions_matrix(), clone.actions_matrix())

    def test_history_round_trips_through_pickle(self):
        history = random_history(40, 3, seed=2)
        payload = pickle.dumps(history)
        clone = pickle.loads(payload)
        assert clone.num_steps == history.num_steps
        assert np.array_equal(
            clone.running_default_rates(), history.running_default_rates()
        )
        assert np.array_equal(
            clone.public_feature_matrix("income"),
            history.public_feature_matrix("income"),
        )
        clone.record_step(40, {"income": np.ones(3)}, np.ones(3), np.ones(3), {})
        assert clone.num_steps == 41

    def test_pickle_ships_only_filled_rows(self):
        """The over-allocated capacity must not travel between processes."""
        history = random_history(33, 50, seed=1)  # just past one growth (cap 64)
        assert history._capacity == 64
        state = history.__getstate__()
        assert state["_decisions"].shape == (33, 50)
        assert state["_approvals"].shape == (33,)
        assert state["_features"]["income"].data.shape == (33, 50)
        clone = pickle.loads(pickle.dumps(history))
        assert clone._capacity == clone.num_steps == 33
        assert history._capacity == 64  # original retains its buffers
        assert np.array_equal(clone.actions_matrix(), history.actions_matrix())


class TestObservationShapes:
    def test_single_user_observation_stays_a_matrix(self):
        """A per-user array from a 1-user population must not flatten to a scalar series."""
        history = SimulationHistory()
        for step in range(3):
            history.record_step(
                step,
                {},
                np.array([1.0]),
                np.array([0.0]),
                {"user_default_rates": np.array([0.25 * step]), "portfolio_rate": 0.1},
            )
        per_user = history.observation_series("user_default_rates")
        assert per_user.shape == (3, 1)
        scalar = history.observation_series("portfolio_rate")
        assert scalar.shape == (3,)

    def test_scalar_numpy_observation_is_scalar_series(self):
        history = SimulationHistory()
        history.record_step(
            0, {}, np.ones(2), np.ones(2), {"aggregate": np.float64(0.5)}
        )
        assert history.observation_series("aggregate").shape == (1,)


class TestRecordsView:
    def test_indexing_and_iteration(self):
        history = random_history(6, 2, seed=21)
        records = history.records
        assert len(records) == 6
        assert [record.step for record in records] == list(range(6))
        assert records[-1].step == 5
        assert isinstance(records[0], StepRecord)
        assert [r.step for r in records[2:4]] == [2, 3]
        with pytest.raises(IndexError):
            records[6]
        with pytest.raises(IndexError):
            records[-7]

    def test_records_round_trip_the_columns(self):
        history = random_history(4, 3, seed=8)
        record = history.records[2]
        assert np.array_equal(record.decisions, history.decisions_matrix()[2])
        assert np.array_equal(record.actions, history.actions_matrix()[2])
        assert np.array_equal(
            record.public_features["income"], history.public_feature_matrix("income")[2]
        )
        assert record.observation["portfolio_rate"] == pytest.approx(
            float(history.observation_series("portfolio_rate")[2])
        )

    def test_materialised_records_are_copies(self):
        history = random_history(3, 2, seed=4)
        record = history.records[0]
        record.decisions[0] = 42.0
        assert history.decisions_matrix()[0, 0] != 42.0
