"""Tests for repro.core.population."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import CreditPopulation, IFSPopulation, Population
from repro.credit.mortgage import MortgageTerms
from repro.data.census import Race
from repro.data.synthetic import PopulationSpec, generate_population
from repro.markov.ifs import SignalDependentIFS
from repro.markov.maps import AffineMap, FunctionMap


@pytest.fixture
def credit_population(small_population, income_table):
    return CreditPopulation(population=small_population, income_table=income_table)


class TestCreditPopulation:
    def test_satisfies_the_protocol(self, credit_population):
        assert isinstance(credit_population, Population)

    def test_begin_step_reveals_incomes(self, credit_population, rng):
        features = credit_population.begin_step(0, rng)
        assert "income" in features
        assert features["income"].shape == (credit_population.num_users,)
        assert np.all(features["income"] >= 0)

    def test_affordability_requires_begin_step(self, small_population, income_table):
        population = CreditPopulation(population=small_population, income_table=income_table)
        with pytest.raises(RuntimeError):
            population.current_affordability

    def test_respond_requires_begin_step(self, small_population, income_table, rng):
        population = CreditPopulation(population=small_population, income_table=income_table)
        with pytest.raises(RuntimeError):
            population.respond(np.ones(population.num_users), 0, rng)

    def test_respond_returns_binary_actions(self, credit_population, rng):
        credit_population.begin_step(0, rng)
        actions = credit_population.respond(np.ones(credit_population.num_users), 0, rng)
        assert set(np.unique(actions)).issubset({0.0, 1.0})

    def test_denied_users_never_repay(self, credit_population, rng):
        credit_population.begin_step(0, rng)
        actions = credit_population.respond(np.zeros(credit_population.num_users), 0, rng)
        assert actions.sum() == 0

    def test_year_of_step_offsets_from_start_year(self, credit_population):
        assert credit_population.year_of_step(0) == 2002
        assert credit_population.year_of_step(18) == 2020

    def test_groups_partition_the_population(self, credit_population):
        groups = credit_population.groups
        total = sum(indices.size for indices in groups.values())
        assert total == credit_population.num_users

    def test_races_property_matches_population(self, small_population, income_table):
        population = CreditPopulation(population=small_population, income_table=income_table)
        assert population.races.shape == (small_population.size,)

    def test_custom_terms_are_used(self, small_population, income_table, rng):
        generous = CreditPopulation(
            population=small_population,
            income_table=income_table,
            terms=MortgageTerms(living_cost=0.0, annual_rate=0.0),
        )
        generous.begin_step(0, rng)
        # With no obligations every user with positive income has a positive state.
        assert np.all(generous.current_affordability > 0)


def make_ifs_user() -> SignalDependentIFS:
    return SignalDependentIFS(
        transition_maps=(AffineMap.scalar(0.5, 0.0), AffineMap.scalar(0.5, 0.5)),
        transition_probabilities=lambda signal: [0.5, 0.5],
        output_maps=(FunctionMap(lambda x: x, name="echo"),),
        output_probabilities=lambda signal: [1.0],
    )


class TestIFSPopulation:
    def test_satisfies_the_protocol(self):
        population = IFSPopulation(
            users=[make_ifs_user()], initial_states=[np.array([0.0])]
        )
        assert isinstance(population, Population)

    def test_begin_step_reveals_nothing(self, rng):
        population = IFSPopulation(users=[make_ifs_user()], initial_states=[np.array([0.0])])
        assert population.begin_step(0, rng) == {}

    def test_respond_advances_every_user(self, rng):
        population = IFSPopulation(
            users=[make_ifs_user(), make_ifs_user()],
            initial_states=[np.array([0.0]), np.array([1.0])],
        )
        actions = population.respond(np.array([1.0, 1.0]), 0, rng)
        assert actions.shape == (2,)
        assert len(population.states) == 2

    def test_scalar_signal_is_broadcast(self, rng):
        population = IFSPopulation(
            users=[make_ifs_user(), make_ifs_user()],
            initial_states=[np.array([0.5]), np.array([0.5])],
        )
        actions = population.respond(1.0, 0, rng)
        assert actions.shape == (2,)

    def test_rejects_empty_user_list(self):
        with pytest.raises(ValueError):
            IFSPopulation(users=[], initial_states=[])

    def test_rejects_mismatched_initial_states(self):
        with pytest.raises(ValueError):
            IFSPopulation(users=[make_ifs_user()], initial_states=[])

    def test_states_are_copies(self, rng):
        population = IFSPopulation(users=[make_ifs_user()], initial_states=[np.array([0.3])])
        states = population.states
        states[0][0] = 99.0
        assert population.states[0][0] == pytest.approx(0.3)
