"""Tests for repro.core.convergence (batch-means long-run estimates)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.convergence import (
    batch_means,
    estimate_long_run_average,
    impact_gap_significance,
)
from repro.data.census import Race


class TestBatchMeans:
    def test_splits_into_the_requested_number_of_batches(self):
        means = batch_means(np.arange(100, dtype=float), 10)
        assert means.shape == (10,)

    def test_batch_means_of_a_constant_series_are_the_constant(self):
        np.testing.assert_allclose(batch_means(np.full(40, 3.0), 4), 3.0)

    def test_remainder_is_dropped_from_the_front(self):
        series = np.array([100.0, 1.0, 1.0, 2.0, 2.0])
        np.testing.assert_allclose(batch_means(series, 2), [1.0, 2.0])

    def test_rejects_too_few_batches(self):
        with pytest.raises(ValueError):
            batch_means(np.ones(10), 1)

    def test_rejects_series_shorter_than_the_batch_count(self):
        with pytest.raises(ValueError):
            batch_means(np.ones(3), 5)


class TestEstimateLongRunAverage:
    def test_iid_series_interval_covers_the_true_mean(self):
        rng = np.random.default_rng(0)
        series = rng.binomial(1, 0.3, size=5000).astype(float)
        result = estimate_long_run_average(series, num_batches=10)
        assert result.contains(0.3)
        assert result.estimate == pytest.approx(0.3, abs=0.03)

    def test_longer_series_give_tighter_intervals(self):
        rng = np.random.default_rng(1)
        short = estimate_long_run_average(rng.normal(size=400), num_batches=8)
        long = estimate_long_run_average(rng.normal(size=40000), num_batches=8)
        assert long.halfwidth < short.halfwidth

    def test_burn_in_discards_the_transient(self):
        series = np.concatenate([np.full(200, 10.0), np.zeros(800)])
        with_burn_in = estimate_long_run_average(series, burn_in=0.25)
        assert with_burn_in.estimate == pytest.approx(0.0, abs=1e-9)

    def test_interval_is_symmetric_around_the_estimate(self):
        rng = np.random.default_rng(2)
        result = estimate_long_run_average(rng.normal(size=1000))
        low, high = result.interval
        assert (low + high) / 2.0 == pytest.approx(result.estimate)

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            estimate_long_run_average([])

    def test_rejects_invalid_confidence(self):
        with pytest.raises(ValueError):
            estimate_long_run_average(np.ones(100), confidence=1.0)

    @given(st.integers(min_value=2, max_value=20), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_halfwidth_is_non_negative(self, num_batches, seed):
        rng = np.random.default_rng(seed)
        series = rng.random(max(200, num_batches * 5))
        result = estimate_long_run_average(series, num_batches=num_batches)
        assert result.halfwidth >= 0.0
        assert result.standard_error >= 0.0


class TestImpactGapSignificance:
    def _outcomes(self, p_a: float, p_b: float, steps: int = 2000, seed: int = 0):
        rng = np.random.default_rng(seed)
        group_a = rng.binomial(1, p_a, size=(steps, 10)).astype(float)
        group_b = rng.binomial(1, p_b, size=(steps, 10)).astype(float)
        outcomes = np.hstack([group_a, group_b])
        groups = {Race.BLACK: np.arange(0, 10), Race.WHITE: np.arange(10, 20)}
        return outcomes, groups

    def test_a_real_gap_is_flagged_as_significant(self):
        outcomes, groups = self._outcomes(0.6, 0.2)
        result = impact_gap_significance(outcomes, groups)
        assert result.gap == pytest.approx(0.4, abs=0.05)
        assert result.gap_is_significant

    def test_identical_groups_are_not_flagged(self):
        outcomes, groups = self._outcomes(0.4, 0.4, seed=3)
        result = impact_gap_significance(outcomes, groups)
        assert not result.gap_is_significant

    def test_empty_groups_are_skipped(self):
        outcomes, groups = self._outcomes(0.5, 0.1)
        groups = dict(groups)
        groups[Race.ASIAN] = np.array([], dtype=int)
        result = impact_gap_significance(outcomes, groups)
        assert set(result.group_estimates) == {Race.BLACK, Race.WHITE}

    def test_requires_at_least_two_groups(self):
        outcomes, _ = self._outcomes(0.5, 0.5)
        with pytest.raises(ValueError):
            impact_gap_significance(outcomes, {Race.BLACK: np.arange(0, 20)})

    def test_rejects_bad_outcome_shapes(self):
        with pytest.raises(ValueError):
            impact_gap_significance(np.ones(10), {Race.BLACK: np.array([0])})
