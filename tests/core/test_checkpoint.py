"""Tests for repro.core.checkpoint: the crash-consistent snapshot format."""

from __future__ import annotations

import os
import struct

import pytest

from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointSpec,
    checkpoint_path,
    config_fingerprint,
    deserialize_payload,
    list_checkpoints,
    load_latest_checkpoint,
    prune_checkpoints,
    read_checkpoint,
    serialize_payload,
    write_checkpoint,
)


PAYLOAD = {"step": 7, "history": [1.0, 2.0, 3.0], "nested": {"a": (1, 2)}}


class TestPayloadCodec:
    def test_round_trip(self):
        assert deserialize_payload(serialize_payload(PAYLOAD)) == PAYLOAD

    def test_truncated_header_is_rejected(self):
        with pytest.raises(CheckpointError, match="truncated"):
            deserialize_payload(b"RPRO")

    def test_bad_magic_is_rejected(self):
        data = bytearray(serialize_payload(PAYLOAD))
        data[:8] = b"NOTCKPT!"
        with pytest.raises(CheckpointError, match="bad magic"):
            deserialize_payload(bytes(data))

    def test_newer_version_is_rejected_with_upgrade_hint(self):
        data = bytearray(serialize_payload(PAYLOAD))
        struct.pack_into(">H", data, 8, CHECKPOINT_VERSION + 1)
        with pytest.raises(CheckpointError, match="newer than this build"):
            deserialize_payload(bytes(data))

    def test_torn_payload_is_rejected(self):
        data = serialize_payload(PAYLOAD)
        with pytest.raises(CheckpointError, match="torn checkpoint"):
            deserialize_payload(data[: len(data) - 5])

    def test_flipped_payload_byte_fails_the_digest(self):
        data = bytearray(serialize_payload(PAYLOAD))
        data[-1] ^= 0xFF
        with pytest.raises(CheckpointError, match="digest mismatch"):
            deserialize_payload(bytes(data))


class TestWriteRead:
    def test_write_then_read(self, tmp_path):
        path = write_checkpoint(tmp_path / "run.step00000007.ckpt", PAYLOAD)
        assert read_checkpoint(path) == PAYLOAD

    def test_write_creates_missing_directories(self, tmp_path):
        path = write_checkpoint(tmp_path / "deep" / "er" / "x.ckpt", PAYLOAD)
        assert path.exists()

    def test_no_temp_file_remains_after_write(self, tmp_path):
        write_checkpoint(tmp_path / "run.ckpt", PAYLOAD)
        assert [entry.name for entry in tmp_path.iterdir()] == ["run.ckpt"]

    def test_failed_write_leaves_the_old_file_intact(self, tmp_path):
        target = tmp_path / "run.ckpt"
        write_checkpoint(target, PAYLOAD)
        with pytest.raises(Exception):
            # A lambda cannot be pickled: serialization fails before any
            # bytes are written, and the landed checkpoint must survive.
            write_checkpoint(target, {"step": 8, "bad": lambda: None})
        assert read_checkpoint(target) == PAYLOAD
        assert [entry.name for entry in tmp_path.iterdir()] == ["run.ckpt"]

    def test_reading_a_missing_file_is_a_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "absent.ckpt")


class TestDirectoryLayout:
    def test_checkpoint_path_is_step_numbered(self, tmp_path):
        path = checkpoint_path(tmp_path, "trial-0003", 42)
        assert path.name == "trial-0003.step00000042.ckpt"

    def test_list_checkpoints_newest_first_per_stem(self, tmp_path):
        for step in (3, 9, 6):
            write_checkpoint(checkpoint_path(tmp_path, "a", step), {"step": step})
        write_checkpoint(checkpoint_path(tmp_path, "b", 99), {"step": 99})
        assert [step for step, _ in list_checkpoints(tmp_path, "a")] == [9, 6, 3]

    def test_list_checkpoints_on_missing_directory_is_empty(self, tmp_path):
        assert list_checkpoints(tmp_path / "nowhere", "a") == []

    def test_prune_keeps_the_newest(self, tmp_path):
        for step in range(1, 6):
            write_checkpoint(checkpoint_path(tmp_path, "a", step), {"step": step})
        prune_checkpoints(tmp_path, "a", keep=2)
        assert [step for step, _ in list_checkpoints(tmp_path, "a")] == [5, 4]

    def test_prune_keep_zero_removes_everything(self, tmp_path):
        write_checkpoint(checkpoint_path(tmp_path, "a", 1), {"step": 1})
        prune_checkpoints(tmp_path, "a", keep=0)
        assert list_checkpoints(tmp_path, "a") == []


class TestLoadLatest:
    def test_returns_none_when_nothing_exists(self, tmp_path):
        assert load_latest_checkpoint(tmp_path, "a") is None

    def test_returns_the_newest_payload(self, tmp_path):
        for step in (2, 4):
            write_checkpoint(checkpoint_path(tmp_path, "a", step), {"step": step})
        assert load_latest_checkpoint(tmp_path, "a")["step"] == 4

    def test_corrupt_newest_falls_back_with_a_warning(self, tmp_path):
        write_checkpoint(checkpoint_path(tmp_path, "a", 2), {"step": 2})
        newest = write_checkpoint(checkpoint_path(tmp_path, "a", 4), {"step": 4})
        with open(newest, "r+b") as handle:
            handle.truncate(os.path.getsize(newest) // 2)
        with pytest.warns(RuntimeWarning, match="skipping unreadable checkpoint"):
            payload = load_latest_checkpoint(tmp_path, "a")
        assert payload["step"] == 2

    def test_fingerprint_mismatch_is_an_actionable_error(self, tmp_path):
        write_checkpoint(
            checkpoint_path(tmp_path, "a", 2), {"step": 2, "fingerprint": "aaaa"}
        )
        with pytest.raises(CheckpointError, match="different\\s+configuration"):
            load_latest_checkpoint(tmp_path, "a", expected_fingerprint="bbbb")

    def test_matching_fingerprint_loads(self, tmp_path):
        write_checkpoint(
            checkpoint_path(tmp_path, "a", 2), {"step": 2, "fingerprint": "aaaa"}
        )
        payload = load_latest_checkpoint(tmp_path, "a", expected_fingerprint="aaaa")
        assert payload["step"] == 2


class TestConfigFingerprint:
    def test_is_deterministic(self):
        assert config_fingerprint(1, "x", (2, 3)) == config_fingerprint(1, "x", (2, 3))

    def test_distinguishes_parts(self):
        assert config_fingerprint(1, "x") != config_fingerprint(1, "y")
        assert config_fingerprint("12") != config_fingerprint(12)


class TestCheckpointSpec:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            CheckpointSpec(directory=str(tmp_path), stem="a", every=0)
        with pytest.raises(ValueError, match="keep"):
            CheckpointSpec(directory=str(tmp_path), stem="a", every=1, keep=0)
        with pytest.raises(ValueError, match="stem"):
            CheckpointSpec(directory=str(tmp_path), stem="", every=1)

    def test_due_at_every_boundary_only(self, tmp_path):
        spec = CheckpointSpec(directory=str(tmp_path), stem="a", every=3)
        assert [k for k in range(10) if spec.due(k)] == [3, 6, 9]

    def test_write_stamps_fingerprint_and_prunes(self, tmp_path):
        spec = CheckpointSpec(
            directory=str(tmp_path), stem="a", every=1, fingerprint="ff00", keep=2
        )
        for step in range(1, 5):
            spec.write({"step": step})
        steps = [step for step, _ in list_checkpoints(tmp_path, "a")]
        assert steps == [4, 3]
        assert spec.load_latest() == {"step": 4, "fingerprint": "ff00"}
