"""Tests for repro.core.supervision: the shared worker-pool failure model."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.supervision import SupervisorPolicy, WorkerPoolFailure, kill_executor


class TestWorkerPoolFailure:
    def test_carries_reason_and_cause(self):
        cause = OSError("boom")
        failure = WorkerPoolFailure("a shard worker process died", cause)
        assert failure.reason == "a shard worker process died"
        assert failure.cause is cause
        assert "boom" in str(failure)

    def test_cause_is_optional(self):
        failure = WorkerPoolFailure("a shard worker hung past the timeout")
        assert failure.cause is None
        assert str(failure) == "a shard worker hung past the timeout"


class TestSupervisorPolicy:
    def test_defaults_are_valid(self):
        policy = SupervisorPolicy()
        assert policy.max_retries == 2
        assert policy.timeout is None

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            SupervisorPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            SupervisorPolicy(timeout=0.0)
        with pytest.raises(ValueError, match="backoff bounds"):
            SupervisorPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError, match="backoff_factor"):
            SupervisorPolicy(backoff_factor=0.5)

    def test_backoff_is_geometric_and_capped(self):
        policy = SupervisorPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5
        )
        assert policy.backoff_delay(1) == pytest.approx(0.1)
        assert policy.backoff_delay(2) == pytest.approx(0.2)
        assert policy.backoff_delay(3) == pytest.approx(0.4)
        assert policy.backoff_delay(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_delay(0) == 0.0

    def test_sleep_before_retry_with_zero_base_is_instant(self):
        # backoff_base=0 means no sleeping at all — used by the chaos suite
        # so injected failures retry without slowing the test run down.
        SupervisorPolicy(backoff_base=0.0).sleep_before_retry(5)


class TestKillExecutor:
    def test_kills_live_workers(self):
        executor = ProcessPoolExecutor(max_workers=1)
        future = executor.submit(int, "7")
        assert future.result(timeout=30) == 7
        processes = list(getattr(executor, "_processes", {}).values())
        kill_executor(executor)
        for process in processes:
            process.join(timeout=30)
            assert not process.is_alive()

    def test_tolerates_executors_without_process_map(self):
        class Plain:
            def shutdown(self, wait=True, cancel_futures=False):
                self.down = (wait, cancel_futures)

        plain = Plain()
        kill_executor(plain)
        assert plain.down == (False, True)
