"""Unit tests of the shared-memory arena and the transport meter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.shardmem import (
    SEGMENT_PREFIX,
    ArenaSpec,
    SharedMemoryArena,
    TransportMeter,
    live_segments,
    set_transport_meter,
    transport_meter,
)


@pytest.fixture
def arena():
    arena = SharedMemoryArena.create(("income",), num_users=10, num_workers=2)
    yield arena
    arena.destroy()


class TestArenaDataPlane:
    def test_channels_round_trip_bit_identically(self, arena):
        values = np.linspace(0.0, 1.0, 10)
        arena.write_channel("income", 0, 10, values)
        assert np.array_equal(arena.read_channel("income"), values)
        # Slice writes by two workers reassemble the exact full row.
        left, right = values[:6] * 3.0, values[6:] * 7.0
        arena.write_channel("actions", 0, 6, left)
        arena.write_channel("actions", 6, 10, right)
        assert np.array_equal(
            arena.read_channel("actions"), np.concatenate([left, right])
        )
        assert np.array_equal(arena.read_channel_slice("actions", 6, 10), right)

    def test_reads_are_copies(self, arena):
        arena.write_channel("decisions", 0, 10, np.ones(10))
        row = arena.read_channel("decisions")
        row[:] = 0.0
        assert np.array_equal(arena.read_channel("decisions"), np.ones(10))

    def test_scalar_totals_sum_in_worker_order(self, arena):
        arena.write_scalars(1, offers=5.0, repayments=2.0)
        arena.write_scalars(0, offers=3.0, repayments=1.0)
        offers, repayments = arena.scalar_totals()
        assert offers == 8.0 and repayments == 3.0

    def test_fresh_arena_is_zeroed(self, arena):
        assert arena.scalar_totals() == (0.0, 0.0)
        assert np.array_equal(arena.read_channel("user_rates"), np.zeros(10))

    def test_per_step_bytes_counts_the_tensor_and_scalars(self, arena):
        # 4 channels x 10 users + 2 workers x 2 scalars, 8 bytes each.
        assert arena.per_step_bytes() == (4 * 10 + 2 * 2) * 8


class TestArenaLifecycle:
    def test_attach_sees_the_creators_writes(self, arena):
        arena.write_channel("income", 0, 10, np.full(10, 4.5))
        attached = SharedMemoryArena.attach(arena.spec)
        try:
            assert np.array_equal(attached.read_channel("income"), np.full(10, 4.5))
            attached.write_channel("income", 0, 3, np.zeros(3))
            assert arena.read_channel("income")[0] == 0.0
        finally:
            attached.close()

    def test_segment_name_carries_the_module_prefix(self, arena):
        assert arena.spec.name.startswith(SEGMENT_PREFIX)
        assert arena.spec.name in live_segments()

    def test_destroy_removes_the_segment_and_is_idempotent(self):
        arena = SharedMemoryArena.create(("income",), num_users=4, num_workers=1)
        name = arena.spec.name
        arena.destroy()
        assert name not in live_segments()
        arena.destroy()  # second call is a no-op
        arena.close()

    def test_attachment_close_never_unlinks(self, arena):
        attached = SharedMemoryArena.attach(arena.spec)
        attached.close()
        attached.unlink()  # non-owner: must be a no-op
        assert arena.spec.name in live_segments()

    def test_reserved_channel_collision_is_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            SharedMemoryArena.create(
                ("income", "decisions"), num_users=4, num_workers=1
            )

    def test_degenerate_sizes_are_rejected(self):
        with pytest.raises(ValueError, match="num_users"):
            SharedMemoryArena.create(("income",), num_users=0, num_workers=1)
        with pytest.raises(ValueError, match="num_workers"):
            SharedMemoryArena.create(("income",), num_users=4, num_workers=0)

    def test_spec_is_plain_data(self, arena):
        spec = arena.spec
        assert isinstance(spec, ArenaSpec)
        assert spec.channels == ("income", "decisions", "actions", "user_rates")
        assert spec.feature_channels == ("income",)
        assert spec.num_users == 10 and spec.num_workers == 2


class TestTransportMeter:
    def test_counters_and_per_step_figures(self):
        meter = TransportMeter()
        meter.add_pickled(100)
        meter.add_shared(400)
        meter.note_step()
        meter.add_shared(400)
        meter.note_step()
        assert meter.pickled_bytes == 100
        assert meter.shared_bytes == 800
        assert meter.per_step_pickled() == 50.0
        assert meter.per_step_shared() == 400.0

    def test_zero_steps_divide_safely(self):
        meter = TransportMeter()
        assert meter.per_step_pickled() == 0.0
        assert meter.per_step_shared() == 0.0

    def test_process_wide_install_and_clear(self):
        meter = TransportMeter()
        set_transport_meter(meter)
        try:
            assert transport_meter() is meter
        finally:
            set_transport_meter(None)
        assert transport_meter() is None
